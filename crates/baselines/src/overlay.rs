//! The FPGA overlay architecture baseline (Fang–Ioannidis–Leeser, FPGA'17;
//! the paper's reference \[14\]).
//!
//! An overlay pre-places generic garbled-gate processors on the fabric and
//! *loads* the secure function's netlist onto them at run time — flexible,
//! but the paper notes overlays cost 40–100× more LUTs than direct designs
//! and garble with much higher latency. The source is closed; the paper
//! interpolates its published 8/32/64-bit results to the Table 2 grid, and
//! this module encodes exactly that interpolation (200 MHz clock, 43
//! parallel garbled-gate cores limited by BRAM).

use crate::FrameworkPerf;

/// The overlay's fabric clock implied by Table 2 (4.4e3 cycles / 22 µs).
pub const CLOCK_HZ: f64 = 200.0e6;

/// Parallel cores of the overlay (limited by garbling latency and BRAM,
/// per §5.4).
pub const CORES: usize = 43;

/// Table 2 cycle counts per MAC: `(b, cycles)` — the paper's interpolation
/// of \[14\].
const CALIBRATION: [(usize, f64); 3] = [(8, 4.4e3), (16, 1.2e4), (32, 3.6e4)];

/// Clock cycles per MAC at bit-width `b` (exact at the published points,
/// quadratic-fit elsewhere: `cycles ≈ 43.6·b² + overhead`).
pub fn cycles_per_mac(bit_width: usize) -> f64 {
    for &(b, cycles) in &CALIBRATION {
        if b == bit_width {
            return cycles;
        }
    }
    // The three points fit cycles ≈ 33.9·b² + 2240 within 8%; use the pure
    // quadratic coefficient from the b=32 point for extrapolation.
    35.2 * (bit_width * bit_width) as f64 + 2200.0
}

/// The full Table 2 row for the overlay at bit-width `b`.
pub fn perf(bit_width: usize) -> FrameworkPerf {
    FrameworkPerf::from_cycles(
        "FPGA Overlay Architecture [14]",
        bit_width,
        cycles_per_mac(bit_width),
        CLOCK_HZ,
        CORES,
    )
}

/// The paper's overlay-cost observation: generic overlays require 40–100×
/// the LUTs of a direct design. Returns the midpoint multiplier used in
/// resource comparisons.
pub fn lut_overhead_multiplier() -> f64 {
    70.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table2_exactly() {
        let p8 = perf(8);
        assert!((p8.seconds_per_mac * 1e6 - 22.0).abs() < 1e-6);
        assert!((p8.macs_per_second - 4.55e4).abs() / 4.55e4 < 2e-3);
        assert!((p8.macs_per_second_per_core - 1.06e3).abs() / 1.06e3 < 3e-3);
        let p16 = perf(16);
        assert!((p16.seconds_per_mac * 1e6 - 60.0).abs() < 1e-6);
        assert!((p16.macs_per_second_per_core - 3.88e2).abs() / 3.88e2 < 3e-3);
        let p32 = perf(32);
        assert!((p32.seconds_per_mac * 1e6 - 180.0).abs() < 1e-6);
        assert!((p32.macs_per_second_per_core - 1.29e2).abs() / 1.29e2 < 3e-3);
        assert_eq!(p32.cores, 43);
    }

    #[test]
    fn extrapolation_is_monotone() {
        let mut prev = 0.0;
        for b in [4usize, 8, 12, 16, 24, 32, 48, 64] {
            let c = cycles_per_mac(b);
            assert!(c > prev, "not monotone at b={b}");
            prev = c;
        }
    }

    #[test]
    fn overhead_multiplier_in_papers_band() {
        let m = lut_overhead_multiplier();
        assert!((40.0..=100.0).contains(&m));
    }
}
