//! GarbledCPU estimate (Songhori et al., DAC'16; the paper's reference
//! \[13\]).
//!
//! GarbledCPU garbles a MIPS processor netlist and loads the secure
//! function as instructions; it publishes no multiplication/addition
//! results. The paper estimates it from its reported "2× improvement in
//! throughput compared to JustGarble" on an i7-2600 @ 3.4 GHz, concluding
//! "at least 37× improvement over \[13\] in throughput per core" for
//! MAXelerator. We encode the same 2×-JustGarble construction; because the
//! paper does not spell out its JustGarble MAC baseline, our derived ratio
//! versus MAXelerator lands at 22–28× rather than 37× — EXPERIMENTS.md
//! records the discrepancy. The "at least" direction (MAXelerator ≫
//! GarbledCPU per core) is robust either way.

use crate::tinygarble;
use crate::FrameworkPerf;

/// GarbledCPU's reported speedup over JustGarble.
pub const SPEEDUP_OVER_JUSTGARBLE: f64 = 2.0;

/// Estimated Table 2-style row for GarbledCPU at bit-width `b`
/// (single core; the work does not attempt parallelization).
pub fn perf(bit_width: usize) -> FrameworkPerf {
    // TinyGarble's back-end *is* JustGarble (§5.4), so the JustGarble MAC
    // rate is TinyGarble's, and GarbledCPU ≈ 2× that.
    let base = tinygarble::model::perf(bit_width);
    FrameworkPerf::from_cycles(
        "GarbledCPU [13] (estimated)",
        bit_width,
        base.cycles_per_mac / SPEEDUP_OVER_JUSTGARBLE,
        tinygarble::CPU_CLOCK_HZ,
        1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twice_tinygarble_throughput() {
        for b in [8usize, 16, 32] {
            let tg = tinygarble::model::perf(b);
            let gc = perf(b);
            let ratio = gc.macs_per_second / tg.macs_per_second;
            assert!((ratio - 2.0).abs() < 1e-9, "b = {b}");
        }
    }

    #[test]
    fn single_core() {
        assert_eq!(perf(8).cores, 1);
    }
}
