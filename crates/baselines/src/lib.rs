//! The frameworks MAXelerator is compared against in Table 2:
//!
//! * [`tinygarble`] — TinyGarble (Songhori et al., S&P'15), the fastest
//!   software GC framework at publication time. Two faces here: a *real*
//!   software sequential garbler (built on `max-gc`, with TinyGarble's
//!   serial-multiplier MAC netlist) whose wall-clock rate criterion
//!   measures, and the paper-calibrated cycle model that reproduces the
//!   published Table 2 row exactly.
//! * [`overlay`] — the FPGA overlay architecture of Fang–Ioannidis–Leeser
//!   (FPGA'17). Closed source and SHA-1 based; the paper itself interpolates
//!   its numbers, and this module encodes the same interpolation.
//! * [`garbled_cpu`] — GarbledCPU (Songhori et al., DAC'16), estimated from
//!   its published "2× JustGarble" speedup, as the paper does.
//!
//! All three expose a common [`FrameworkPerf`] row so the Table 2
//! regenerator can print them side by side. [`parallel_cpu`] additionally
//! implements the §3 strawman — barrier-synchronized multi-threaded CPU
//! garbling — so the paper's "parallelizing on a processor does not help"
//! argument is measurable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod garbled_cpu;
pub mod overlay;
pub mod parallel_cpu;
pub mod tinygarble;

use serde::{Deserialize, Serialize};

/// One framework's row of Table 2.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrameworkPerf {
    /// Framework name.
    pub name: String,
    /// Operand bit-width.
    pub bit_width: usize,
    /// Clock cycles per MAC (on the framework's own clock).
    pub cycles_per_mac: f64,
    /// Seconds per MAC.
    pub seconds_per_mac: f64,
    /// MACs per second (whole platform).
    pub macs_per_second: f64,
    /// Parallel cores used.
    pub cores: usize,
    /// MACs per second per core — the paper's comparison metric.
    pub macs_per_second_per_core: f64,
}

impl FrameworkPerf {
    /// Builds a row from cycle count, clock and core count.
    pub fn from_cycles(
        name: impl Into<String>,
        bit_width: usize,
        cycles_per_mac: f64,
        clock_hz: f64,
        cores: usize,
    ) -> Self {
        let seconds_per_mac = cycles_per_mac / clock_hz;
        let macs_per_second = 1.0 / seconds_per_mac;
        FrameworkPerf {
            name: name.into(),
            bit_width,
            cycles_per_mac,
            seconds_per_mac,
            macs_per_second,
            cores,
            macs_per_second_per_core: macs_per_second / cores as f64,
        }
    }
}
