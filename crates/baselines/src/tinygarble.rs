//! TinyGarble: the software sequential-GC baseline.
//!
//! Two layers:
//!
//! 1. [`TinyGarbleMac`] — a *working* software garbler: the serial
//!    (shift–add) multiplier MAC netlist garbled round by round with the
//!    shared `max-gc` engine, single-threaded, gate by gate in topological
//!    order. This is what a CPU-bound framework actually does, and its
//!    wall-clock throughput is what the criterion benches measure.
//! 2. [`model`] — the published Table 2 row: clock cycles per MAC measured
//!    by the paper's authors on their Intel CPU, calibrated exactly at
//!    b ∈ {8, 16, 32} and extended by the observed `≈ 2185·b²` scaling for
//!    other widths.

use max_crypto::Block;
use max_gc::{PrgLabelSource, SequentialGarbler, SequentialRound};
use max_netlist::{encode_signed, MacCircuit, MultiplierKind, Sign};

use crate::FrameworkPerf;

/// The implied CPU clock of the paper's Table 2 software rows
/// (cycles ÷ time = 3.40 GHz for all three columns).
pub const CPU_CLOCK_HZ: f64 = 3.405e9;

/// Published cycle counts per MAC: `(b, cycles)`.
const CALIBRATION: [(usize, f64); 3] = [(8, 1.44e5), (16, 5.45e5), (32, 2.24e6)];

/// The paper-calibrated performance model.
pub mod model {
    use super::*;

    /// Clock cycles per MAC at bit-width `b` (exact at the published
    /// points, `≈ 2185·b²` elsewhere).
    pub fn cycles_per_mac(bit_width: usize) -> f64 {
        for &(b, cycles) in &CALIBRATION {
            if b == bit_width {
                return cycles;
            }
        }
        2185.0 * (bit_width * bit_width) as f64
    }

    /// The full Table 2 row for TinyGarble at bit-width `b`.
    pub fn perf(bit_width: usize) -> FrameworkPerf {
        FrameworkPerf::from_cycles(
            "TinyGarble [16] on CPU",
            bit_width,
            cycles_per_mac(bit_width),
            CPU_CLOCK_HZ,
            1,
        )
    }
}

/// A working software TinyGarble-style MAC garbler (serial multiplier,
/// netlist-walking execution).
///
/// # Example
///
/// ```
/// use max_baselines::tinygarble::TinyGarbleMac;
///
/// let mut garbler = TinyGarbleMac::new(8, 24, 1);
/// let round = garbler.garble_round(5, true);
/// assert!(!round.material.tables.is_empty());
/// ```
#[derive(Debug)]
pub struct TinyGarbleMac {
    mac: MacCircuit,
    garbler: SequentialGarbler<PrgLabelSource>,
    bit_width: usize,
    acc_width: usize,
    rounds: u64,
}

impl TinyGarbleMac {
    /// Builds the garbler for `bit_width`-bit signed MACs.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator cannot hold a product.
    pub fn new(bit_width: usize, acc_width: usize, seed: u64) -> Self {
        let mac = MacCircuit::build(bit_width, acc_width, Sign::Signed, MultiplierKind::Serial);
        let garbler = SequentialGarbler::new(
            mac.netlist().clone(),
            PrgLabelSource::new(Block::new(seed as u128)),
            bit_width..bit_width + acc_width,
        );
        TinyGarbleMac {
            mac,
            garbler,
            bit_width,
            acc_width,
            rounds: 0,
        }
    }

    /// The MAC circuit being garbled.
    pub fn circuit(&self) -> &MacCircuit {
        &self.mac
    }

    /// Garbled tables produced per round.
    pub fn tables_per_round(&self) -> usize {
        self.mac.netlist().stats().and_gates
    }

    /// Garbles one MAC round with server input `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` does not fit the bit-width.
    pub fn garble_round(&mut self, a: i64, last: bool) -> SequentialRound {
        let a_bits = encode_signed(a, self.bit_width);
        let init = (self.rounds == 0).then(|| encode_signed(0, self.acc_width));
        self.rounds += 1;
        self.garbler.garble_round(&a_bits, init.as_deref(), last)
    }

    /// OT pairs for the most recent round (for driving an evaluator).
    pub fn evaluator_label_pairs(&self) -> Vec<(Block, Block)> {
        self.garbler.evaluator_label_pairs()
    }

    /// Garbles a whole dot product and returns tables/second wall-clock —
    /// the measured software rate criterion also reports.
    pub fn measure_rate(&mut self, rounds: usize) -> SoftwareRate {
        let start = std::time::Instant::now();
        let mut tables = 0usize;
        for r in 0..rounds {
            let round = self.garble_round(((r % 200) as i64) - 100, r == rounds - 1);
            tables += round.material.tables.len();
        }
        let elapsed = start.elapsed();
        SoftwareRate {
            rounds,
            tables,
            seconds: elapsed.as_secs_f64(),
        }
    }
}

/// Measured software garbling rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoftwareRate {
    /// MAC rounds garbled.
    pub rounds: usize,
    /// Garbled tables produced.
    pub tables: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl SoftwareRate {
    /// MACs per second.
    pub fn macs_per_second(&self) -> f64 {
        self.rounds as f64 / self.seconds
    }

    /// Tables per second.
    pub fn tables_per_second(&self) -> f64 {
        self.tables as f64 / self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use max_gc::SequentialEvaluator;

    #[test]
    fn model_matches_table2_exactly() {
        let p8 = model::perf(8);
        assert!((p8.cycles_per_mac - 1.44e5).abs() < 1.0);
        assert!((p8.seconds_per_mac * 1e6 - 42.29).abs() < 0.1);
        assert!((p8.macs_per_second - 2.36e4).abs() / 2.36e4 < 5e-3);
        let p32 = model::perf(32);
        assert!((p32.seconds_per_mac * 1e6 - 657.65).abs() < 1.0);
        assert!((p32.macs_per_second - 1.52e3).abs() / 1.52e3 < 5e-3);
        assert_eq!(p32.cores, 1);
        assert!((p32.macs_per_second_per_core - p32.macs_per_second).abs() < 1e-9);
    }

    #[test]
    fn model_scales_quadratically_between_points() {
        let c12 = model::cycles_per_mac(12);
        assert!((c12 - 2185.0 * 144.0).abs() < 1.0);
        assert!(model::cycles_per_mac(64) > model::cycles_per_mac(32) * 3.5);
    }

    #[test]
    fn software_garbler_is_correct() {
        // Drive the real software garbler against the real evaluator.
        let mut garbler = TinyGarbleMac::new(8, 24, 5);
        let mut evaluator = SequentialEvaluator::new(garbler.circuit().netlist().clone(), 8..32);
        let a = [7i64, -3, 50];
        let x = [2i64, 9, -4];
        let expected: i64 = a.iter().zip(&x).map(|(p, q)| p * q).sum();
        let mut result = None;
        for (l, (&al, &xl)) in a.iter().zip(&x).enumerate() {
            let round = garbler.garble_round(al, l == a.len() - 1);
            let x_bits = encode_signed(xl, 8);
            let labels: Vec<Block> = garbler
                .evaluator_label_pairs()
                .iter()
                .zip(&x_bits)
                .map(|(&(m0, m1), &bit)| if bit { m1 } else { m0 })
                .collect();
            result = evaluator.evaluate_round(&round, &labels);
        }
        assert_eq!(max_netlist::decode_signed(&result.unwrap()), expected);
    }

    #[test]
    fn measure_rate_counts_tables() {
        let mut garbler = TinyGarbleMac::new(8, 24, 6);
        let per_round = garbler.tables_per_round();
        let rate = garbler.measure_rate(4);
        assert_eq!(rate.rounds, 4);
        assert_eq!(rate.tables, 4 * per_round);
        assert!(rate.macs_per_second() > 0.0);
        assert!(rate.tables_per_second() > rate.macs_per_second());
    }

    #[test]
    fn serial_multiplier_has_fewer_tables_but_no_parallelism() {
        // The serial MAC netlist is slightly smaller than the tree one —
        // TinyGarble's cost is execution style, not gate count.
        let serial = MacCircuit::build(8, 24, Sign::Signed, MultiplierKind::Serial);
        let tree = MacCircuit::build(8, 24, Sign::Signed, MultiplierKind::Tree);
        assert!(serial.netlist().stats().and_gates <= tree.netlist().stats().and_gates);
    }
}
