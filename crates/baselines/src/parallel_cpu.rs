//! Multi-threaded *software* garbling — the §3 strawman.
//!
//! "In a processor, the threads communicate among themselves through shared
//! memory resources. To ensure that the threads do not read stale variables
//! … we need to create barriers both before and after a thread accessing
//! that memory. The time overhead of the barrier is much higher than the
//! time of generating one garbling table. As a result, parallelizing the GC
//! operation do\[es\] not result in improvement in timing."
//!
//! This module implements exactly that design — levelized garbling with
//! barriers between dependency levels, labels in shared memory — so the
//! claim can be *measured* instead of asserted: the `ablation_cpu_parallel`
//! binary reports barriers-per-table and the resulting (lack of) speedup on
//! MAC-sized netlists.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use max_crypto::{Block, FixedKeyHash, Tweak};
use max_gc::{garble_and, Delta, GarbledTable, LabelSource, PrgLabelSource};
use max_netlist::{GateKind, Netlist};

/// Shared label store: one atomic pair per wire. Levelized execution plus
/// acquire/release ordering make each wire single-writer-then-readers.
struct SharedLabels {
    lo: Vec<AtomicU64>,
    hi: Vec<AtomicU64>,
}

impl SharedLabels {
    fn new(initial: &[Block]) -> Self {
        SharedLabels {
            lo: initial
                .iter()
                .map(|b| AtomicU64::new(b.bits() as u64))
                .collect(),
            hi: initial
                .iter()
                .map(|b| AtomicU64::new((b.bits() >> 64) as u64))
                .collect(),
        }
    }

    fn load(&self, w: usize) -> Block {
        let l = self.lo[w].load(Ordering::Acquire) as u128;
        let h = self.hi[w].load(Ordering::Acquire) as u128;
        Block::new((h << 64) | l)
    }

    fn store(&self, w: usize, b: Block) {
        self.lo[w].store(b.bits() as u64, Ordering::Release);
        self.hi[w].store((b.bits() >> 64) as u64, Ordering::Release);
    }
}

/// Statistics of one parallel garbling run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Dependency levels (≈ barrier pairs executed).
    pub levels: usize,
    /// Barrier waits per thread.
    pub barrier_waits: usize,
    /// Garbled tables produced.
    pub tables: usize,
}

/// Garbles `netlist` with `threads` worker threads, one barrier pair per
/// AND-dependency level (the §3 shared-memory design). Returns the tables
/// in netlist-AND order, the output zero-labels, and the barrier counts.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn garble_parallel(
    netlist: &Netlist,
    seed: Block,
    threads: usize,
) -> (Vec<GarbledTable>, Vec<Block>, ParallelStats) {
    assert!(threads > 0, "need at least one thread");
    let mut source = PrgLabelSource::new(seed);
    let delta = Delta::from_block(source.next_label());

    // Input labels, exactly as the serial garbler assigns them.
    let mut zero_labels = vec![Block::ZERO; netlist.wire_count()];
    for wire in netlist
        .garbler_inputs()
        .iter()
        .chain(netlist.evaluator_inputs())
    {
        zero_labels[wire.index()] = source.next_label();
    }
    for &(wire, _) in netlist.constants() {
        zero_labels[wire.index()] = source.next_label();
    }

    // Levelize. An AND's level is one past the deepest AND in its fan-in;
    // free gates sit at their inputs' level. Per level L the schedule is:
    // garble ANDs of level L in parallel → barrier → thread 0 propagates
    // the free gates of level L → barrier.
    let mut wire_level = vec![0u32; netlist.wire_count()];
    let mut max_level = 0u32;
    let mut gate_levels = Vec::with_capacity(netlist.gates().len());
    for gate in netlist.gates() {
        let input_level = wire_level[gate.a.index()].max(wire_level[gate.b.index()]);
        let level = match gate.kind {
            GateKind::And => input_level + 1,
            _ => input_level,
        };
        gate_levels.push(level);
        wire_level[gate.out.index()] = level;
        max_level = max_level.max(level);
    }
    let n_levels = (max_level + 1) as usize;
    let mut and_levels: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_levels];
    let mut free_levels: Vec<Vec<usize>> = vec![Vec::new(); n_levels];
    let mut and_ordinal = 0usize;
    for (idx, gate) in netlist.gates().iter().enumerate() {
        let level = gate_levels[idx] as usize;
        match gate.kind {
            GateKind::And => {
                and_levels[level].push((idx, and_ordinal));
                and_ordinal += 1;
            }
            _ => free_levels[level].push(idx),
        }
    }
    let n_ands = and_ordinal;

    let labels = SharedLabels::new(&zero_labels);
    let table_slots: Vec<AtomicU64> = (0..n_ands * 4).map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(threads);
    let gates = netlist.gates();
    let mut barrier_waits = 0usize;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let and_levels = &and_levels;
            let free_levels = &free_levels;
            let barrier = &barrier;
            let labels = &labels;
            let table_slots = &table_slots;
            handles.push(scope.spawn(move || {
                let hash = FixedKeyHash::new();
                let mut waits = 0usize;
                for level in 0..and_levels.len() {
                    for (i, &(gate_idx, ordinal)) in and_levels[level].iter().enumerate() {
                        if i % threads != t {
                            continue;
                        }
                        let gate = gates[gate_idx];
                        let a0 = labels.load(gate.a.index());
                        let b0 = labels.load(gate.b.index());
                        let tweak = Tweak::from_gate_index(ordinal as u64);
                        let (c0, table) = garble_and(&hash, delta, a0, b0, tweak);
                        labels.store(gate.out.index(), c0);
                        table_slots[4 * ordinal].store(table.tg.bits() as u64, Ordering::Release);
                        table_slots[4 * ordinal + 1]
                            .store((table.tg.bits() >> 64) as u64, Ordering::Release);
                        table_slots[4 * ordinal + 2]
                            .store(table.te.bits() as u64, Ordering::Release);
                        table_slots[4 * ordinal + 3]
                            .store((table.te.bits() >> 64) as u64, Ordering::Release);
                    }
                    barrier.wait();
                    waits += 1;
                    if t == 0 {
                        for &gate_idx in &free_levels[level] {
                            let gate = gates[gate_idx];
                            let a = labels.load(gate.a.index());
                            let out = match gate.kind {
                                GateKind::Xor => a ^ labels.load(gate.b.index()),
                                GateKind::Not => a ^ delta.block(),
                                GateKind::And => unreachable!("free levels hold no ANDs"),
                            };
                            labels.store(gate.out.index(), out);
                        }
                    }
                    barrier.wait();
                    waits += 1;
                }
                waits
            }));
        }
        for handle in handles {
            barrier_waits = handle.join().expect("worker thread");
        }
    });

    let tables: Vec<GarbledTable> = (0..n_ands)
        .map(|o| {
            let tg = (table_slots[4 * o + 1].load(Ordering::Acquire) as u128) << 64
                | table_slots[4 * o].load(Ordering::Acquire) as u128;
            let te = (table_slots[4 * o + 3].load(Ordering::Acquire) as u128) << 64
                | table_slots[4 * o + 2].load(Ordering::Acquire) as u128;
            GarbledTable {
                tg: Block::new(tg),
                te: Block::new(te),
            }
        })
        .collect();
    let outputs = netlist
        .outputs()
        .iter()
        .map(|w| labels.load(w.index()))
        .collect();
    (
        tables,
        outputs,
        ParallelStats {
            levels: n_levels,
            barrier_waits,
            tables: n_ands,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use max_netlist::{MacCircuit, MultiplierKind, Sign};

    fn serial_reference(netlist: &Netlist, seed: Block) -> (Vec<GarbledTable>, Vec<Block>) {
        // The single-threaded equivalent, using the same label draw order.
        let (tables, outputs, _) = garble_parallel(netlist, seed, 1);
        (tables, outputs)
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let mac = MacCircuit::build(6, 14, Sign::Signed, MultiplierKind::Tree);
        let seed = Block::new(0xbeef);
        let (t1, o1) = serial_reference(mac.netlist(), seed);
        for threads in [2usize, 3, 4, 8] {
            let (tn, on, stats) = garble_parallel(mac.netlist(), seed, threads);
            assert_eq!(tn, t1, "{threads} threads: tables differ");
            assert_eq!(on, o1, "{threads} threads: outputs differ");
            assert!(stats.barrier_waits >= 2 * stats.levels - 2);
        }
    }

    #[test]
    fn parallel_tables_evaluate_correctly() {
        use max_crypto::FixedKeyHash;
        use max_gc::evaluate_and;
        use max_netlist::encode_signed;

        let mac = MacCircuit::build(4, 10, Sign::Signed, MultiplierKind::Tree);
        let netlist = mac.netlist();
        let seed = Block::new(0x1dea);
        let (tables, out_zero, _) = garble_parallel(netlist, seed, 4);

        // Rebuild the evaluator path manually with the same seed.
        let mut source = PrgLabelSource::new(seed);
        let delta = Delta::from_block(source.next_label());
        let mut zero = vec![Block::ZERO; netlist.wire_count()];
        for wire in netlist
            .garbler_inputs()
            .iter()
            .chain(netlist.evaluator_inputs())
        {
            zero[wire.index()] = source.next_label();
        }
        for &(wire, _) in netlist.constants() {
            zero[wire.index()] = source.next_label();
        }
        // Active labels for a = 3, acc = 5, x = -2.
        let mut bits = mac.garbler_bits(3, 5);
        bits.extend(mac.evaluator_bits(-2));
        let all_inputs: Vec<_> = netlist
            .garbler_inputs()
            .iter()
            .chain(netlist.evaluator_inputs())
            .copied()
            .collect();
        let mut active = vec![Block::ZERO; netlist.wire_count()];
        for (wire, &bit) in all_inputs.iter().zip(&bits) {
            let z = zero[wire.index()];
            active[wire.index()] = if bit { z ^ delta.block() } else { z };
        }
        for &(wire, value) in netlist.constants() {
            let z = zero[wire.index()];
            active[wire.index()] = if value { z ^ delta.block() } else { z };
        }
        let hash = FixedKeyHash::new();
        let mut ordinal = 0u64;
        for gate in netlist.gates() {
            let a = active[gate.a.index()];
            let b = active[gate.b.index()];
            active[gate.out.index()] = match gate.kind {
                max_netlist::GateKind::And => {
                    let t = Tweak::from_gate_index(ordinal);
                    let table = tables[ordinal as usize];
                    ordinal += 1;
                    evaluate_and(&hash, table, a, b, t)
                }
                max_netlist::GateKind::Xor => a ^ b,
                max_netlist::GateKind::Not => a,
            };
        }
        let out_bits: Vec<bool> = netlist
            .outputs()
            .iter()
            .zip(&out_zero)
            .map(|(w, z)| active[w.index()].lsb() ^ z.lsb())
            .collect();
        assert_eq!(max_netlist::decode_signed(&out_bits), 5 + 3 * -2);
        let _ = encode_signed;
    }

    #[test]
    fn barrier_count_scales_with_depth() {
        let shallow = MacCircuit::build(4, 10, Sign::Signed, MultiplierKind::Tree);
        let deep = MacCircuit::build(8, 24, Sign::Signed, MultiplierKind::Tree);
        let (_, _, s1) = garble_parallel(shallow.netlist(), Block::new(1), 2);
        let (_, _, s2) = garble_parallel(deep.netlist(), Block::new(1), 2);
        assert!(s2.levels > s1.levels);
        assert!(s2.barrier_waits > s1.barrier_waits);
        // The §3 observation in numbers: at MAC scale there are only a few
        // tables of work per barrier pair.
        let tables_per_barrier = s2.tables as f64 / s2.barrier_waits as f64;
        assert!(
            tables_per_barrier < 10.0,
            "tables per barrier: {tables_per_barrier}"
        );
    }
}
