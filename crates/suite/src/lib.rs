//! Umbrella crate hosting the repository-level `examples/` and `tests/`
//! directories (Cargo requires a package to own them; this one depends on
//! every crate in the workspace).
//!
//! Run an example with e.g.:
//!
//! ```text
//! cargo run -p max-suite --example quickstart
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Workspace name, re-exported so the crate is non-empty.
pub const WORKSPACE: &str = "maxelerator";
