//! Property tests for the OT stack: correctness for arbitrary messages and
//! choice vectors, across batch sizes and sessions.

use max_crypto::Block;
use max_ot::{base::run_base_ot, iknp, run_chosen_ot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn base_ot_delivers_exactly_the_choice(
        seed in 0u64..1_000_000,
        msgs in prop::collection::vec((any::<u128>(), any::<u128>()), 1..24),
        choice_bits in prop::collection::vec(any::<bool>(), 24),
    ) {
        let pairs: Vec<(Block, Block)> = msgs
            .iter()
            .map(|&(a, b)| (Block::new(a), Block::new(b)))
            .collect();
        let choices = &choice_bits[..pairs.len()];
        let got = run_base_ot(seed, &pairs, choices);
        for ((g, p), &c) in got.iter().zip(&pairs).zip(choices) {
            prop_assert_eq!(*g, if c { p.1 } else { p.0 });
        }
    }

    #[test]
    fn extension_delivers_exactly_the_choice(
        seed in 0u64..1_000_000,
        msgs in prop::collection::vec((any::<u128>(), any::<u128>()), 1..200),
        choice_bits in prop::collection::vec(any::<bool>(), 200),
    ) {
        let pairs: Vec<(Block, Block)> = msgs
            .iter()
            .map(|&(a, b)| (Block::new(a), Block::new(b)))
            .collect();
        let choices = &choice_bits[..pairs.len()];
        let got = run_chosen_ot(seed, &pairs, choices);
        for ((g, p), &c) in got.iter().zip(&pairs).zip(choices) {
            prop_assert_eq!(*g, if c { p.1 } else { p.0 });
        }
    }

    #[test]
    fn correlated_ot_offsets_are_exact(
        seed in 0u64..1_000_000,
        delta_bits: u128,
        n in 1usize..150,
        choice_bits in prop::collection::vec(any::<bool>(), 150),
    ) {
        let delta = Block::new(delta_bits);
        let choices = &choice_bits[..n];
        let (mut sender, mut receiver) = iknp::setup_pair(seed);
        let (msg, keys) = receiver.prepare(choices);
        let (zeros, cor) = sender.send_correlated(&msg, delta);
        let got = receiver.receive_correlated(&cor, &keys, choices);
        for ((g, &m0), &c) in got.iter().zip(&zeros).zip(choices) {
            prop_assert_eq!(*g, if c { m0 ^ delta } else { m0 });
        }
    }
}
