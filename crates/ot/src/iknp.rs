//! IKNP OT extension: 128 base OTs bootstrap unboundedly many transfers
//! using only symmetric crypto (fixed-key AES).
//!
//! Column/row convention: the receiver builds a `m × 128` bit matrix `T`
//! column by column from PRG-expanded base-OT seeds; the sender reconstructs
//! `Q` with `q_j = t_j ⊕ r_j·s`. Each row is one 128-bit [`Block`].

use max_crypto::{AesPrg, Block, FixedKeyHash, Tweak};

use crate::base::{BaseOtReceiver, BaseOtSender};

/// Security parameter: number of base OTs / matrix width.
pub const KAPPA: usize = 128;

/// Receiver → sender correction message: one packed `m`-bit column per base
/// OT.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtendMsg {
    /// `u_i = G(k_i^0) ⊕ G(k_i^1) ⊕ r`, bit-packed into u64 words.
    pub columns: Vec<Vec<u64>>,
    /// Number of transfers this message covers.
    pub count: usize,
}

/// Sender → receiver ciphertexts: one pair per transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CipherMsg {
    /// `(y_j^0, y_j^1)` per transfer.
    pub pairs: Vec<(Block, Block)>,
}

/// Extension sender (holds the GC wire-label pairs).
///
/// `Clone` snapshots the whole extension state (PRG counters and the
/// session counter feeding the hash tweaks) — the primitive behind
/// resumable sessions: both parties can roll back to a cloned snapshot and
/// replay an exchange bit-identically.
#[derive(Clone, Debug)]
pub struct OtExtSender {
    /// Secret choice bits `s` of the base OTs.
    s: [bool; KAPPA],
    /// PRGs seeded with the base-OT outputs `k_i^{s_i}`.
    prgs: Vec<AesPrg>,
    hash: FixedKeyHash,
    session: u64,
}

/// Portable snapshot of an [`OtExtSender`]'s mutable state, relative to the
/// seed its [`setup_pair`] ran from.
///
/// Everything else in the sender — the secret `s` bits, the PRG keys, the
/// fixed hash key — is a pure function of the setup seed, so
/// `(setup seed, OtSenderState)` fully determines the sender: rebuild with
/// [`setup_pair`] and [`OtExtSender::import_state`] and the wire output
/// continues bit-identically. This is what lets a serving layer persist OT
/// checkpoints to disk (a crash-recovery journal) instead of only cloning
/// them in memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OtSenderState {
    /// Extension rounds completed (feeds the per-round hash tweaks).
    pub session: u64,
    /// Absolute CTR counters of the `KAPPA` column PRGs, in column order.
    pub counters: Vec<u128>,
}

/// Error restoring an [`OtSenderState`] whose counter vector does not have
/// one entry per base-OT column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OtStateShapeError {
    /// Columns the sender has (always [`KAPPA`]).
    pub expected: usize,
    /// Counters the snapshot carried.
    pub got: usize,
}

impl std::fmt::Display for OtStateShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OT sender state has {} PRG counters, expected {}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for OtStateShapeError {}

impl OtExtSender {
    /// Exports the sender's mutable state; see [`OtSenderState`].
    pub fn export_state(&self) -> OtSenderState {
        OtSenderState {
            session: self.session,
            counters: self.prgs.iter().map(AesPrg::counter).collect(),
        }
    }

    /// Restores a state exported from a sender with the same setup seed.
    ///
    /// # Errors
    ///
    /// Fails (leaving the sender untouched) if the snapshot does not carry
    /// exactly one counter per column — the typed guard that keeps hostile
    /// or truncated persisted state from panicking a replay.
    pub fn import_state(&mut self, state: &OtSenderState) -> Result<(), OtStateShapeError> {
        if state.counters.len() != self.prgs.len() {
            return Err(OtStateShapeError {
                expected: self.prgs.len(),
                got: state.counters.len(),
            });
        }
        for (prg, &counter) in self.prgs.iter_mut().zip(&state.counters) {
            prg.set_counter(counter);
        }
        self.session = state.session;
        Ok(())
    }
}

/// Extension receiver (holds the choice bits).
///
/// `Clone` snapshots the extension state; see [`OtExtSender`].
#[derive(Clone, Debug)]
pub struct OtExtReceiver {
    /// PRG pairs from both base-OT seeds.
    prgs: Vec<(AesPrg, AesPrg)>,
    hash: FixedKeyHash,
    session: u64,
}

/// Runs the 128 base OTs (in memory) and returns a connected sender/receiver
/// pair ready to extend.
pub fn setup_pair(seed: u64) -> (OtExtSender, OtExtReceiver) {
    let _span = max_telemetry::span("ot_base_setup");
    max_telemetry::counter_add("ot.base.transfers", KAPPA as u64);
    let mut seed_prg = AesPrg::with_stream(Block::new(0x6b6e_7073 ^ seed as u128), 0);
    // Receiver of the *extension* acts as base-OT sender with random seed pairs.
    let seed_pairs: Vec<(Block, Block)> = (0..KAPPA)
        .map(|_| (seed_prg.next_block(), seed_prg.next_block()))
        .collect();
    // Sender of the extension picks its secret s and base-OT-receives.
    let mut s = [false; KAPPA];
    let s_bits = seed_prg.next_block();
    for (i, slot) in s.iter_mut().enumerate() {
        *slot = s_bits.bit(i);
    }

    let mut base_sender_prg = AesPrg::with_stream(Block::new(seed as u128), 2);
    let mut base_receiver_prg = AesPrg::with_stream(Block::new(seed as u128), 3);
    let (base_sender, setup) = BaseOtSender::new(&mut base_sender_prg);
    let (base_receiver, msg) = BaseOtReceiver::new(&mut base_receiver_prg, setup, &s);
    let ciphers = base_sender.encrypt(&msg, &seed_pairs);
    let received = base_receiver.decrypt(&ciphers, &s);

    let sender = OtExtSender {
        s,
        prgs: received
            .iter()
            .map(|&k| AesPrg::with_stream(k, 0x4f54))
            .collect(),
        hash: FixedKeyHash::new(),
        session: 0,
    };
    let receiver = OtExtReceiver {
        prgs: seed_pairs
            .iter()
            .map(|&(k0, k1)| {
                (
                    AesPrg::with_stream(k0, 0x4f54),
                    AesPrg::with_stream(k1, 0x4f54),
                )
            })
            .collect(),
        hash: FixedKeyHash::new(),
        session: 0,
    };
    (sender, receiver)
}

/// Packs bools into u64 words.
fn pack(bits: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; bits.len().div_ceil(64)];
    for (i, &bit) in bits.iter().enumerate() {
        words[i / 64] |= (bit as u64) << (i % 64);
    }
    words
}

fn prg_column(prg: &mut AesPrg, m: usize) -> Vec<u64> {
    // One batched PRG fill per column. Consumes exactly the same number of
    // counter blocks as the former block-at-a-time loop (⌈⌈m/64⌉/2⌉), so
    // transcripts and resume snapshots stay bit-identical.
    let want = m.div_ceil(64);
    let blocks = prg.blocks(want.div_ceil(2));
    let mut words = Vec::with_capacity(want);
    for block in blocks {
        let bits = block.bits();
        words.push(bits as u64);
        if words.len() < want {
            words.push((bits >> 64) as u64);
        }
    }
    words
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3): afterwards
/// `a[r]` bit `c` equals the original `a[c]` bit `r`.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & mask;
            a[k + j] ^= t;
            a[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Transposes the KAPPA packed bit-columns into `m` 128-bit rows.
///
/// Works 64×64 blocks at a time with word-wise swaps — one transpose per
/// job — replacing the former per-row, per-column `column_bit` probing
/// (O(m·128) shift-and-mask operations).
fn columns_to_rows(columns: &[Vec<u64>], m: usize) -> Vec<Block> {
    debug_assert_eq!(columns.len(), KAPPA);
    let mut rows = Vec::with_capacity(m);
    let mut lo = [0u64; 64];
    let mut hi = [0u64; 64];
    // `chunk` strides across all 128 column vectors at once; there is no
    // single slice to iterate, so the index loop stays.
    #[allow(clippy::needless_range_loop)]
    for chunk in 0..m.div_ceil(64) {
        for (i, (lo_slot, hi_slot)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
            *lo_slot = columns[i][chunk];
            *hi_slot = columns[i + 64][chunk];
        }
        transpose64(&mut lo);
        transpose64(&mut hi);
        let take = (m - chunk * 64).min(64);
        for j in 0..take {
            rows.push(Block::new(lo[j] as u128 | (hi[j] as u128) << 64));
        }
    }
    rows
}

/// The OT-session hash tweak for transfer `j` (domain-separated from GC
/// gate tweaks by bit 62).
fn session_tweak(session: u64, j: usize) -> Tweak {
    Tweak::from_gate_index((session << 40) | j as u64 | 1 << 62)
}

impl OtExtReceiver {
    /// Expands the seed PRGs for `choices.len()` transfers and produces the
    /// correction message plus the decryption keys `t_j` (rows of `T`).
    pub fn prepare(&mut self, choices: &[bool]) -> (ExtendMsg, Vec<Block>) {
        let m = choices.len();
        max_telemetry::counter_add("ot.ext.rounds", 1);
        max_telemetry::counter_add("ot.ext.transfers", m as u64);
        // The correction message: KAPPA packed m-bit columns.
        max_telemetry::counter_add("ot.ext.upload_bytes", (KAPPA * m.div_ceil(64) * 8) as u64);
        let r = pack(choices);
        let mut t_columns = Vec::with_capacity(KAPPA);
        let mut u_columns = Vec::with_capacity(KAPPA);
        for (prg0, prg1) in &mut self.prgs {
            let t = prg_column(prg0, m);
            let g1 = prg_column(prg1, m);
            let u: Vec<u64> = t
                .iter()
                .zip(&g1)
                .zip(&r)
                .map(|((&ti, &gi), &ri)| ti ^ gi ^ ri)
                .collect();
            t_columns.push(t);
            u_columns.push(u);
        }
        // Transpose T's columns into per-transfer rows (one word-wise
        // transpose for the whole batch).
        let keys = columns_to_rows(&t_columns, m);
        (
            ExtendMsg {
                columns: u_columns,
                count: m,
            },
            keys,
        )
    }

    /// Decrypts the chosen message of each pair.
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent.
    pub fn receive(&mut self, cipher: &CipherMsg, keys: &[Block], choices: &[bool]) -> Vec<Block> {
        assert_eq!(cipher.pairs.len(), keys.len(), "cipher count mismatch");
        assert_eq!(choices.len(), keys.len(), "choice count mismatch");
        let session = self.session;
        self.session += 1;
        let inputs: Vec<(Block, Tweak)> = keys
            .iter()
            .enumerate()
            .map(|(j, &t)| (t, session_tweak(session, j)))
            .collect();
        let masks = self.hash.hash_slice(&inputs);
        cipher
            .pairs
            .iter()
            .zip(masks)
            .zip(choices)
            .map(|((&(y0, y1), mask), &c)| if c { y1 ^ mask } else { y0 ^ mask })
            .collect()
    }
}

impl OtExtSender {
    /// Encrypts `pairs` against the receiver's correction message.
    ///
    /// # Panics
    ///
    /// Panics if `pairs.len() != msg.count` or the message is malformed.
    pub fn send(&mut self, msg: &ExtendMsg, pairs: &[(Block, Block)]) -> CipherMsg {
        assert_eq!(pairs.len(), msg.count, "pair count mismatch");
        assert_eq!(msg.columns.len(), KAPPA, "malformed extension message");
        let m = msg.count;
        // Chosen-message OT downloads two 16-byte ciphertexts per transfer.
        max_telemetry::counter_add("ot.ext.download_bytes", (m * 32) as u64);
        // q_i = G(k_i^{s_i}) ⊕ s_i·u_i per column.
        let q_columns: Vec<Vec<u64>> = self
            .prgs
            .iter_mut()
            .zip(&self.s)
            .zip(&msg.columns)
            .map(|((prg, &si), u)| {
                assert_eq!(u.len(), m.div_ceil(64), "malformed column");
                let g = prg_column(prg, m);
                g.iter()
                    .zip(u)
                    .map(|(&gi, &ui)| if si { gi ^ ui } else { gi })
                    .collect()
            })
            .collect();
        let s_block = {
            let mut bits = 0u128;
            for (i, &si) in self.s.iter().enumerate() {
                bits |= (si as u128) << i;
            }
            Block::new(bits)
        };
        let session = self.session;
        self.session += 1;
        let rows = columns_to_rows(&q_columns, m);
        let mut inputs = Vec::with_capacity(2 * m);
        for (j, &q) in rows.iter().enumerate() {
            let tweak = session_tweak(session, j);
            inputs.push((q, tweak));
            inputs.push((q ^ s_block, tweak));
        }
        let hashes = self.hash.hash_slice(&inputs);
        let out = pairs
            .iter()
            .enumerate()
            .map(|(j, &(p0, p1))| (p0 ^ hashes[2 * j], p1 ^ hashes[2 * j + 1]))
            .collect();
        CipherMsg { pairs: out }
    }
}

/// Correlated-OT corrections: one ciphertext per transfer (half the data of
/// chosen-message OT).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorrelatedMsg {
    /// `y_j = H(q_j ⊕ s) ⊕ H(q_j) ⊕ Δ` per transfer.
    pub corrections: Vec<Block>,
}

impl OtExtSender {
    /// Correlated OT (Δ-OT): the message pairs are `(m_j, m_j ⊕ delta)`
    /// with `m_j` *chosen by the protocol* (returned to the sender). Only
    /// one correction block travels per transfer — this is how GC
    /// implementations deliver Free-XOR input labels at half the OT
    /// bandwidth; the garbler adopts the returned `m_j` as the wire
    /// zero-labels.
    ///
    /// # Panics
    ///
    /// Panics if the extension message is malformed.
    pub fn send_correlated(
        &mut self,
        msg: &ExtendMsg,
        delta: Block,
    ) -> (Vec<Block>, CorrelatedMsg) {
        assert_eq!(msg.columns.len(), KAPPA, "malformed extension message");
        let m = msg.count;
        // Correlated OT halves the download: one correction per transfer.
        max_telemetry::counter_add("ot.ext.download_bytes", (m * 16) as u64);
        let q_columns: Vec<Vec<u64>> = self
            .prgs
            .iter_mut()
            .zip(&self.s)
            .zip(&msg.columns)
            .map(|((prg, &si), u)| {
                assert_eq!(u.len(), m.div_ceil(64), "malformed column");
                let g = prg_column(prg, m);
                g.iter()
                    .zip(u)
                    .map(|(&gi, &ui)| if si { gi ^ ui } else { gi })
                    .collect()
            })
            .collect();
        let s_block = {
            let mut bits = 0u128;
            for (i, &si) in self.s.iter().enumerate() {
                bits |= (si as u128) << i;
            }
            Block::new(bits)
        };
        let session = self.session;
        self.session += 1;
        let rows = columns_to_rows(&q_columns, m);
        let mut inputs = Vec::with_capacity(2 * m);
        for (j, &q) in rows.iter().enumerate() {
            let tweak = session_tweak(session, j);
            inputs.push((q, tweak));
            inputs.push((q ^ s_block, tweak));
        }
        let hashes = self.hash.hash_slice(&inputs);
        let mut zeros = Vec::with_capacity(m);
        let mut corrections = Vec::with_capacity(m);
        for j in 0..m {
            let m0 = hashes[2 * j];
            let m1_mask = hashes[2 * j + 1];
            zeros.push(m0);
            corrections.push(m1_mask ^ m0 ^ delta);
        }
        (zeros, CorrelatedMsg { corrections })
    }
}

impl OtExtReceiver {
    /// Receiver side of [`OtExtSender::send_correlated`]: obtains
    /// `m_j ⊕ choice_j·Δ` without learning Δ or the other message.
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent.
    pub fn receive_correlated(
        &mut self,
        msg: &CorrelatedMsg,
        keys: &[Block],
        choices: &[bool],
    ) -> Vec<Block> {
        assert_eq!(
            msg.corrections.len(),
            keys.len(),
            "correction count mismatch"
        );
        assert_eq!(choices.len(), keys.len(), "choice count mismatch");
        let session = self.session;
        self.session += 1;
        let inputs: Vec<(Block, Tweak)> = keys
            .iter()
            .enumerate()
            .map(|(j, &t)| (t, session_tweak(session, j)))
            .collect();
        let masks = self.hash.hash_slice(&inputs);
        msg.corrections
            .iter()
            .zip(masks)
            .zip(choices)
            .map(|((&y, mask), &c)| mask.xor_if(y, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg_pairs(n: usize) -> Vec<(Block, Block)> {
        (0..n)
            .map(|i| {
                (
                    Block::new(0x1000 + i as u128),
                    Block::new(0x2000 + i as u128),
                )
            })
            .collect()
    }

    /// Bit-at-a-time column probe, the reference the word-wise transpose
    /// replaced; kept to pin the transpose against first principles.
    fn column_bit(words: &[u64], j: usize) -> bool {
        (words[j / 64] >> (j % 64)) & 1 == 1
    }

    #[test]
    fn transpose64_matches_bitwise_reference() {
        let mut prg = AesPrg::new(Block::new(0x7a7a));
        let original: Vec<u64> = (0..64).map(|_| prg.next_block().bits() as u64).collect();
        let mut a = [0u64; 64];
        a.copy_from_slice(&original);
        transpose64(&mut a);
        for (r, row) in a.iter().enumerate() {
            for (c, col) in original.iter().enumerate() {
                assert_eq!(
                    (row >> c) & 1,
                    (col >> r) & 1,
                    "transpose mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn columns_to_rows_matches_column_bit_reference() {
        for m in [1usize, 63, 64, 65, 128, 200] {
            let mut prg = AesPrg::new(Block::new(m as u128));
            let columns: Vec<Vec<u64>> = (0..KAPPA).map(|_| prg_column(&mut prg, m)).collect();
            let rows = columns_to_rows(&columns, m);
            assert_eq!(rows.len(), m);
            for (j, row) in rows.iter().enumerate() {
                let mut want = 0u128;
                for (i, col) in columns.iter().enumerate() {
                    want |= (column_bit(col, j) as u128) << i;
                }
                assert_eq!(*row, Block::new(want), "m={m} row {j}");
            }
        }
    }

    #[test]
    fn prg_column_consumes_the_scalar_block_count() {
        // The batched fill must draw exactly ⌈⌈m/64⌉/2⌉ blocks so PRG
        // streams (and with them resume snapshots) stay aligned.
        for m in [0usize, 1, 63, 64, 65, 127, 128, 129, 500] {
            let mut batched = AesPrg::new(Block::new(0xc01));
            let mut scalar = AesPrg::new(Block::new(0xc01));
            let words = prg_column(&mut batched, m);
            let want = m.div_ceil(64);
            assert_eq!(words.len(), want);
            let mut reference = Vec::with_capacity(want);
            while reference.len() * 64 < m {
                let block = scalar.next_block().bits();
                reference.push(block as u64);
                if reference.len() * 64 < m {
                    reference.push((block >> 64) as u64);
                }
            }
            reference.truncate(want);
            assert_eq!(words, reference, "m={m}");
            assert_eq!(batched.next_block(), scalar.next_block(), "m={m} counter");
        }
    }

    #[test]
    fn extension_delivers_chosen_messages() {
        let (mut sender, mut receiver) = setup_pair(11);
        let n = 300;
        let pairs = msg_pairs(n);
        let choices: Vec<bool> = (0..n).map(|i| i % 5 < 2).collect();
        let (msg, keys) = receiver.prepare(&choices);
        let cipher = sender.send(&msg, &pairs);
        let got = receiver.receive(&cipher, &keys, &choices);
        for ((g, p), &c) in got.iter().zip(&pairs).zip(&choices) {
            assert_eq!(*g, if c { p.1 } else { p.0 });
        }
    }

    #[test]
    fn multiple_extends_from_one_setup() {
        let (mut sender, mut receiver) = setup_pair(13);
        for round in 0..4 {
            let n = 64 + round * 37;
            let pairs = msg_pairs(n);
            let choices: Vec<bool> = (0..n).map(|i| (i + round) % 2 == 0).collect();
            let (msg, keys) = receiver.prepare(&choices);
            let cipher = sender.send(&msg, &pairs);
            let got = receiver.receive(&cipher, &keys, &choices);
            for ((g, p), &c) in got.iter().zip(&pairs).zip(&choices) {
                assert_eq!(*g, if c { p.1 } else { p.0 }, "round {round}");
            }
        }
    }

    #[test]
    fn non_multiple_of_64_counts() {
        for n in [1usize, 63, 64, 65, 127, 129] {
            let (mut sender, mut receiver) = setup_pair(17 + n as u64);
            let pairs = msg_pairs(n);
            let choices: Vec<bool> = (0..n).map(|i| i % 3 == 1).collect();
            let (msg, keys) = receiver.prepare(&choices);
            let cipher = sender.send(&msg, &pairs);
            let got = receiver.receive(&cipher, &keys, &choices);
            for ((g, p), &c) in got.iter().zip(&pairs).zip(&choices) {
                assert_eq!(*g, if c { p.1 } else { p.0 }, "n = {n}");
            }
        }
    }

    #[test]
    fn unchosen_slot_is_masked() {
        let (mut sender, mut receiver) = setup_pair(19);
        let pairs = msg_pairs(16);
        let choices = vec![false; 16];
        let (msg, keys) = receiver.prepare(&choices);
        let cipher = sender.send(&msg, &pairs);
        // Try to open the *other* slot with the honest keys: must fail.
        let wrong = receiver.receive(&cipher, &keys, &[true; 16]);
        for (w, p) in wrong.iter().zip(&pairs) {
            assert_ne!(*w, p.1);
        }
    }

    #[test]
    fn correlated_ot_delivers_offset_pairs() {
        let (mut sender, mut receiver) = setup_pair(29);
        let delta = Block::new(0xdddd_1111_2222_3333_4444_5555_6666_7777);
        let n = 200;
        let choices: Vec<bool> = (0..n).map(|i| i % 7 < 3).collect();
        let (msg, keys) = receiver.prepare(&choices);
        let (zeros, cor) = sender.send_correlated(&msg, delta);
        let got = receiver.receive_correlated(&cor, &keys, &choices);
        assert_eq!(cor.corrections.len(), n);
        for ((g, &m0), &c) in got.iter().zip(&zeros).zip(&choices) {
            let want = if c { m0 ^ delta } else { m0 };
            assert_eq!(*g, want);
        }
    }

    #[test]
    fn correlated_ot_halves_the_data() {
        // n chosen-message OTs cost 2n blocks; correlated OTs cost n.
        let (mut sender, mut receiver) = setup_pair(31);
        let n = 64;
        let choices = vec![true; n];
        let (msg, _keys) = receiver.prepare(&choices);
        let (_, cor) = sender.send_correlated(&msg, Block::new(1));
        let chosen_blocks = 2 * n;
        assert_eq!(cor.corrections.len() * 2, chosen_blocks);
    }

    #[test]
    fn correlated_then_chosen_sessions_do_not_collide() {
        let (mut sender, mut receiver) = setup_pair(37);
        let n = 16;
        let choices: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let (msg1, keys1) = receiver.prepare(&choices);
        let (zeros, cor) = sender.send_correlated(&msg1, Block::new(0xff));
        let got1 = receiver.receive_correlated(&cor, &keys1, &choices);
        for ((g, &m0), &c) in got1.iter().zip(&zeros).zip(&choices) {
            assert_eq!(*g, m0.xor_if(Block::new(0xff), c));
        }
        // A later chosen-message batch on the same setup still works.
        let pairs = msg_pairs(n);
        let (msg2, keys2) = receiver.prepare(&choices);
        let cipher = sender.send(&msg2, &pairs);
        let got2 = receiver.receive(&cipher, &keys2, &choices);
        for ((g, p), &c) in got2.iter().zip(&pairs).zip(&choices) {
            assert_eq!(*g, if c { p.1 } else { p.0 });
        }
    }

    #[test]
    fn cloned_endpoints_replay_bit_identically() {
        // The resume protocol depends on Clone being a true state snapshot:
        // rolling both halves back and replaying must reproduce the exact
        // same wire messages.
        let (mut sender, mut receiver) = setup_pair(41);
        let warmup: Vec<bool> = (0..96).map(|i| i % 3 == 0).collect();
        let (msg, keys) = receiver.prepare(&warmup);
        let cipher = sender.send(&msg, &msg_pairs(96));
        let _ = receiver.receive(&cipher, &keys, &warmup);

        let sender_snap = sender.clone();
        let receiver_snap = receiver.clone();
        let choices: Vec<bool> = (0..70).map(|i| i % 2 == 1).collect();
        let pairs = msg_pairs(70);
        let (msg1, keys1) = receiver.prepare(&choices);
        let cipher1 = sender.send(&msg1, &pairs);

        let mut sender2 = sender_snap;
        let mut receiver2 = receiver_snap;
        let (msg2, keys2) = receiver2.prepare(&choices);
        assert_eq!(msg1, msg2);
        assert_eq!(keys1, keys2);
        let cipher2 = sender2.send(&msg2, &pairs);
        assert_eq!(cipher1, cipher2);
        let got = receiver2.receive(&cipher2, &keys2, &choices);
        for ((g, p), &c) in got.iter().zip(&pairs).zip(&choices) {
            assert_eq!(*g, if c { p.1 } else { p.0 });
        }
    }

    #[test]
    fn exported_state_rebuilds_a_bit_identical_sender() {
        // The durability contract: setup_pair(seed) + import_state must
        // continue the wire stream exactly where the exported sender stood,
        // even across "process death" (here: a brand-new sender value).
        let (mut sender, mut receiver) = setup_pair(43);
        for round in 0..3 {
            let n = 80 + round * 11;
            let choices: Vec<bool> = (0..n).map(|i| (i ^ round) % 3 == 0).collect();
            let (msg, _keys) = receiver.prepare(&choices);
            let _ = sender.send(&msg, &msg_pairs(n));
        }
        let state = sender.export_state();

        let (mut rebuilt, _) = setup_pair(43);
        assert_ne!(rebuilt.export_state(), state, "warmup must advance state");
        rebuilt.import_state(&state).expect("shape matches");
        assert_eq!(rebuilt.export_state(), state);

        let choices: Vec<bool> = (0..120).map(|i| i % 2 == 0).collect();
        let pairs = msg_pairs(120);
        let (msg, _keys) = receiver.prepare(&choices);
        let want = sender.send(&msg, &pairs);
        let got = rebuilt.send(&msg, &pairs);
        assert_eq!(want, got, "rebuilt sender diverged from the original");
    }

    #[test]
    fn import_state_rejects_wrong_shapes_without_mutating() {
        let (mut sender, _) = setup_pair(47);
        let before = sender.export_state();
        for bad_len in [0usize, 1, KAPPA - 1, KAPPA + 1] {
            let err = sender
                .import_state(&OtSenderState {
                    session: 9,
                    counters: vec![0; bad_len],
                })
                .expect_err("shape mismatch must be rejected");
            assert_eq!(err.expected, KAPPA);
            assert_eq!(err.got, bad_len);
        }
        assert_eq!(
            sender.export_state(),
            before,
            "failed import must not mutate"
        );
    }

    #[test]
    fn correction_columns_look_random() {
        // The u columns must not leak r directly: two different choice
        // vectors yield columns that differ in unpredictable positions.
        let (_, mut receiver) = setup_pair(23);
        let choices: Vec<bool> = (0..128).map(|i| i % 2 == 0).collect();
        let (msg, _) = receiver.prepare(&choices);
        let ones: u32 = msg
            .columns
            .iter()
            .flat_map(|c| c.iter())
            .map(|w| w.count_ones())
            .sum();
        let total = (KAPPA * 128) as f64;
        let ratio = ones as f64 / total;
        assert!((ratio - 0.5).abs() < 0.05, "bias {ratio}");
    }
}
