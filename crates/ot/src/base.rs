//! Batched 1-out-of-2 base OT with the Chou–Orlandi "simplest OT" flow.
//!
//! One sender exponent `a` serves a whole batch:
//!
//! ```text
//! S:  a ← Z_q,  A = g^a                          ── A ──▶
//! R:  b_i ← Z_q,  B_i = c_i ? A·g^{b_i} : g^{b_i} ◀── B_i ──
//! S:  k_i^0 = H(B_i^a), k_i^1 = H((B_i/A)^a)
//!     e_i^j = m_i^j ⊕ k_i^j                      ── e ──▶
//! R:  m_i^{c_i} = e_i^{c_i} ⊕ H(A^{b_i})
//! ```

use max_crypto::{AesPrg, Block, FixedKeyHash};

use crate::group::{random_exponent, GroupElem};

/// Sender's first message: `A = g^a`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SenderSetup {
    /// The sender's public value.
    pub big_a: GroupElem,
}

/// Receiver's message: one blinded element per transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceiverMsg {
    /// `B_i` per transfer.
    pub elements: Vec<GroupElem>,
}

/// Sender's ciphertexts: one pair per transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CipherPairs {
    /// `(e_i^0, e_i^1)` per transfer.
    pub pairs: Vec<(Block, Block)>,
}

/// Base-OT sender.
#[derive(Debug)]
pub struct BaseOtSender {
    exponent: u64,
    big_a: GroupElem,
    hash: FixedKeyHash,
}

impl BaseOtSender {
    /// Creates the sender, drawing its exponent from `prg`.
    pub fn new(prg: &mut AesPrg) -> (Self, SenderSetup) {
        let exponent = random_exponent(prg.next_u64());
        let big_a = GroupElem::generator_pow(exponent);
        (
            BaseOtSender {
                exponent,
                big_a,
                hash: FixedKeyHash::new(),
            },
            SenderSetup { big_a },
        )
    }

    /// Encrypts the message pairs against the receiver's blinded elements.
    ///
    /// # Panics
    ///
    /// Panics if `messages` and the receiver message disagree in length.
    pub fn encrypt(&self, receiver: &ReceiverMsg, messages: &[(Block, Block)]) -> CipherPairs {
        assert_eq!(
            receiver.elements.len(),
            messages.len(),
            "transfer count mismatch"
        );
        // Two 16-byte ciphertexts travel per base transfer.
        max_telemetry::counter_add("ot.base.download_bytes", (messages.len() * 32) as u64);
        let inv_a = self.big_a.inverse();
        let pairs = receiver
            .elements
            .iter()
            .zip(messages)
            .enumerate()
            .map(|(i, (&b, &(m0, m1)))| {
                let k0 = b.pow(self.exponent).to_key(&self.hash, i as u64);
                let k1 = b.mul(inv_a).pow(self.exponent).to_key(&self.hash, i as u64);
                (m0 ^ k0, m1 ^ k1)
            })
            .collect();
        CipherPairs { pairs }
    }
}

/// Base-OT receiver.
#[derive(Debug)]
pub struct BaseOtReceiver {
    exponents: Vec<u64>,
    setup: SenderSetup,
    hash: FixedKeyHash,
}

impl BaseOtReceiver {
    /// Creates the receiver and its blinded message for `choices`.
    pub fn new(prg: &mut AesPrg, setup: SenderSetup, choices: &[bool]) -> (Self, ReceiverMsg) {
        let exponents: Vec<u64> = choices
            .iter()
            .map(|_| random_exponent(prg.next_u64()))
            .collect();
        let elements = exponents
            .iter()
            .zip(choices)
            .map(|(&b, &c)| {
                let gb = GroupElem::generator_pow(b);
                if c {
                    setup.big_a.mul(gb)
                } else {
                    gb
                }
            })
            .collect();
        (
            BaseOtReceiver {
                exponents,
                setup,
                hash: FixedKeyHash::new(),
            },
            ReceiverMsg { elements },
        )
    }

    /// Decrypts the chosen message of each pair.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the setup.
    pub fn decrypt(&self, ciphers: &CipherPairs, choices: &[bool]) -> Vec<Block> {
        assert_eq!(ciphers.pairs.len(), self.exponents.len(), "count mismatch");
        assert_eq!(choices.len(), self.exponents.len(), "choice mismatch");
        ciphers
            .pairs
            .iter()
            .zip(&self.exponents)
            .zip(choices)
            .enumerate()
            .map(|(i, ((&(e0, e1), &b), &c))| {
                let key = self.setup.big_a.pow(b).to_key(&self.hash, i as u64);
                if c {
                    e1 ^ key
                } else {
                    e0 ^ key
                }
            })
            .collect()
    }
}

/// Runs a whole batch of base OTs in memory.
pub fn run_base_ot(seed: u64, messages: &[(Block, Block)], choices: &[bool]) -> Vec<Block> {
    assert_eq!(messages.len(), choices.len(), "length mismatch");
    let mut sender_prg = AesPrg::with_stream(Block::new(seed as u128), 0);
    let mut receiver_prg = AesPrg::with_stream(Block::new(seed as u128), 1);
    let (sender, setup) = BaseOtSender::new(&mut sender_prg);
    let (receiver, msg) = BaseOtReceiver::new(&mut receiver_prg, setup, choices);
    let ciphers = sender.encrypt(&msg, messages);
    receiver.decrypt(&ciphers, choices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: usize) -> Vec<(Block, Block)> {
        (0..n)
            .map(|i| (Block::new(2 * i as u128), Block::new(2 * i as u128 + 1)))
            .collect()
    }

    #[test]
    fn receiver_gets_chosen_messages() {
        let msgs = pairs(16);
        let choices: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let got = run_base_ot(42, &msgs, &choices);
        for ((m, &c), g) in msgs.iter().zip(&choices).zip(&got) {
            assert_eq!(*g, if c { m.1 } else { m.0 });
        }
    }

    #[test]
    fn unchosen_message_stays_hidden_from_honest_execution() {
        // The receiver's key never decrypts the other slot.
        let msgs = pairs(8);
        let choices = vec![false; 8];
        let mut sender_prg = AesPrg::with_stream(Block::new(9), 0);
        let mut receiver_prg = AesPrg::with_stream(Block::new(9), 1);
        let (sender, setup) = BaseOtSender::new(&mut sender_prg);
        let (receiver, msg) = BaseOtReceiver::new(&mut receiver_prg, setup, &choices);
        let ciphers = sender.encrypt(&msg, &msgs);
        // Flip the choices at decrypt time: the results must be garbage.
        let wrong = receiver.decrypt(&ciphers, &[true; 8]);
        for (w, m) in wrong.iter().zip(&msgs) {
            assert_ne!(*w, m.1);
            assert_ne!(*w, m.0);
        }
    }

    #[test]
    fn all_choice_patterns_small() {
        for pattern in 0..16u32 {
            let choices: Vec<bool> = (0..4).map(|i| (pattern >> i) & 1 == 1).collect();
            let msgs = pairs(4);
            let got = run_base_ot(7 + pattern as u64, &msgs, &choices);
            for ((m, &c), g) in msgs.iter().zip(&choices).zip(&got) {
                assert_eq!(*g, if c { m.1 } else { m.0 });
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_base_ot(1, &[], &[]).is_empty());
    }
}
