//! The base-OT Diffie–Hellman group: multiplicative group mod `2^61 − 1`.
//!
//! A toy-scale stand-in for Curve25519 (see the crate-level substitution
//! notice). `2^61 − 1` is a Mersenne prime; `37` is a primitive root, so the
//! group is cyclic of order `2^61 − 2`.

use max_crypto::{Block, FixedKeyHash, Tweak};

/// The modulus `p = 2^61 − 1`.
pub const MODULUS: u64 = (1 << 61) - 1;

/// A primitive root mod `p` (verified by the `generator_is_primitive` test
/// against the full factorization of `p − 1`).
pub const GENERATOR: u64 = 37;

/// A group element in `[1, p)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GroupElem(u64);

impl GroupElem {
    /// The generator `g`.
    pub fn generator() -> Self {
        GroupElem(GENERATOR)
    }

    /// Wraps a raw residue.
    ///
    /// # Panics
    ///
    /// Panics if `value` is 0 or ≥ p (not a group element).
    pub fn new(value: u64) -> Self {
        assert!(value > 0 && value < MODULUS, "not a group element: {value}");
        GroupElem(value)
    }

    /// The raw residue.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Group multiplication.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: GroupElem) -> GroupElem {
        GroupElem(((self.0 as u128 * rhs.0 as u128) % MODULUS as u128) as u64)
    }

    /// Exponentiation by square-and-multiply.
    #[must_use]
    pub fn pow(self, mut exp: u64) -> GroupElem {
        let mut base = self;
        let mut acc = GroupElem(1);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat (`a^(p-2)`).
    #[must_use]
    pub fn inverse(self) -> GroupElem {
        self.pow(MODULUS - 2)
    }

    /// `g^exp`.
    pub fn generator_pow(exp: u64) -> GroupElem {
        GroupElem::generator().pow(exp)
    }

    /// Hashes the element into a 128-bit key, domain-separated by `index`
    /// (the OT instance number).
    pub fn to_key(self, hash: &FixedKeyHash, index: u64) -> Block {
        hash.hash(
            Block::new(self.0 as u128),
            Tweak::from_gate_index(index ^ (1 << 63)),
        )
    }
}

/// Draws a uniformly random exponent in `[1, p − 1)` from 64 random bits
/// (the modulus is close enough to `2^64 / 8` that rejection is cheap).
pub fn random_exponent(bits: u64) -> u64 {
    1 + bits % (MODULUS - 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_is_mersenne_61() {
        assert_eq!(MODULUS, 2_305_843_009_213_693_951);
    }

    #[test]
    fn generator_is_primitive() {
        // p − 1 = 2 · 3² · 5² · 7 · 11 · 13 · 31 · 41 · 61 · 151 · 331 · 1321.
        let factors = [2u64, 3, 5, 7, 11, 13, 31, 41, 61, 151, 331, 1321];
        let mut product = 1u128;
        // Verify the factorization covers p − 1 with its multiplicities.
        for (f, mult) in factors.iter().zip([1u32, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1]) {
            product *= (*f as u128).pow(mult);
        }
        assert_eq!(product, (MODULUS - 1) as u128);
        for q in factors {
            assert_ne!(
                GroupElem::generator().pow((MODULUS - 1) / q),
                GroupElem::new(1),
                "generator has order dividing (p-1)/{q}"
            );
        }
    }

    #[test]
    fn dh_agreement() {
        let a = 123_456_789u64;
        let b = 987_654_321u64;
        let big_a = GroupElem::generator_pow(a);
        let big_b = GroupElem::generator_pow(b);
        assert_eq!(big_a.pow(b), big_b.pow(a));
    }

    #[test]
    fn inverse_works() {
        for v in [1u64, 2, 37, MODULUS - 1, 1_000_003] {
            let e = GroupElem::new(v);
            assert_eq!(e.mul(e.inverse()), GroupElem::new(1));
        }
    }

    #[test]
    fn pow_zero_is_identity() {
        assert_eq!(GroupElem::new(99).pow(0), GroupElem::new(1));
    }

    #[test]
    fn keys_are_index_separated() {
        let hash = FixedKeyHash::new();
        let e = GroupElem::new(42);
        assert_ne!(e.to_key(&hash, 0), e.to_key(&hash, 1));
    }

    #[test]
    fn random_exponent_in_range() {
        for bits in [0u64, 1, u64::MAX, MODULUS, MODULUS - 3] {
            let e = random_exponent(bits);
            assert!((1..MODULUS - 1).contains(&e));
        }
    }

    #[test]
    #[should_panic(expected = "not a group element")]
    fn zero_rejected() {
        GroupElem::new(0);
    }
}
