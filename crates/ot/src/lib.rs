//! Oblivious transfer for garbled-circuit input labels.
//!
//! The evaluator (client) obtains the wire label matching each of her input
//! bits without revealing the bits — §2.2 and §3 of the paper. Two layers:
//!
//! * [`base`] — 1-out-of-2 base OT with the Chou–Orlandi "simplest OT"
//!   message flow over a Diffie–Hellman group.
//! * [`iknp`] — the IKNP OT *extension* (Ishai–Kilian–Nissim–Petrank,
//!   CRYPTO'03, the paper's reference \[24\]): 128 base OTs bootstrap any
//!   number of transfers using only fixed-key-AES hashing, which is what
//!   makes per-round OT affordable for memory-constrained clients (§3).
//!
//! # Substitution notice (see DESIGN.md)
//!
//! The offline crate set contains no big-integer or elliptic-curve
//! arithmetic, so the base-OT group is the multiplicative group modulo the
//! Mersenne prime `2^61 − 1`. A 61-bit discrete log is **not secure** — this
//! substitutes for Curve25519/RSA groups while preserving the exact message
//! flow, computation pattern and API of the real protocol. The OT-extension
//! layer above it is the genuine IKNP construction at the full `k = 128`
//! security parameter.
//!
//! # Example
//!
//! ```
//! use max_crypto::Block;
//! use max_ot::run_chosen_ot;
//!
//! let pairs = vec![(Block::new(10), Block::new(20)), (Block::new(30), Block::new(40))];
//! let choices = vec![false, true];
//! let received = run_chosen_ot(7, &pairs, &choices);
//! assert_eq!(received, vec![Block::new(10), Block::new(40)]);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod base;
pub mod group;
pub mod iknp;

use max_crypto::Block;

/// Runs the complete stack (base OT + IKNP extension) in memory: the
/// receiver learns exactly `pairs[i].choices[i]`.
///
/// Convenience for tests and single-process simulations; the two-party
/// channel-separated flow lives in the protocol layers above.
///
/// # Panics
///
/// Panics if `pairs` and `choices` lengths differ.
pub fn run_chosen_ot(seed: u64, pairs: &[(Block, Block)], choices: &[bool]) -> Vec<Block> {
    assert_eq!(pairs.len(), choices.len(), "pairs/choices length mismatch");
    let (mut sender, mut receiver) = iknp::setup_pair(seed);
    let (msg, keys) = receiver.prepare(choices);
    let cipher = sender.send(&msg, pairs);
    receiver.receive(&cipher, &keys, choices)
}
