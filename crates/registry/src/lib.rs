//! Prepared-model registry: the paper's §3 offline/online split as a
//! serving subsystem.
//!
//! MAXelerator's central claim is that garbling belongs *off* the online
//! path: "the accelerator keeps generating garbled tables independently …
//! and when requested by the client simply performs the garbling with one
//! of the stored garbled circuits." Trace attribution of the serve stack
//! shows inline garbling at ~98.5% of job wall time, so a registry that
//! pre-garbles during idle time converts nearly the whole job latency into
//! OT + frame replay.
//!
//! A [`ModelRegistry`] holds any number of tenant matrices, each under a
//! caller-chosen id. Registration decomposes a matrix into fixed-size row
//! tiles ([`RegistryConfig::tile_rows`]); background fill steps
//! ([`ModelRegistry::fill_step`], driven from pool idle time) garble one
//! stream per step, tile by tile with bounded working memory, and deposit
//! the materialized frames into the model's stock. Serving a matvec
//! against a stocked model ([`ModelRegistry::acquire`]) pops one stream —
//! **single use** — and the online exchange is OT plus replay of
//! already-rendered bytes.
//!
//! ## Security invariant: labels are never reused
//!
//! Every stream production *and* every inline fallback consumes a distinct
//! generation counter; the stream seed is `derive_seed(model_seed,
//! generation)` and the model seed itself rotates on re-registration
//! (epoch counter). Serving the same garbled material twice would let an
//! evaluator combine label pairs across executions and decode the
//! garbler's inputs, so a stream leaves the stock exactly once and is
//! dropped after its serve — the registry never clones a stocked stream.
//!
//! ## Eviction taxonomy
//!
//! * **explicit** — [`ModelRegistry::evict`] (the wire's `MODEL_EVICT`):
//!   the tenant is done; model and stock are dropped.
//! * **replaced** — re-registering an existing id: the old matrix, stock,
//!   and seed epoch are dropped atomically (stale streams must never serve
//!   the new matrix).
//! * **budget** — the stock cache exceeds
//!   [`RegistryConfig::budget_bytes`]: whole least-recently-acquired
//!   models are evicted first; the model currently depositing trims its
//!   own oldest streams instead of evicting itself.
//!
//! A budget smaller than the combined target stock of all tenants
//! degenerates to round-robin recycling during idle fill — observable via
//! [`RegistryStats::models_evicted_budget`]; size the budget accordingly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The registry sits on the serving path; panics are confined to tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use maxelerator::remote::{
    derive_seed, encode_round_burst, MaterializedElement, MaterializedJob, ModelStatus,
    MAX_MODEL_ELEMENTS,
};
use maxelerator::{AcceleratorConfig, AcceleratorError, Maxelerator};

// The digest the stocks are verified against lives beside
// `MaterializedJob` in the core crate; re-exported so registry users keep
// one import surface.
pub use maxelerator::remote::stream_digest;

/// Knobs of the registry's precompute and cache behavior.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Byte budget for stocked streams across all models (`None` =
    /// unbounded). Enforced at deposit time with LRU whole-model eviction.
    pub budget_bytes: Option<u64>,
    /// Single-use streams to keep in stock per model.
    pub target_stock: usize,
    /// Rows garbled per tile during stream generation — the unit of
    /// incremental precompute work (and its memory high-water mark).
    pub tile_rows: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            budget_bytes: None,
            target_stock: 2,
            tile_rows: 16,
        }
    }
}

/// Why a model was refused at registration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegisterError {
    /// The matrix has no rows or no columns.
    EmptyModel,
    /// A row's length differs from the first row's.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        got: usize,
        /// The expected length (row 0's).
        want: usize,
    },
    /// The matrix exceeds [`MAX_MODEL_ELEMENTS`].
    TooLarge {
        /// Declared element count.
        elements: usize,
        /// The cap.
        max: usize,
    },
    /// A weight does not fit the negotiated operand width.
    ValueOutOfRange {
        /// Row of the offending weight.
        row: usize,
        /// Column of the offending weight.
        col: usize,
        /// The weight itself.
        value: i64,
    },
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::EmptyModel => write!(f, "model matrix is empty"),
            RegisterError::RaggedRow { row, got, want } => {
                write!(f, "row {row} has {got} columns, expected {want}")
            }
            RegisterError::TooLarge { elements, max } => {
                write!(f, "model has {elements} elements, cap is {max}")
            }
            RegisterError::ValueOutOfRange { row, col, value } => {
                write!(
                    f,
                    "weight [{row}][{col}] = {value} exceeds the operand width"
                )
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// How a model (or part of its stock) left the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionKind {
    /// [`ModelRegistry::evict`] / the wire's `MODEL_EVICT`.
    Explicit,
    /// Re-registration of the same id replaced the matrix.
    Replaced,
    /// LRU victim of the byte budget.
    Budget,
}

/// Record of one model leaving the registry — the serving layer turns
/// these into journal tombstones and flight-recorder events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted model.
    pub model_id: u64,
    /// Why it left.
    pub kind: EvictionKind,
    /// Stocked streams destroyed with it.
    pub streams_lost: usize,
    /// Cache bytes freed.
    pub bytes_freed: u64,
}

/// A single-use pre-garbled stream, popped from stock by
/// [`ModelRegistry::acquire`]. Stream it with
/// [`maxelerator::remote::stream_materialized_job_from`] and drop it — the
/// registry never hands out the same generation twice.
#[derive(Debug)]
pub struct PreparedStream {
    /// The model this stream serves.
    pub model_id: u64,
    /// The stream's unique generation (never reused).
    pub generation: u64,
    /// The job seed the stream was garbled from
    /// (`derive_seed(model_seed, generation)`) — what a resume checkpoint
    /// records to re-garble deterministically.
    pub seed: u64,
    /// The materialized frames.
    pub job: MaterializedJob,
    /// The stream's [`stream_digest`], verified at acquire — the material
    /// handed out matches what the fill step garbled, bit for bit.
    pub digest: [u8; 16],
}

/// Typed fallback when no warm stream can serve the request: the caller
/// garbles inline with this ticket's seed (a fresh generation — the
/// single-use invariant holds on the fallback path too). Falling back is
/// counted, never an error.
#[derive(Clone, Debug)]
pub struct FallbackTicket {
    /// The model to garble.
    pub model_id: u64,
    /// The consumed generation.
    pub generation: u64,
    /// Job seed for the inline garble.
    pub seed: u64,
    /// The model's weights (shared, immutable).
    pub weights: Arc<Vec<Vec<i64>>>,
}

/// What [`ModelRegistry::acquire`] hands back for a known model.
#[derive(Debug)]
pub enum Acquired {
    /// A warm stream: the online phase is OT + frame replay.
    Prepared(Box<PreparedStream>),
    /// Stock empty (or the request shape has no precomputed form): garble
    /// inline from the ticket.
    Starved(FallbackTicket),
}

/// Outcome of one background fill step.
#[derive(Clone, Debug)]
pub struct FillReport {
    /// The model the step garbled for.
    pub model_id: u64,
    /// The generation the produced stream consumed.
    pub generation: u64,
    /// Whether the stream entered the stock (false: the model vanished
    /// mid-fill or the stream alone exceeded the budget).
    pub deposited: bool,
    /// Bytes the produced stream occupies.
    pub stored_bytes: u64,
    /// Fabric cycles the offline garbling cost.
    pub fabric_cycles: u64,
    /// Own streams trimmed to fit the budget (oldest first).
    pub streams_trimmed: usize,
    /// Whole models evicted by the budget during this deposit.
    pub evicted: Vec<Eviction>,
}

/// Aggregated registry counters for `metrics_json` and loadgen summaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Models currently registered.
    pub models: usize,
    /// Warm streams across all stocks.
    pub streams_ready: usize,
    /// Bytes those streams occupy.
    pub stock_bytes: u64,
    /// The configured budget (`None` = unbounded).
    pub budget_bytes: Option<u64>,
    /// Jobs served from warm stock.
    pub served_prepared: u64,
    /// Jobs that fell back to inline garbling.
    pub served_fallback: u64,
    /// Streams produced by fill steps.
    pub streams_produced: u64,
    /// Produced streams discarded (model vanished mid-fill, or a single
    /// stream exceeded the whole budget).
    pub streams_discarded: u64,
    /// Stocked streams dropped at acquire because their material no
    /// longer matched the digest recorded at fill (cache bit rot). Each
    /// drop fell through to the inline-garble fallback — counted, never
    /// served wrong.
    pub streams_integrity_dropped: u64,
    /// Own-stock streams trimmed by the budget.
    pub streams_trimmed: u64,
    /// Whole models evicted by the budget.
    pub models_evicted_budget: u64,
    /// Models dropped via [`ModelRegistry::evict`].
    pub models_evicted_explicit: u64,
    /// Models replaced by re-registration.
    pub models_replaced: u64,
    /// Fabric cycles spent garbling offline (the cost the online path no
    /// longer pays — the accounting the retired `PrecomputeStore` kept).
    pub fabric_cycles_spent: u64,
}

struct StockedStream {
    generation: u64,
    seed: u64,
    bytes: u64,
    job: MaterializedJob,
    /// [`stream_digest`] of `job` at deposit time, re-checked at acquire.
    digest: [u8; 16],
}

struct ModelEntry {
    weights: Arc<Vec<Vec<i64>>>,
    epoch: u64,
    model_seed: u64,
    /// Next unused generation of the seed schedule.
    generation: u64,
    /// Fill steps currently garbling for this model (claimed, not yet
    /// deposited) — keeps concurrent idle workers from overshooting.
    filling: usize,
    stock: VecDeque<StockedStream>,
    stock_bytes: u64,
    served_prepared: u64,
    served_fallback: u64,
}

impl ModelEntry {
    fn status(&self, model_id: u64) -> ModelStatus {
        ModelStatus {
            model_id,
            rows: self.weights.len() as u32,
            cols: self.weights.first().map_or(0, Vec::len) as u32,
            stock: self.stock.len() as u32,
            stock_bytes: self.stock_bytes,
            served_prepared: self.served_prepared,
            served_fallback: self.served_fallback,
            generation: self.generation,
        }
    }
}

#[derive(Default)]
struct Counters {
    served_prepared: u64,
    served_fallback: u64,
    streams_produced: u64,
    streams_discarded: u64,
    streams_integrity_dropped: u64,
    streams_trimmed: u64,
    models_evicted_budget: u64,
    models_evicted_explicit: u64,
    models_replaced: u64,
    fabric_cycles_spent: u64,
}

struct Inner {
    models: BTreeMap<u64, ModelEntry>,
    /// Model ids, least-recently-acquired first.
    lru: VecDeque<u64>,
    /// Global registration epoch — every (re-)registration gets a fresh
    /// one, so model seeds never collide across a model's lifetimes.
    epoch: u64,
    stock_bytes: u64,
    counters: Counters,
}

struct FillTicket {
    model_id: u64,
    epoch: u64,
    generation: u64,
    seed: u64,
    weights: Arc<Vec<Vec<i64>>>,
}

/// Multi-tenant prepared-model registry; all methods are `&self` and
/// thread-safe (serving sessions acquire while idle workers fill).
pub struct ModelRegistry {
    config: AcceleratorConfig,
    reg: RegistryConfig,
    registry_seed: u64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ModelRegistry")
            .field("models", &stats.models)
            .field("streams_ready", &stats.streams_ready)
            .field("stock_bytes", &stats.stock_bytes)
            .finish_non_exhaustive()
    }
}

impl ModelRegistry {
    /// Builds an empty registry. `base_seed` anchors every model's seed
    /// schedule (the serving layer passes its session base seed, so
    /// prepared streams and inline session jobs share one derivation
    /// root without colliding: model seeds hang off a dedicated tweak).
    pub fn new(config: AcceleratorConfig, reg: RegistryConfig, base_seed: u64) -> Self {
        ModelRegistry {
            config,
            reg,
            registry_seed: derive_seed(base_seed, 0x4d0d_e15e_ed00_0001),
            inner: Mutex::new(Inner {
                models: BTreeMap::new(),
                lru: VecDeque::new(),
                epoch: 0,
                stock_bytes: 0,
                counters: Counters::default(),
            }),
        }
    }

    /// The accelerator configuration streams are garbled under.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The registry's cache/precompute knobs.
    pub fn registry_config(&self) -> RegistryConfig {
        self.reg
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or replaces) `weights` under `model_id`. Validation is
    /// total — a hostile matrix is a typed error, never a panic. On
    /// replacement the old stock and seed epoch are dropped atomically and
    /// the eviction record is returned for journaling.
    ///
    /// # Errors
    ///
    /// [`RegisterError`] when the matrix is empty, ragged, oversized, or
    /// holds a weight outside the operand width.
    pub fn register(
        &self,
        model_id: u64,
        weights: Vec<Vec<i64>>,
    ) -> Result<(ModelStatus, Option<Eviction>), RegisterError> {
        let rows = weights.len();
        let cols = weights.first().map_or(0, Vec::len);
        if rows == 0 || cols == 0 {
            return Err(RegisterError::EmptyModel);
        }
        if rows.saturating_mul(cols) > MAX_MODEL_ELEMENTS {
            return Err(RegisterError::TooLarge {
                elements: rows * cols,
                max: MAX_MODEL_ELEMENTS,
            });
        }
        let b = self.config.bit_width as u32;
        let (lo, hi) = if self.config.signed {
            (-(1i64 << (b - 1)), (1i64 << (b - 1)) - 1)
        } else {
            (0, (1i64 << b) - 1)
        };
        for (r, row) in weights.iter().enumerate() {
            if row.len() != cols {
                return Err(RegisterError::RaggedRow {
                    row: r,
                    got: row.len(),
                    want: cols,
                });
            }
            for (c, &w) in row.iter().enumerate() {
                if w < lo || w > hi {
                    return Err(RegisterError::ValueOutOfRange {
                        row: r,
                        col: c,
                        value: w,
                    });
                }
            }
        }
        let mut inner = self.lock();
        let epoch = inner.epoch;
        inner.epoch += 1;
        let entry = ModelEntry {
            weights: Arc::new(weights),
            epoch,
            model_seed: derive_seed(self.registry_seed, epoch),
            generation: 0,
            filling: 0,
            stock: VecDeque::new(),
            stock_bytes: 0,
            served_prepared: 0,
            served_fallback: 0,
        };
        let status = entry.status(model_id);
        let replaced = inner.models.insert(model_id, entry).map(|old| {
            inner.stock_bytes -= old.stock_bytes;
            inner.counters.models_replaced += 1;
            Eviction {
                model_id,
                kind: EvictionKind::Replaced,
                streams_lost: old.stock.len(),
                bytes_freed: old.stock_bytes,
            }
        });
        inner.lru.retain(|&id| id != model_id);
        inner.lru.push_back(model_id);
        max_telemetry::counter_add("registry.models_registered", 1);
        Ok((status, replaced))
    }

    /// Whether `model_id` is registered.
    pub fn contains(&self, model_id: u64) -> bool {
        self.lock().models.contains_key(&model_id)
    }

    /// The model's weights (for inline fallback garbling and resume
    /// re-garbles), if registered.
    pub fn weights(&self, model_id: u64) -> Option<Arc<Vec<Vec<i64>>>> {
        self.lock().models.get(&model_id).map(|e| e.weights.clone())
    }

    /// The model's registry snapshot, if registered.
    pub fn status(&self, model_id: u64) -> Option<ModelStatus> {
        self.lock()
            .models
            .get(&model_id)
            .map(|e| e.status(model_id))
    }

    /// Ids of all registered models, ascending.
    pub fn model_ids(&self) -> Vec<u64> {
        self.lock().models.keys().copied().collect()
    }

    /// Drops `model_id` and its stock, returning the final snapshot and
    /// the eviction record for journaling. `None` if unknown.
    pub fn evict(&self, model_id: u64) -> Option<(ModelStatus, Eviction)> {
        let mut inner = self.lock();
        let entry = inner.models.remove(&model_id)?;
        inner.stock_bytes -= entry.stock_bytes;
        inner.lru.retain(|&id| id != model_id);
        inner.counters.models_evicted_explicit += 1;
        max_telemetry::counter_add("registry.models_evicted", 1);
        let status = entry.status(model_id);
        Some((
            status,
            Eviction {
                model_id,
                kind: EvictionKind::Explicit,
                streams_lost: entry.stock.len(),
                bytes_freed: entry.stock_bytes,
            },
        ))
    }

    /// Claims the serve material for one job against `model_id`
    /// (refreshing the model's LRU position): a warm [`PreparedStream`]
    /// when `columns == 1` and stock is available, otherwise a
    /// [`FallbackTicket`] for inline garbling. Matmul jobs (`columns >
    /// 1`) always fall back — a stocked stream is one matvec's element
    /// schedule, and a multi-pass job needs one contiguous seed. `None`
    /// means the model is unknown (the wire's `REJECT(MODEL)`).
    pub fn acquire(&self, model_id: u64, columns: u32) -> Option<Acquired> {
        let mut inner = self.lock();
        let Inner {
            models,
            lru,
            counters,
            stock_bytes,
            ..
        } = &mut *inner;
        let entry = models.get_mut(&model_id)?;
        lru.retain(|&id| id != model_id);
        lru.push_back(model_id);
        if columns == 1 {
            if let Some(stream) = entry.stock.pop_front() {
                entry.stock_bytes -= stream.bytes;
                *stock_bytes -= stream.bytes;
                entry.served_prepared += 1;
                counters.served_prepared += 1;
                max_telemetry::counter_add("registry.served_prepared", 1);
                // The fill-time digest rides along for the serving layer
                // to re-verify before the first material frame leaves —
                // the rehash scales with the stream, so it is pipelined
                // past the admission window rather than paid under the
                // registry lock. A mismatch is routed back through
                // [`ModelRegistry::note_integrity_drop`].
                return Some(Acquired::Prepared(Box::new(PreparedStream {
                    model_id,
                    generation: stream.generation,
                    seed: stream.seed,
                    job: stream.job,
                    digest: stream.digest,
                })));
            }
        }
        let generation = entry.generation;
        entry.generation += 1;
        entry.served_fallback += 1;
        counters.served_fallback += 1;
        max_telemetry::counter_add("registry.served_fallback", 1);
        Some(Acquired::Starved(FallbackTicket {
            model_id,
            generation,
            seed: derive_seed(entry.model_seed, generation),
            weights: entry.weights.clone(),
        }))
    }

    /// Runs one background precompute step: picks the most-starved model
    /// (stock plus in-flight fills furthest below
    /// [`RegistryConfig::target_stock`]), garbles one stream for it tile
    /// by tile *outside* the registry lock, and deposits it under the
    /// byte budget. Returns `None` when every model is at target — the
    /// idle caller should sleep.
    ///
    /// # Errors
    ///
    /// Propagates [`AcceleratorError`] from the garbling schedule (an
    /// internal invariant violation, not peer input).
    pub fn fill_step(&self) -> Option<Result<FillReport, AcceleratorError>> {
        let ticket = self.claim_fill()?;
        let garbled = garble_stream(
            &self.config,
            &ticket.weights,
            ticket.seed,
            self.reg.tile_rows,
        );
        Some(self.deposit(ticket, garbled))
    }

    fn claim_fill(&self) -> Option<FillTicket> {
        let mut inner = self.lock();
        let target = self.reg.target_stock;
        let model_id = inner
            .models
            .iter()
            .filter(|(_, e)| e.stock.len() + e.filling < target)
            .min_by_key(|(_, e)| e.stock.len() + e.filling)
            .map(|(&id, _)| id)?;
        let entry = inner.models.get_mut(&model_id)?;
        entry.filling += 1;
        let generation = entry.generation;
        entry.generation += 1;
        Some(FillTicket {
            model_id,
            epoch: entry.epoch,
            generation,
            seed: derive_seed(entry.model_seed, generation),
            weights: entry.weights.clone(),
        })
    }

    fn deposit(
        &self,
        ticket: FillTicket,
        garbled: Result<(MaterializedJob, u64), AcceleratorError>,
    ) -> Result<FillReport, AcceleratorError> {
        // Digest the fresh material before taking the lock: it is the
        // reference the acquire-time check verifies against.
        let digest = match &garbled {
            Ok((job, _)) => stream_digest(job),
            Err(_) => [0u8; 16],
        };
        let mut inner = self.lock();
        if let Some(entry) = inner.models.get_mut(&ticket.model_id) {
            entry.filling = entry.filling.saturating_sub(1);
        }
        let (job, cycles) = garbled?;
        inner.counters.streams_produced += 1;
        inner.counters.fabric_cycles_spent += cycles;
        max_telemetry::counter_add("registry.streams_produced", 1);
        let bytes = job.stored_bytes();
        let mut report = FillReport {
            model_id: ticket.model_id,
            generation: ticket.generation,
            deposited: false,
            stored_bytes: bytes,
            fabric_cycles: cycles,
            streams_trimmed: 0,
            evicted: Vec::new(),
        };
        // The model may have been replaced or evicted while we garbled:
        // its epoch rotated, so this stream's seed schedule is orphaned
        // and the material must be discarded, never served.
        let valid = inner
            .models
            .get(&ticket.model_id)
            .is_some_and(|e| e.epoch == ticket.epoch);
        let oversized = self.reg.budget_bytes.is_some_and(|budget| bytes > budget);
        if !valid || oversized {
            inner.counters.streams_discarded += 1;
            max_telemetry::counter_add("registry.streams_discarded", 1);
            return Ok(report);
        }
        if let Some(entry) = inner.models.get_mut(&ticket.model_id) {
            entry.stock.push_back(StockedStream {
                generation: ticket.generation,
                seed: ticket.seed,
                bytes,
                job,
                digest,
            });
            entry.stock_bytes += bytes;
        }
        inner.stock_bytes += bytes;
        report.deposited = true;
        let (evicted, trimmed) = self.enforce_budget(&mut inner, ticket.model_id);
        report.evicted = evicted;
        report.streams_trimmed = trimmed;
        Ok(report)
    }

    /// Evicts least-recently-acquired models (never `keep`, the one
    /// depositing) until the stock fits the budget; once only `keep`
    /// remains over budget, trims its own oldest streams.
    fn enforce_budget(&self, inner: &mut Inner, keep: u64) -> (Vec<Eviction>, usize) {
        let Some(budget) = self.reg.budget_bytes else {
            return (Vec::new(), 0);
        };
        let mut evicted = Vec::new();
        let mut trimmed = 0usize;
        while inner.stock_bytes > budget {
            let victim =
                inner.lru.iter().copied().find(|&id| {
                    id != keep && inner.models.get(&id).is_some_and(|e| e.stock_bytes > 0)
                });
            if let Some(id) = victim {
                if let Some(entry) = inner.models.remove(&id) {
                    inner.stock_bytes -= entry.stock_bytes;
                    inner.lru.retain(|&m| m != id);
                    inner.counters.models_evicted_budget += 1;
                    max_telemetry::counter_add("registry.models_evicted", 1);
                    evicted.push(Eviction {
                        model_id: id,
                        kind: EvictionKind::Budget,
                        streams_lost: entry.stock.len(),
                        bytes_freed: entry.stock_bytes,
                    });
                }
                continue;
            }
            // Only the depositing model holds stock: trim its oldest.
            let Some(entry) = inner.models.get_mut(&keep) else {
                break;
            };
            let Some(old) = entry.stock.pop_front() else {
                break;
            };
            entry.stock_bytes -= old.bytes;
            inner.stock_bytes -= old.bytes;
            inner.counters.streams_trimmed += 1;
            trimmed += 1;
        }
        (evicted, trimmed)
    }

    /// Fills synchronously until every model is at target stock or the
    /// byte budget pushes back (the first non-deposit, trim, or eviction
    /// stops the loop — continuing would just recycle streams). Returns
    /// the number of streams deposited.
    ///
    /// # Errors
    ///
    /// See [`ModelRegistry::fill_step`].
    pub fn prefill(&self) -> Result<usize, AcceleratorError> {
        let mut deposited = 0usize;
        while let Some(step) = self.fill_step() {
            let report = step?;
            if !report.deposited || report.streams_trimmed > 0 || !report.evicted.is_empty() {
                break;
            }
            deposited += 1;
        }
        Ok(deposited)
    }

    /// Records that an acquired prepared stream failed its at-serve digest
    /// re-verification and was dropped (the serving layer detected cache
    /// bit rot before any material frame left the wire). The caller falls
    /// through to inline garbling on retry; this keeps the rot visible in
    /// [`RegistryStats::streams_integrity_dropped`] and telemetry.
    pub fn note_integrity_drop(&self) {
        let mut inner = self.lock();
        inner.counters.streams_integrity_dropped += 1;
        max_telemetry::counter_add("registry.streams_integrity_dropped", 1);
    }

    /// Test hook: flips one bit in the first stocked stream of `model_id`
    /// *without* touching its recorded digest, simulating at-rest bit rot.
    /// Returns `false` if the model has no stock.
    #[doc(hidden)]
    pub fn rot_first_stream_for_tests(&self, model_id: u64) -> bool {
        let mut inner = self.lock();
        let Some(entry) = inner.models.get_mut(&model_id) else {
            return false;
        };
        let Some(stream) = entry.stock.front_mut() else {
            return false;
        };
        let Some(elem) = stream.job.elements.first_mut() else {
            return false;
        };
        let Some(pair) = elem.pairs.first_mut() else {
            return false;
        };
        pair.0 = max_crypto::Block::new(pair.0.bits() ^ (1 << 40));
        true
    }

    /// Aggregated counters and gauges.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.lock();
        RegistryStats {
            models: inner.models.len(),
            streams_ready: inner.models.values().map(|e| e.stock.len()).sum(),
            stock_bytes: inner.stock_bytes,
            budget_bytes: self.reg.budget_bytes,
            served_prepared: inner.counters.served_prepared,
            served_fallback: inner.counters.served_fallback,
            streams_produced: inner.counters.streams_produced,
            streams_discarded: inner.counters.streams_discarded,
            streams_integrity_dropped: inner.counters.streams_integrity_dropped,
            streams_trimmed: inner.counters.streams_trimmed,
            models_evicted_budget: inner.counters.models_evicted_budget,
            models_evicted_explicit: inner.counters.models_evicted_explicit,
            models_replaced: inner.counters.models_replaced,
            fabric_cycles_spent: inner.counters.fabric_cycles_spent,
        }
    }
}

/// Garbles one prepared matvec stream (`columns == 1`) tile by tile: each
/// tile of [`RegistryConfig::tile_rows`] rows runs on a **fresh**
/// accelerator seeded with the same stream seed, then is materialized to
/// wire frames immediately, so working memory is one tile of round
/// messages regardless of model height.
///
/// Per-element label streams derive from the seed and the element id
/// alone, so the tiled product is bit-identical to garbling the whole
/// stream on one accelerator (the invariant
/// [`Maxelerator::begin_element`] documents and the tests here pin) —
/// which is exactly what lets tiles be produced incrementally across idle
/// intervals. Returns the stream and the fabric cycles it cost (summed
/// over tiles).
///
/// # Errors
///
/// Propagates [`AcceleratorError`] from the garbling schedule.
pub fn garble_stream(
    config: &AcceleratorConfig,
    weights: &[Vec<i64>],
    seed: u64,
    tile_rows: usize,
) -> Result<(MaterializedJob, u64), AcceleratorError> {
    let _span = max_telemetry::span("registry.garble_stream");
    let tile_rows = tile_rows.max(1);
    let mut elements = Vec::with_capacity(weights.len());
    let mut cycles = 0u64;
    for (tile_idx, tile) in weights.chunks(tile_rows).enumerate() {
        let mut accel = Maxelerator::new(config.clone(), seed);
        for (offset, row) in tile.iter().enumerate() {
            accel.begin_element((tile_idx * tile_rows + offset) as u32);
            let messages = accel.try_garble_job(row, true)?;
            let mut pairs = Vec::with_capacity(row.len() * config.bit_width);
            for msg in &messages {
                pairs.extend_from_slice(accel.ot_pairs(msg.round)?);
            }
            elements.push(MaterializedElement {
                material_bytes: messages.iter().map(|m| m.wire_bytes() as u64).sum(),
                tables: messages.iter().map(|m| m.tables.len() as u64).sum(),
                rounds: messages.len() as u64,
                rounds_frame: encode_round_burst(&messages),
                pairs,
            });
        }
        cycles += accel.report().cycles;
    }
    let job = MaterializedJob {
        elements,
        rows_per_pass: weights.len(),
        fabric_cycles: cycles,
        fabric_seconds: cycles as f64 / (config.freq_mhz * 1e6),
    };
    Ok((job, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use max_crypto::Block;
    use maxelerator::remote::{decode_round_burst, garble_matvec_job, materialize_job};
    use maxelerator::ScheduledEvaluator;

    fn demo_weights() -> Vec<Vec<i64>> {
        vec![
            vec![3i64, -1, 4],
            vec![1, 5, -9],
            vec![2, 6, -5],
            vec![-3, 5, 8],
            vec![9, -7, 9],
        ]
    }

    fn plain_matvec(w: &[Vec<i64>], x: &[i64]) -> Vec<i64> {
        w.iter()
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Evaluates a prepared stream locally: OT is bypassed by selecting
    /// labels straight from the stored pairs (the test stands in for both
    /// parties, like the retired `PrecomputeStore` tests did).
    fn evaluate_stream(config: &AcceleratorConfig, job: &MaterializedJob, x: &[i64]) -> Vec<i64> {
        let b = config.bit_width;
        let mut evaluator = ScheduledEvaluator::new(config);
        let mut y = Vec::with_capacity(job.elements.len());
        for (r, elem) in job.elements.iter().enumerate() {
            evaluator.begin_element(r as u32);
            let msgs = decode_round_burst(elem.rounds_frame.clone(), x.len()).unwrap();
            let mut decoded = None;
            for (i, msg) in msgs.iter().enumerate() {
                let bits = config.encode_x(x[i]);
                let labels: Vec<Block> = bits
                    .iter()
                    .enumerate()
                    .map(|(j, &bit)| {
                        let pair = elem.pairs[i * b + j];
                        if bit {
                            pair.1
                        } else {
                            pair.0
                        }
                    })
                    .collect();
                decoded = evaluator.evaluate_round(msg, &labels).unwrap();
            }
            y.push(decoded.unwrap());
        }
        y
    }

    #[test]
    fn tiled_generation_is_bit_identical_to_one_shot_garbling() {
        let config = AcceleratorConfig::new(8);
        let w = demo_weights();
        let seed = 0x0071_17e5;
        let (tiled, _) = garble_stream(&config, &w, seed, 2).unwrap();
        // Reference: the serve pool's one-accelerator inline path.
        let inline = materialize_job(&garble_matvec_job(&config, &w, seed, 1).unwrap());
        assert_eq!(tiled.elements.len(), inline.elements.len());
        for (t, i) in tiled.elements.iter().zip(&inline.elements) {
            assert_eq!(t.rounds_frame, i.rounds_frame, "wire frames must match");
            assert_eq!(t.pairs, i.pairs, "OT label pairs must match");
        }
        // And a degenerate tile size covers the whole model in one tile.
        let (one_tile, _) = garble_stream(&config, &w, seed, 64).unwrap();
        for (t, i) in one_tile.elements.iter().zip(&inline.elements) {
            assert_eq!(t.rounds_frame, i.rounds_frame);
            assert_eq!(t.pairs, i.pairs);
        }
    }

    #[test]
    fn prepared_streams_decode_correctly() {
        let config = AcceleratorConfig::new(8);
        let reg = ModelRegistry::new(config.clone(), RegistryConfig::default(), 42);
        reg.register(7, demo_weights()).unwrap();
        reg.prefill().unwrap();
        let x = [2i64, 6, -1];
        for _ in 0..2 {
            match reg.acquire(7, 1).unwrap() {
                Acquired::Prepared(stream) => {
                    assert_eq!(
                        evaluate_stream(&config, &stream.job, &x),
                        plain_matvec(&demo_weights(), &x)
                    );
                }
                Acquired::Starved(_) => panic!("stock was prefilled"),
            }
        }
    }

    #[test]
    fn streams_are_single_use_with_fresh_labels() {
        let config = AcceleratorConfig::new(8);
        let reg = ModelRegistry::new(config.clone(), RegistryConfig::default(), 42);
        reg.register(1, demo_weights()).unwrap();
        reg.prefill().unwrap();
        let first = match reg.acquire(1, 1).unwrap() {
            Acquired::Prepared(s) => s,
            Acquired::Starved(_) => panic!("stock was prefilled"),
        };
        let second = match reg.acquire(1, 1).unwrap() {
            Acquired::Prepared(s) => s,
            Acquired::Starved(_) => panic!("target_stock is 2"),
        };
        // Distinct generations, seeds, garbled tables, and OT pairs: no
        // label material is ever served twice.
        assert_ne!(first.generation, second.generation);
        assert_ne!(first.seed, second.seed);
        for (a, b) in first.job.elements.iter().zip(&second.job.elements) {
            assert_ne!(a.rounds_frame, b.rounds_frame);
            assert_ne!(a.pairs, b.pairs);
        }
    }

    #[test]
    fn serving_costs_no_fabric_cycles() {
        // The retired PrecomputeStore pinned this: the online path is OT +
        // evaluation only; fabric cycles are spent at fill time.
        let reg = ModelRegistry::new(AcceleratorConfig::new(8), RegistryConfig::default(), 1);
        reg.register(9, demo_weights()).unwrap();
        reg.prefill().unwrap();
        let spent = reg.stats().fabric_cycles_spent;
        assert!(spent > 0, "fill must account its garbling cost");
        let _ = reg.acquire(9, 1).unwrap();
        assert_eq!(reg.stats().fabric_cycles_spent, spent);
    }

    #[test]
    fn starved_stock_falls_back_typed_and_counted() {
        let config = AcceleratorConfig::new(8);
        let reg = ModelRegistry::new(config.clone(), RegistryConfig::default(), 5);
        reg.register(3, demo_weights()).unwrap();
        // No prefill: the stock is empty, so acquire falls back.
        let ticket = match reg.acquire(3, 1).unwrap() {
            Acquired::Starved(t) => t,
            Acquired::Prepared(_) => panic!("nothing was prefilled"),
        };
        assert_eq!(ticket.generation, 0);
        // The fallback garble decodes correctly and matches the prepared
        // path bit-for-bit for the same generation seed.
        let (job, _) = garble_stream(&config, &ticket.weights, ticket.seed, 16).unwrap();
        let x = [1i64, -2, 3];
        assert_eq!(
            evaluate_stream(&config, &job, &x),
            plain_matvec(&demo_weights(), &x)
        );
        // Matmul requests fall back even with stock.
        reg.prefill().unwrap();
        assert!(matches!(reg.acquire(3, 2).unwrap(), Acquired::Starved(_)));
        let stats = reg.stats();
        assert_eq!(stats.served_fallback, 2);
        // Generations never repeat across fallback and fill.
        let status = reg.status(3).unwrap();
        assert!(status.generation >= stats.streams_produced + 2);
    }

    #[test]
    fn stream_digest_is_stable_and_sensitive() {
        let config = AcceleratorConfig::new(8);
        let (job, _) = garble_stream(&config, &demo_weights(), 7, 2).unwrap();
        let d = stream_digest(&job);
        assert_eq!(d, stream_digest(&job), "digest must be deterministic");
        let mut rotted = job.clone();
        let pair = &mut rotted.elements[1].pairs[3];
        pair.1 = Block::new(pair.1.bits() ^ 1);
        assert_ne!(stream_digest(&rotted), d, "one flipped label bit must show");
    }

    #[test]
    fn rotted_stock_fails_its_digest_and_is_counted() {
        let config = AcceleratorConfig::new(8);
        let reg = ModelRegistry::new(config.clone(), RegistryConfig::default(), 42);
        reg.register(5, demo_weights()).unwrap();
        reg.prefill().unwrap();
        assert_eq!(reg.stats().streams_ready, 2);
        // Rot the first stocked stream in place: one flipped label bit,
        // the kind of damage a DRAM fault or disk rot would inflict.
        assert!(reg.rot_first_stream_for_tests(5));
        // Acquire hands the stream out with its fill-time digest; the
        // serving layer's re-verification (mirrored here) catches the rot
        // before any material frame leaves, and routes it back into the
        // registry's counters.
        let rotted = match reg.acquire(5, 1).unwrap() {
            Acquired::Prepared(s) => s,
            Acquired::Starved(_) => panic!("stock was prefilled"),
        };
        assert_ne!(
            stream_digest(&rotted.job),
            rotted.digest,
            "rot must break the fill-time digest"
        );
        reg.note_integrity_drop();
        let stats = reg.stats();
        assert_eq!(stats.streams_integrity_dropped, 1);
        // The second (healthy) stream still verifies and serves.
        let healthy = match reg.acquire(5, 1).unwrap() {
            Acquired::Prepared(s) => s,
            Acquired::Starved(_) => panic!("target_stock is 2"),
        };
        assert_eq!(stream_digest(&healthy.job), healthy.digest);
        // Stock drained: the next job falls back to inline garbling.
        assert!(matches!(reg.acquire(5, 1).unwrap(), Acquired::Starved(_)));
        assert_eq!(reg.stats().served_fallback, 1);
    }

    #[test]
    fn unknown_model_is_none() {
        let reg = ModelRegistry::new(AcceleratorConfig::new(8), RegistryConfig::default(), 5);
        assert!(reg.acquire(99, 1).is_none());
        assert!(reg.status(99).is_none());
        assert!(reg.evict(99).is_none());
        assert!(!reg.contains(99));
    }

    #[test]
    fn registration_validates_shape_and_range() {
        let reg = ModelRegistry::new(AcceleratorConfig::new(8), RegistryConfig::default(), 5);
        assert_eq!(
            reg.register(1, vec![]).unwrap_err(),
            RegisterError::EmptyModel
        );
        assert_eq!(
            reg.register(1, vec![vec![]]).unwrap_err(),
            RegisterError::EmptyModel
        );
        assert_eq!(
            reg.register(1, vec![vec![1, 2], vec![3]]).unwrap_err(),
            RegisterError::RaggedRow {
                row: 1,
                got: 1,
                want: 2
            }
        );
        // b = 8 signed: the operand range is [-128, 127].
        assert_eq!(
            reg.register(1, vec![vec![128]]).unwrap_err(),
            RegisterError::ValueOutOfRange {
                row: 0,
                col: 0,
                value: 128
            }
        );
        assert!(reg.register(1, vec![vec![-128, 127]]).is_ok());
    }

    #[test]
    fn reregistration_rotates_the_seed_epoch_and_drops_stock() {
        let reg = ModelRegistry::new(AcceleratorConfig::new(8), RegistryConfig::default(), 5);
        reg.register(4, demo_weights()).unwrap();
        reg.prefill().unwrap();
        assert!(reg.status(4).unwrap().stock > 0);
        let first_ticket = match reg.acquire(4, 2).unwrap() {
            Acquired::Starved(t) => t,
            Acquired::Prepared(_) => panic!("matmul always falls back"),
        };
        let (_, replaced) = reg.register(4, demo_weights()).unwrap();
        let replaced = replaced.unwrap();
        assert_eq!(replaced.kind, EvictionKind::Replaced);
        assert!(replaced.streams_lost > 0);
        assert_eq!(reg.status(4).unwrap().stock, 0);
        // Same generation index, different epoch → different seed: stale
        // material can never serve the replacement matrix.
        let second_ticket = match reg.acquire(4, 2).unwrap() {
            Acquired::Starved(t) => t,
            Acquired::Prepared(_) => panic!("stock was dropped"),
        };
        assert_eq!(second_ticket.generation, 0);
        assert_ne!(first_ticket.seed, second_ticket.seed);
        assert_eq!(reg.stats().models_replaced, 1);
    }

    #[test]
    fn byte_budget_evicts_least_recently_acquired_models() {
        let config = AcceleratorConfig::new(8);
        // Size the budget from a real stream so exactly ~2 streams fit.
        let (probe, _) = garble_stream(&config, &demo_weights(), 1, 16).unwrap();
        let budget = probe.stored_bytes() * 2 + probe.stored_bytes() / 2;
        let reg = ModelRegistry::new(
            config.clone(),
            RegistryConfig {
                budget_bytes: Some(budget),
                target_stock: 2,
                tile_rows: 16,
            },
            5,
        );
        reg.register(1, demo_weights()).unwrap();
        reg.register(2, demo_weights()).unwrap();
        // Touch model 2 so model 1 is the LRU victim.
        let _ = reg.acquire(2, 1);
        let mut evictions = Vec::new();
        for _ in 0..8 {
            match reg.fill_step() {
                Some(Ok(report)) => evictions.extend(report.evicted),
                Some(Err(e)) => panic!("fill failed: {e:?}"),
                None => break,
            }
        }
        assert!(
            evictions.iter().any(|e| e.kind == EvictionKind::Budget),
            "tight budget must evict"
        );
        let stats = reg.stats();
        assert!(stats.stock_bytes <= budget);
        assert!(stats.models_evicted_budget >= 1);
        // The registry stays serviceable: whichever model survives still
        // acquires, the evicted one reports unknown.
        let survivors: Vec<u64> = reg.model_ids();
        assert!(!survivors.is_empty());
        for id in [1u64, 2] {
            if survivors.contains(&id) {
                assert!(reg.acquire(id, 1).is_some());
            } else {
                assert!(reg.acquire(id, 1).is_none());
            }
        }
    }

    #[test]
    fn single_model_over_budget_trims_its_own_oldest_streams() {
        let config = AcceleratorConfig::new(8);
        let (probe, _) = garble_stream(&config, &demo_weights(), 1, 16).unwrap();
        let budget = probe.stored_bytes() + probe.stored_bytes() / 2;
        let reg = ModelRegistry::new(
            config,
            RegistryConfig {
                budget_bytes: Some(budget),
                target_stock: 3,
                tile_rows: 16,
            },
            5,
        );
        reg.register(1, demo_weights()).unwrap();
        let mut trimmed = 0usize;
        for _ in 0..6 {
            match reg.fill_step() {
                Some(Ok(report)) => trimmed += report.streams_trimmed,
                Some(Err(e)) => panic!("fill failed: {e:?}"),
                None => break,
            }
        }
        assert!(trimmed > 0, "over-budget stock must trim oldest streams");
        let stats = reg.stats();
        assert!(stats.stock_bytes <= budget);
        assert_eq!(stats.models, 1, "the lone model is never self-evicted");
    }

    #[test]
    fn explicit_eviction_returns_final_status_and_record() {
        let reg = ModelRegistry::new(AcceleratorConfig::new(8), RegistryConfig::default(), 5);
        reg.register(6, demo_weights()).unwrap();
        reg.prefill().unwrap();
        let _ = reg.acquire(6, 1);
        let (status, eviction) = reg.evict(6).unwrap();
        assert_eq!(status.served_prepared, 1);
        assert_eq!(eviction.kind, EvictionKind::Explicit);
        assert!(!reg.contains(6));
        assert_eq!(reg.stats().models_evicted_explicit, 1);
    }

    #[test]
    fn stats_track_stock_and_serves() {
        let reg = ModelRegistry::new(AcceleratorConfig::new(8), RegistryConfig::default(), 5);
        reg.register(1, demo_weights()).unwrap();
        reg.register(2, vec![vec![1i64, 2], vec![3, 4]]).unwrap();
        let deposited = reg.prefill().unwrap();
        assert_eq!(deposited, 4, "two models × target stock 2");
        let stats = reg.stats();
        assert_eq!(stats.models, 2);
        assert_eq!(stats.streams_ready, 4);
        assert_eq!(stats.streams_produced, 4);
        assert!(stats.stock_bytes > 0);
        assert_eq!(stats.budget_bytes, None);
        // Fill is idempotent at target.
        assert!(reg.fill_step().is_none());
        let status = reg.status(2).unwrap();
        assert_eq!(status.rows, 2);
        assert_eq!(status.cols, 2);
        assert_eq!(status.stock, 2);
    }
}
