//! The unit-pool scheduler: a bounded, session-fair job queue feeding a
//! fixed pool of garbling worker threads.
//!
//! This mirrors the FSM's one-gate-per-core-per-cycle discipline one level
//! up: at any instant each *unit* (worker thread wrapping a modeled
//! MAXelerator fabric) garbles exactly one job, and queued jobs from many
//! sessions are admitted round-robin so a chatty session cannot starve the
//! others. The queue is bounded; when it is full, submission fails with a
//! typed [`QueueFull`] that the session layer turns into a BUSY
//! (reject-with-retry-hint) frame — backpressure instead of unbounded
//! memory growth.
//!
//! When the queue is *empty*, units do not just sleep: an optional
//! [`IdleFill`] hook lets the service layer spend the idle capacity on
//! registry precompute (pre-garbling model streams), turning the paper's
//! offline phase into background work that automatically yields the moment
//! a real job arrives.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use max_telemetry::{Recorder, TraceContext};
use maxelerator::remote::{garble_matvec_job, GarbledJob};
use maxelerator::{AcceleratorConfig, AcceleratorError};

/// One queued unit of work: garble a whole matvec/matmul job.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Session that submitted the job (fairness key).
    pub session_id: u64,
    /// Job id within the session.
    pub job_id: u64,
    /// Matvec passes (1 = matvec, n = matmul of n columns).
    pub columns: u32,
    /// Accelerator seed for this job.
    pub seed: u64,
    /// Weights override: `Some` garbles against these (a registry model's
    /// matrix, e.g. on a stock-exhausted fallback or a model RESUME);
    /// `None` uses the pool's default matrix.
    pub weights: Option<Arc<Vec<Vec<i64>>>>,
    /// Trace the submitting session carries; the worker records
    /// `server/queue_wait` and `server/garble` spans under it when a
    /// recorder is attached and the context is traced.
    pub trace: TraceContext,
}

/// What a worker hands back for one job.
pub type JobResult = Result<GarbledJob, AcceleratorError>;

/// Typed rejection when the bounded queue cannot admit another job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// Depth observed at rejection time (== capacity).
    pub queue_depth: usize,
}

/// Background work a unit runs when the queue is empty. Returns `true` if
/// it made progress (the unit re-checks the queue immediately), `false` if
/// there is nothing to precompute (the unit parks until woken or a short
/// poll interval elapses). Implementations must keep each step short — a
/// real job enqueued mid-step waits for the step to finish.
pub type IdleFill = Arc<dyn Fn() -> bool + Send + Sync>;

/// Outcome of a non-blocking queue poll.
enum Polled {
    Job(Box<QueuedJob>),
    Empty,
    Closed,
}

struct QueuedJob {
    request: JobRequest,
    reply: mpsc::Sender<JobResult>,
    enqueued: Instant,
}

struct QueueState {
    /// Per-session FIFO queues.
    per_session: BTreeMap<u64, VecDeque<QueuedJob>>,
    /// Round-robin rotation of sessions that have pending jobs.
    rotation: VecDeque<u64>,
    len: usize,
    paused: bool,
    closed: bool,
}

/// Bounded multi-session queue with round-robin fairness across sessions.
struct FairQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl FairQueue {
    fn new(capacity: usize, paused: bool) -> FairQueue {
        FairQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                per_session: BTreeMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                paused,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits a job or reports the queue full. Returns the depth after the
    /// push.
    fn push(&self, job: QueuedJob) -> Result<usize, QueueFull> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed || state.len >= self.capacity {
            return Err(QueueFull {
                queue_depth: state.len,
            });
        }
        let session = job.request.session_id;
        let queue = state.per_session.entry(session).or_default();
        let newly_pending = queue.is_empty();
        queue.push_back(job);
        if newly_pending {
            state.rotation.push_back(session);
        }
        state.len += 1;
        let depth = state.len;
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Pops the next job in round-robin session order if one is available
    /// right now (queue non-empty and not paused).
    fn pop_locked(state: &mut QueueState) -> Option<QueuedJob> {
        loop {
            if state.len == 0 || state.paused {
                return None;
            }
            let mut popped = None;
            if let Some(session) = state.rotation.pop_front() {
                if let Some(queue) = state.per_session.get_mut(&session) {
                    popped = queue.pop_front();
                    if queue.is_empty() {
                        state.per_session.remove(&session);
                    } else {
                        state.rotation.push_back(session);
                    }
                }
            }
            if let Some(job) = popped {
                state.len -= 1;
                return Some(job);
            }
            // Bookkeeping skew is impossible by construction, but a
            // worker must never panic while holding the queue: rebuild
            // the rotation/len from the ground truth and retry.
            state.len = state.per_session.values().map(VecDeque::len).sum();
            state.rotation = state.per_session.keys().copied().collect();
        }
    }

    /// Takes the next job in round-robin session order; blocks while the
    /// queue is empty or paused. Returns `None` once closed and drained.
    fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = Self::pop_locked(&mut state) {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking variant of [`FairQueue::pop`] for units that have idle
    /// work to fall back to.
    fn try_pop(&self) -> Polled {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match Self::pop_locked(&mut state) {
            Some(job) => Polled::Job(Box::new(job)),
            None if state.closed => Polled::Closed,
            None => Polled::Empty,
        }
    }

    /// Parks until a push/resume/close notification or `timeout` elapses.
    /// The timeout bounds how stale an idle unit's "nothing to precompute"
    /// view can get (new models can arrive without a queue notification).
    fn wait_for_work(&self, timeout: Duration) {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if (state.len > 0 && !state.paused) || state.closed {
            return;
        }
        let _ = self
            .ready
            .wait_timeout(state, timeout)
            .unwrap_or_else(PoisonError::into_inner);
    }

    fn resume(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .paused = false;
        self.ready.notify_all();
    }

    /// Stops admissions; workers drain what is already queued, then exit.
    fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len
    }
}

/// A fixed pool of garbling units draining a [`FairQueue`].
///
/// Each worker owns nothing but its thread: jobs carry their own seed, and
/// [`garble_matvec_job`] builds a fresh deterministic accelerator per job,
/// so results are independent of which unit ran what — the property the
/// transcript-parity tests rely on.
pub struct UnitPool {
    queue: Arc<FairQueue>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

impl std::fmt::Debug for UnitPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnitPool")
            .field("workers", &self.worker_count)
            .field("depth", &self.queue.depth())
            .finish()
    }
}

impl UnitPool {
    /// Spawns `workers` garbling units over a queue of `queue_capacity`
    /// jobs. With `start_paused`, units wait until [`UnitPool::resume`] —
    /// the deterministic way to observe backpressure in tests. A
    /// `recorder`, when given, receives per-job `server/queue_wait` and
    /// `server/garble` trace spans for traced requests. An `idle_fill`
    /// hook, when given, is run whenever a unit finds the queue empty —
    /// registry precompute during pool idle time.
    ///
    /// # Panics
    ///
    /// Panics if no worker thread at all could be spawned — a zero-unit
    /// pool would accept jobs that can never run.
    pub fn new(
        config: AcceleratorConfig,
        weights: Arc<Vec<Vec<i64>>>,
        workers: usize,
        queue_capacity: usize,
        start_paused: bool,
        recorder: Option<Arc<Recorder>>,
        idle_fill: Option<IdleFill>,
    ) -> UnitPool {
        let queue = Arc::new(FairQueue::new(queue_capacity, start_paused));
        let worker_count = workers.max(1);
        let handles: Vec<JoinHandle<()>> = (0..worker_count)
            .filter_map(|w| {
                let queue = Arc::clone(&queue);
                let config = config.clone();
                let weights = Arc::clone(&weights);
                let recorder = recorder.clone();
                let idle_fill = idle_fill.clone();
                // A unit that fails to spawn (thread exhaustion) just
                // shrinks the pool; the queue still drains through the
                // rest. Losing *every* unit is fatal — checked below.
                std::thread::Builder::new()
                    .name(format!("gc-unit-{w}"))
                    .spawn(move || loop {
                        // Real jobs always preempt precompute: the hook only
                        // runs when the queue is observed empty, one short
                        // step at a time.
                        let job = match idle_fill {
                            None => queue.pop(),
                            Some(ref fill) => loop {
                                match queue.try_pop() {
                                    Polled::Job(job) => break Some(*job),
                                    Polled::Closed => break None,
                                    Polled::Empty => {
                                        if !fill() {
                                            queue.wait_for_work(Duration::from_millis(25));
                                        }
                                    }
                                }
                            },
                        };
                        let Some(job) = job else { break };
                        let _lane = max_telemetry::timeline("serve.units", w as u32);
                        let traced = recorder.as_ref().filter(|_| job.request.trace.is_traced());
                        if let Some(rec) = traced {
                            let now = rec.now_ns();
                            let wait_ns = job.enqueued.elapsed().as_nanos() as u64;
                            rec.record_trace_event(
                                job.request.trace,
                                "server/queue_wait",
                                now.saturating_sub(wait_ns),
                                now,
                            );
                        }
                        let _garble_span =
                            traced.map(|rec| rec.trace_span(job.request.trace, "server/garble"));
                        let matrix = job
                            .request
                            .weights
                            .as_ref()
                            .map_or(&weights[..], |m| &m[..]);
                        let result = garble_matvec_job(
                            &config,
                            matrix,
                            job.request.seed,
                            job.request.columns,
                        );
                        // A session that died while queued is fine.
                        let _ = job.reply.send(result);
                    })
                    .ok()
            })
            .collect();
        // A pool with zero units would accept jobs that can never run:
        // sessions would block forever on the reply channel. Fail loudly
        // at construction instead (host resource exhaustion, not peer
        // input), and report the *true* worker count.
        assert!(
            !handles.is_empty(),
            "failed to spawn any garbling unit thread"
        );
        let worker_count = handles.len();
        UnitPool {
            queue,
            workers: Mutex::new(handles),
            worker_count,
        }
    }

    /// Submits a job; the returned receiver yields the garbled result.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the bounded queue cannot admit the job — the
    /// caller should reply BUSY with a retry hint, never block or buffer.
    pub fn submit(&self, request: JobRequest) -> Result<mpsc::Receiver<JobResult>, QueueFull> {
        let (tx, rx) = mpsc::channel();
        match self.queue.push(QueuedJob {
            request,
            reply: tx,
            enqueued: Instant::now(),
        }) {
            Ok(depth) => {
                max_telemetry::counter_add("serve.jobs.accepted", 1);
                max_telemetry::histogram_record("serve.queue_depth", depth as u64);
                Ok(rx)
            }
            Err(full) => {
                max_telemetry::counter_add("serve.jobs.rejected", 1);
                Err(full)
            }
        }
    }

    /// Number of garbling units.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Jobs currently queued (not yet picked up by a unit).
    pub fn depth(&self) -> usize {
        self.queue.depth()
    }

    /// Releases a pool constructed with `start_paused`.
    pub fn resume(&self) {
        self.queue.resume();
    }

    /// Graceful drain: stop admissions, let units finish everything queued,
    /// and join them.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(session_id: u64, job_id: u64) -> JobRequest {
        JobRequest {
            session_id,
            job_id,
            columns: 1,
            seed: 1,
            weights: None,
            trace: TraceContext::none(),
        }
    }

    fn push(queue: &FairQueue, session_id: u64, job_id: u64) -> Result<usize, QueueFull> {
        let (tx, _rx) = mpsc::channel();
        // Keep the receiver alive via leak-free drop: send() failing is fine
        // for these scheduling-order tests.
        queue.push(QueuedJob {
            request: request(session_id, job_id),
            reply: tx,
            enqueued: Instant::now(),
        })
    }

    #[test]
    fn round_robin_across_sessions() {
        let queue = FairQueue::new(8, true);
        // Session 1 floods first; session 2 arrives later with fewer jobs.
        push(&queue, 1, 0).unwrap();
        push(&queue, 1, 1).unwrap();
        push(&queue, 1, 2).unwrap();
        push(&queue, 2, 0).unwrap();
        push(&queue, 2, 1).unwrap();
        queue.resume();
        let order: Vec<(u64, u64)> = (0..5)
            .map(|_| {
                let job = queue.pop().unwrap();
                (job.request.session_id, job.request.job_id)
            })
            .collect();
        // Interleaved, not FIFO: the late session is served every other slot.
        assert_eq!(order, vec![(1, 0), (2, 0), (1, 1), (2, 1), (1, 2)]);
    }

    #[test]
    fn bounded_queue_rejects_with_depth() {
        let queue = FairQueue::new(2, true);
        push(&queue, 1, 0).unwrap();
        push(&queue, 2, 0).unwrap();
        assert_eq!(push(&queue, 3, 0), Err(QueueFull { queue_depth: 2 }));
        assert_eq!(queue.depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let queue = FairQueue::new(4, false);
        push(&queue, 1, 0).unwrap();
        push(&queue, 1, 1).unwrap();
        queue.close();
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none());
        // Closed queues admit nothing.
        assert!(push(&queue, 1, 2).is_err());
    }

    #[test]
    fn pool_executes_real_jobs() {
        let config = AcceleratorConfig::new(8);
        let weights = Arc::new(vec![vec![2i64, -3], vec![4, 5]]);
        let pool = UnitPool::new(config, weights, 2, 4, false, None, None);
        let rx_a = pool.submit(request(1, 0)).unwrap();
        let rx_b = pool.submit(request(2, 0)).unwrap();
        let job_a = rx_a.recv().unwrap().unwrap();
        let job_b = rx_b.recv().unwrap().unwrap();
        assert_eq!(job_a.rows.len(), 2);
        assert_eq!(job_a.rows_per_pass, 2);
        assert!(job_a.fabric_cycles > 0);
        // Same seed => bit-identical garbling regardless of which unit ran it.
        assert_eq!(
            job_a.rows[0].messages[0].tables,
            job_b.rows[0].messages[0].tables
        );
        pool.shutdown();
    }

    #[test]
    fn weights_override_garbles_against_request_matrix() {
        let config = AcceleratorConfig::new(8);
        let default_weights = Arc::new(vec![vec![1i64]]);
        let pool = UnitPool::new(config.clone(), default_weights, 1, 4, false, None, None);
        let model = Arc::new(vec![vec![7i64, -2], vec![3, 4]]);
        let mut req = request(1, 0);
        req.weights = Some(Arc::clone(&model));
        let got = pool.submit(req).unwrap().recv().unwrap().unwrap();
        let want = garble_matvec_job(&config, &model, 1, 1).unwrap();
        assert_eq!(got.rows.len(), 2, "model shape, not the pool default");
        assert_eq!(
            got.rows[0].messages[0].tables,
            want.rows[0].messages[0].tables
        );
        pool.shutdown();
    }

    #[test]
    fn idle_fill_runs_only_while_queue_is_empty() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let config = AcceleratorConfig::new(8);
        let weights = Arc::new(vec![vec![1i64]]);
        let fills = Arc::new(AtomicU64::new(0));
        let hook_fills = Arc::clone(&fills);
        let hook: IdleFill = Arc::new(move || {
            hook_fills.fetch_add(1, Ordering::SeqCst);
            // Claim saturation every other step so the unit also exercises
            // its timed-wait path.
            hook_fills.load(Ordering::SeqCst).is_multiple_of(2)
        });
        let pool = UnitPool::new(config, weights, 1, 2, false, None, Some(hook));
        // Idle pool precomputes...
        let deadline = Instant::now() + Duration::from_secs(5);
        while fills.load(Ordering::SeqCst) < 3 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(fills.load(Ordering::SeqCst) >= 3, "idle hook never ran");
        // ...and still serves real jobs promptly.
        let rx = pool.submit(request(1, 0)).unwrap();
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().is_ok());
        pool.shutdown();
    }

    #[test]
    fn paused_pool_holds_jobs_until_resume() {
        let config = AcceleratorConfig::new(8);
        let weights = Arc::new(vec![vec![1i64]]);
        let pool = UnitPool::new(config, weights, 1, 2, true, None, None);
        let rx = pool.submit(request(1, 0)).unwrap();
        assert_eq!(pool.depth(), 1);
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err());
        pool.resume();
        assert!(rx.recv().unwrap().is_ok());
        pool.shutdown();
    }
}
