//! Durable write-ahead journal for session checkpoints.
//!
//! The [`ResumeRegistry`](crate::resume::ResumeRegistry) survives dropped
//! *connections*; this module makes checkpoints survive dropped
//! *processes*. Every element boundary the session layer snapshots at is
//! also appended here as a CRC-checksummed, length-prefixed record and
//! (by default) fsync'd before the element's frames go out on the wire —
//! so after a `kill -9` + restart, replaying the journal rebuilds exactly
//! the registry a reconnecting client's RESUME validates against.
//!
//! # On-disk format
//!
//! A journal directory holds numbered segment files `journal-NNNNNNNNNNNN.maxj`:
//!
//! ```text
//! segment  := magic (8 bytes, "MAXJRNL1") record*
//! record   := len:u32le crc:u32le body[len]
//! body     := kind:u8 payload
//! kind 1   := checkpoint payload (resume::encode_checkpoint)
//! kind 2   := remove payload (session_id:u64le)
//! kind 3   := model put (model_id:u64le rows:u32le cols:u32le weight:i64le* digest:16)
//! kind 4   := model remove (model_id:u64le)
//! ```
//!
//! The CRC covers the body. Replay applies records in order with
//! last-write-wins per session id, across two failure taxonomies:
//!
//! * **Torn tail** — the process died mid-append, so the *last* segment
//!   ends inside a record. Replay keeps everything up to the last valid
//!   record and drops the tail; this is expected crash debris, not
//!   corruption.
//! * **Corruption** — a CRC mismatch, an impossible length, a bad magic,
//!   or a mid-file truncation in a *non-final* segment means the bytes
//!   changed under us. The valid prefix is still applied, the segment file
//!   is renamed to `*.quarantine` for forensics, and boot continues —
//!   sessions whose only checkpoint lived in the damaged region get a
//!   typed `REJECT(resume)` later instead of the server refusing to start.
//!
//! After replay the journal compacts: the surviving live set is rewritten
//! into a fresh segment and old (non-quarantined) segments are deleted.
//! Rotation does the same every `rotate_after` appends, so disk usage is
//! bounded by the live sessions' last-2-snapshot window, not job length.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::resume::{
    decode_checkpoint, encode_checkpoint, CheckpointCodecError, SessionCheckpoint,
};

/// Segment file magic; the trailing digit is the format version.
const MAGIC: &[u8; 8] = b"MAXJRNL1";

/// Segment filename prefix/suffix.
const SEGMENT_PREFIX: &str = "journal-";
const SEGMENT_SUFFIX: &str = ".maxj";

/// Suffix a damaged segment is renamed under.
const QUARANTINE_SUFFIX: &str = ".quarantine";

/// Hard cap on one record body: a checkpoint is ~4 KiB (two snapshots of
/// 128 16-byte counters); anything claiming more than this is corruption.
const MAX_RECORD_LEN: u32 = 1 << 20;

/// Record kinds.
const KIND_CHECKPOINT: u8 = 1;
const KIND_REMOVE: u8 = 2;
const KIND_MODEL_PUT: u8 = 3;
const KIND_MODEL_REMOVE: u8 = 4;

/// Shape cap shared with the wire's `MODEL_PUT` validation — a replayed
/// model record claiming more elements than the protocol admits is
/// corruption. (64 Ki elements × 8 bytes = 512 KiB, under
/// [`MAX_RECORD_LEN`].)
const MAX_MODEL_ELEMENTS: u64 = 1 << 16;

/// Serializes a registered model for its journal record: the header and
/// weights, followed by a 16-byte [`TranscriptDigest`] trailer over them.
/// The trailer is what lets a replay distinguish weights that rotted on
/// disk from weights that were written — the record-level CRC is
/// recomputed on every compaction rewrite, so it alone cannot catch a
/// payload that went bad *between* writes.
fn encode_model_payload(model_id: u64, weights: &[Vec<i64>]) -> Vec<u8> {
    let rows = weights.len();
    let cols = weights.first().map_or(0, Vec::len);
    let mut out = Vec::with_capacity(32 + rows * cols * 8);
    out.extend_from_slice(&model_id.to_le_bytes());
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(cols as u32).to_le_bytes());
    for row in weights {
        for &w in row {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    let mut digest = max_crypto::TranscriptDigest::new();
    digest.fold(&out);
    out.extend_from_slice(&digest.value());
    out
}

/// Deserializes a model record payload; structural defects are typed
/// refusals (the replay path quarantines on them, never panics). The
/// digest trailer is verified *before* the shape is trusted.
fn decode_model_payload(bytes: &[u8]) -> Result<(u64, Vec<Vec<i64>>), CheckpointCodecError> {
    // 16-byte header plus the 16-byte digest trailer is the minimum.
    if bytes.len() < 32 {
        return Err(CheckpointCodecError::Truncated {
            what: "model header",
        });
    }
    let (digested, trailer) = bytes.split_at(bytes.len() - 16);
    let mut digest = max_crypto::TranscriptDigest::new();
    digest.fold(digested);
    if trailer != digest.value() {
        return Err(CheckpointCodecError::DigestMismatch {
            what: "model weights",
        });
    }
    let bytes = digested;
    let mut id = [0u8; 8];
    id.copy_from_slice(&bytes[..8]);
    let model_id = u64::from_le_bytes(id);
    let rows = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as u64;
    let cols = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as u64;
    if rows == 0 || cols == 0 || rows * cols > MAX_MODEL_ELEMENTS {
        return Err(CheckpointCodecError::Truncated {
            what: "model shape",
        });
    }
    let body = &bytes[16..];
    if body.len() as u64 != rows * cols * 8 {
        return Err(CheckpointCodecError::Truncated {
            what: "model weights",
        });
    }
    let weights = (0..rows as usize)
        .map(|r| {
            (0..cols as usize)
                .map(|c| {
                    let at = (r * cols as usize + c) * 8;
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&body[at..at + 8]);
                    i64::from_le_bytes(buf)
                })
                .collect()
        })
        .collect();
    Ok((model_id, weights))
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time so
/// the journal needs no external checksum crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding every journal record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[usize::from((crc ^ u32::from(b)) as u8)];
    }
    !crc
}

/// How a [`Journal`] behaves on disk.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// fsync every append (and every segment rotation). Turning this off
    /// trades the durability of the last few appends for latency: after a
    /// power loss the journal replays to the last page the kernel flushed.
    pub fsync: bool,
    /// Appends per segment before rotating into a fresh compacted segment.
    pub rotate_after: u64,
    /// Live checkpoints retained in the journal's working set (oldest
    /// session id evicted beyond it; 0 = unbounded). Mirrors the resume
    /// registry's capacity so replay can never resurrect more state than
    /// the registry would hold.
    pub max_live: usize,
    /// **Test/bench-only** deterministic crash injection: abort the whole
    /// process (as `kill -9` would) immediately after the Nth successful
    /// append. `None` disables.
    pub abort_after_appends: Option<u64>,
}

impl JournalConfig {
    /// Durable defaults: fsync on, rotate every 64 appends, live set
    /// bounded at 64 sessions.
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            fsync: true,
            rotate_after: 64,
            max_live: 64,
            abort_after_appends: None,
        }
    }
}

/// Why a journal operation failed. IO errors carry the failing step so an
/// operator can tell a full disk from a permissions problem.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying filesystem operation failed.
    Io {
        /// Which journal step was executing.
        what: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// A record decoded structurally but its checkpoint payload is invalid.
    Codec(CheckpointCodecError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { what, source } => write!(f, "journal {what}: {source}"),
            JournalError::Codec(err) => write!(f, "journal record: {err}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            JournalError::Codec(err) => Some(err),
        }
    }
}

impl From<CheckpointCodecError> for JournalError {
    fn from(err: CheckpointCodecError) -> Self {
        JournalError::Codec(err)
    }
}

fn io_err(what: &'static str) -> impl FnOnce(std::io::Error) -> JournalError {
    move |source| JournalError::Io { what, source }
}

/// What [`Journal::open`] found and salvaged on disk.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Segment files scanned (quarantined ones from earlier boots are
    /// never re-read).
    pub segments_scanned: usize,
    /// Valid records applied across all segments.
    pub records_applied: u64,
    /// The final segment ended inside a record (torn write) and the tail
    /// was dropped.
    pub truncated_tail: bool,
    /// Segments renamed to `*.quarantine` this boot (corruption).
    pub quarantined: Vec<PathBuf>,
    /// Live session checkpoints after replay — what the registry gets.
    pub sessions: usize,
    /// Live prepared models after replay — re-registered into the model
    /// registry at boot.
    pub models: usize,
}

/// Outcome of scanning one segment's records.
struct SegmentScan {
    records: Vec<(u8, Vec<u8>)>,
    /// `None` = clean; `Some(torn)` = scan stopped early, `torn` says
    /// whether the damage is a clean end-of-file truncation (recoverable
    /// tail) as opposed to a checksum/length violation (corruption).
    damage: Option<bool>,
}

struct JournalInner {
    file: File,
    seq: u64,
    appends_in_segment: u64,
    appends_total: u64,
    live: BTreeMap<u64, SessionCheckpoint>,
    /// Live prepared models, stored as their encoded record payloads
    /// (bounded by the registry's byte budget upstream; a model is ~8
    /// bytes per element, far smaller than its garbled streams).
    live_models: BTreeMap<u64, Vec<u8>>,
}

/// The durable checkpoint journal. All methods are `&self` (internally
/// locked) so one handle can be shared across session threads.
pub struct Journal {
    dir: PathBuf,
    fsync: bool,
    rotate_after: u64,
    max_live: usize,
    abort_after_appends: Option<u64>,
    inner: Mutex<JournalInner>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .field("live", &self.live_sessions())
            .finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{seq:012}{SEGMENT_SUFFIX}"))
}

fn parse_segment_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?;
    stem.parse().ok()
}

/// fsync the directory itself so segment creations/deletions are durable.
fn sync_dir(dir: &Path) -> Result<(), JournalError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io_err("dir sync"))
}

/// Splits a segment's bytes into records. Never errors: damage is reported
/// in-band so the caller can apply the valid prefix either way.
fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        // A wrong or half-written magic: an empty file is a torn segment
        // creation (recoverable); anything else is corruption.
        return SegmentScan {
            records,
            damage: Some(bytes.is_empty()),
        };
    }
    let mut rest = &bytes[MAGIC.len()..];
    while !rest.is_empty() {
        if rest.len() < 8 {
            return SegmentScan {
                records,
                damage: Some(true),
            };
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len == 0 || len > MAX_RECORD_LEN {
            // An impossible length prefix is corruption, not truncation —
            // trusting it could swallow the rest of the segment.
            return SegmentScan {
                records,
                damage: Some(false),
            };
        }
        let body_end = 8 + len as usize;
        if rest.len() < body_end {
            return SegmentScan {
                records,
                damage: Some(true),
            };
        }
        let body = &rest[8..body_end];
        if crc32(body) != crc {
            return SegmentScan {
                records,
                damage: Some(false),
            };
        }
        records.push((body[0], body[1..].to_vec()));
        rest = &rest[body_end..];
    }
    SegmentScan {
        records,
        damage: None,
    }
}

/// Applies one scanned record to the live maps (last write wins).
fn apply_record(
    live: &mut BTreeMap<u64, SessionCheckpoint>,
    live_models: &mut BTreeMap<u64, Vec<u8>>,
    kind: u8,
    payload: &[u8],
) -> Result<(), CheckpointCodecError> {
    match kind {
        KIND_CHECKPOINT => {
            let checkpoint = decode_checkpoint(payload)?;
            live.insert(checkpoint.session_id, checkpoint);
            Ok(())
        }
        KIND_REMOVE => {
            if payload.len() != 8 {
                return Err(CheckpointCodecError::Truncated {
                    what: "remove session id",
                });
            }
            let mut buf = [0u8; 8];
            buf.copy_from_slice(payload);
            live.remove(&u64::from_le_bytes(buf));
            Ok(())
        }
        KIND_MODEL_PUT => {
            // Decode up front so corruption quarantines at replay time,
            // not at registry boot; the raw payload is what gets rewritten
            // on compaction.
            let (model_id, _weights) = decode_model_payload(payload).inspect_err(|err| {
                if matches!(err, CheckpointCodecError::DigestMismatch { .. }) {
                    max_telemetry::counter_add("serve.journal.model_digest_mismatch", 1);
                }
            })?;
            live_models.insert(model_id, payload.to_vec());
            Ok(())
        }
        KIND_MODEL_REMOVE => {
            if payload.len() != 8 {
                return Err(CheckpointCodecError::Truncated {
                    what: "model remove id",
                });
            }
            let mut buf = [0u8; 8];
            buf.copy_from_slice(payload);
            live_models.remove(&u64::from_le_bytes(buf));
            Ok(())
        }
        _ => Err(CheckpointCodecError::Truncated {
            what: "unknown record kind",
        }),
    }
}

fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + payload.len());
    body.push(kind);
    body.extend_from_slice(payload);
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

impl Journal {
    /// Opens (or creates) the journal in `cfg.dir`, replays every segment
    /// into the live set, quarantines damaged segments, and compacts the
    /// survivors into a fresh segment.
    ///
    /// Corrupt *content* never fails this call — that is the whole point.
    /// Only filesystem-level failures (unreadable directory, full disk) do.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the directory cannot be created, listed,
    /// or written.
    pub fn open(cfg: JournalConfig) -> Result<(Journal, ReplayReport), JournalError> {
        fs::create_dir_all(&cfg.dir).map_err(io_err("create dir"))?;

        let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(&cfg.dir)
            .map_err(io_err("list dir"))?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                parse_segment_seq(&path).map(|seq| (seq, path))
            })
            .collect();
        segments.sort_by_key(|(seq, _)| *seq);

        let mut report = ReplayReport::default();
        let mut live: BTreeMap<u64, SessionCheckpoint> = BTreeMap::new();
        let mut live_models: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let last_index = segments.len().saturating_sub(1);
        for (index, (_, path)) in segments.iter().enumerate() {
            report.segments_scanned += 1;
            let bytes = fs::read(path).map_err(io_err("read segment"))?;
            let scan = scan_segment(&bytes);
            let mut poisoned = match scan.damage {
                None => false,
                // A torn tail is only benign on the *last* segment: earlier
                // segments were sealed by a later rotation, so a short read
                // there means the file changed after the fact.
                Some(torn_eof) => !(torn_eof && index == last_index),
            };
            for (kind, payload) in &scan.records {
                match apply_record(&mut live, &mut live_models, *kind, payload) {
                    Ok(()) => report.records_applied += 1,
                    Err(_) => {
                        // CRC passed but the payload is structurally bad:
                        // that is corruption (or a format skew), not a torn
                        // write. Quarantine; keep what applied so far.
                        poisoned = true;
                        break;
                    }
                }
            }
            if poisoned {
                let mut quarantine = path.clone().into_os_string();
                quarantine.push(QUARANTINE_SUFFIX);
                let quarantine = PathBuf::from(quarantine);
                fs::rename(path, &quarantine).map_err(io_err("quarantine segment"))?;
                max_telemetry::counter_add("serve.journal.quarantined", 1);
                report.quarantined.push(quarantine);
            } else if scan.damage.is_some() {
                report.truncated_tail = true;
                max_telemetry::counter_add("serve.journal.tail_truncated", 1);
            }
        }
        report.sessions = live.len();
        report.models = live_models.len();
        max_telemetry::counter_add("serve.journal.replayed", report.records_applied);

        // Compact: rewrite the live set into a fresh segment, then retire
        // every older (non-quarantined) segment. A torn tail disappears
        // here too — its valid prefix lives on in the new segment.
        let next_seq = segments.last().map_or(0, |(seq, _)| seq + 1);
        let mut file = Self::create_segment(&cfg.dir, next_seq)?;
        for payload in live_models.values() {
            file.write_all(&encode_record(KIND_MODEL_PUT, payload))
                .map_err(io_err("compact write"))?;
        }
        for checkpoint in live.values() {
            file.write_all(&encode_record(
                KIND_CHECKPOINT,
                &encode_checkpoint(checkpoint),
            ))
            .map_err(io_err("compact write"))?;
        }
        if cfg.fsync {
            file.sync_all().map_err(io_err("compact sync"))?;
            sync_dir(&cfg.dir)?;
        }
        for (_, path) in &segments {
            // Quarantined segments were renamed away; whatever still parses
            // as a segment path is superseded by the compacted one.
            if path.exists() {
                fs::remove_file(path).map_err(io_err("retire segment"))?;
            }
        }
        if cfg.fsync {
            sync_dir(&cfg.dir)?;
        }

        let journal = Journal {
            dir: cfg.dir,
            fsync: cfg.fsync,
            rotate_after: cfg.rotate_after.max(1),
            max_live: cfg.max_live,
            abort_after_appends: cfg.abort_after_appends,
            inner: Mutex::new(JournalInner {
                file,
                seq: next_seq,
                appends_in_segment: 0,
                appends_total: 0,
                live,
                live_models,
            }),
        };
        Ok((journal, report))
    }

    fn create_segment(dir: &Path, seq: u64) -> Result<File, JournalError> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(segment_path(dir, seq))
            .map_err(io_err("create segment"))?;
        file.write_all(MAGIC).map_err(io_err("write magic"))?;
        Ok(file)
    }

    /// Appends (and by default fsyncs) a checkpoint record, updating the
    /// live set. Called at every element boundary *before* the element's
    /// frames are sent, so the journal never trails the client's view.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write/sync failure; the in-memory live set
    /// is updated regardless so serving can continue degraded.
    pub fn append_checkpoint(&self, checkpoint: &SessionCheckpoint) -> Result<(), JournalError> {
        let payload = encode_checkpoint(checkpoint);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.live.insert(checkpoint.session_id, checkpoint.clone());
        if self.max_live > 0 {
            while inner.live.len() > self.max_live {
                // Session ids are allocated monotonically, so the smallest
                // key is the oldest session — same victim the registry's
                // insertion-order eviction would pick.
                let Some((&oldest, _)) = inner.live.iter().next() else {
                    break;
                };
                inner.live.remove(&oldest);
            }
        }
        self.append_locked(&mut inner, KIND_CHECKPOINT, &payload)
    }

    /// Appends a tombstone for `session_id` (job completed, clean BYE, or
    /// successful resume) so a restart does not resurrect finished work.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write/sync failure.
    pub fn append_remove(&self, session_id: u64) -> Result<(), JournalError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.live.remove(&session_id);
        self.append_locked(&mut inner, KIND_REMOVE, &session_id.to_le_bytes())
    }

    /// Appends (and by default fsyncs) a prepared-model record so a restart
    /// can re-register the model before any client reconnects. Called by
    /// the service layer on every successful `MODEL_PUT` (a re-PUT of the
    /// same id overwrites — last write wins on replay, matching the
    /// registry's epoch rotation).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write/sync failure; the in-memory model set
    /// is updated regardless so serving can continue degraded.
    pub fn append_model_put(
        &self,
        model_id: u64,
        weights: &[Vec<i64>],
    ) -> Result<(), JournalError> {
        let payload = encode_model_payload(model_id, weights);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.live_models.insert(model_id, payload.clone());
        self.append_locked(&mut inner, KIND_MODEL_PUT, &payload)
    }

    /// Appends a tombstone for an evicted model (explicit `MODEL_EVICT` or
    /// byte-budget eviction) so a restart does not resurrect it.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write/sync failure.
    pub fn append_model_remove(&self, model_id: u64) -> Result<(), JournalError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.live_models.remove(&model_id);
        self.append_locked(&mut inner, KIND_MODEL_REMOVE, &model_id.to_le_bytes())
    }

    fn append_locked(
        &self,
        inner: &mut JournalInner,
        kind: u8,
        payload: &[u8],
    ) -> Result<(), JournalError> {
        inner
            .file
            .write_all(&encode_record(kind, payload))
            .map_err(io_err("append write"))?;
        if self.fsync {
            let started = Instant::now();
            inner.file.sync_all().map_err(io_err("append sync"))?;
            max_telemetry::histogram_record(
                "serve.journal.fsync_us",
                started.elapsed().as_micros() as u64,
            );
        }
        inner.appends_total += 1;
        inner.appends_in_segment += 1;
        max_telemetry::counter_add("serve.journal.appends", 1);
        if let Some(limit) = self.abort_after_appends {
            if inner.appends_total >= limit {
                // Deterministic crash injection: die exactly like kill -9
                // would, with the journal in whatever state the appends
                // left it. Test/bench harnesses only.
                std::process::abort();
            }
        }
        if inner.appends_in_segment >= self.rotate_after {
            self.rotate_locked(inner)?;
        }
        Ok(())
    }

    /// Seals the current segment into a fresh compacted one and deletes it.
    fn rotate_locked(&self, inner: &mut JournalInner) -> Result<(), JournalError> {
        let old_seq = inner.seq;
        let new_seq = old_seq + 1;
        let mut file = Self::create_segment(&self.dir, new_seq)?;
        for payload in inner.live_models.values() {
            file.write_all(&encode_record(KIND_MODEL_PUT, payload))
                .map_err(io_err("rotate write"))?;
        }
        for checkpoint in inner.live.values() {
            file.write_all(&encode_record(
                KIND_CHECKPOINT,
                &encode_checkpoint(checkpoint),
            ))
            .map_err(io_err("rotate write"))?;
        }
        if self.fsync {
            file.sync_all().map_err(io_err("rotate sync"))?;
            sync_dir(&self.dir)?;
        }
        inner.file = file;
        inner.seq = new_seq;
        inner.appends_in_segment = 0;
        // Only after the compacted segment is durable may the old one go.
        let old_path = segment_path(&self.dir, old_seq);
        if old_path.exists() {
            fs::remove_file(&old_path).map_err(io_err("rotate retire"))?;
        }
        if self.fsync {
            sync_dir(&self.dir)?;
        }
        max_telemetry::counter_add("serve.journal.rotations", 1);
        Ok(())
    }

    /// Forces the current segment to disk (graceful-shutdown flush; a
    /// no-op in effect when per-append fsync is on).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on sync failure.
    pub fn sync(&self) -> Result<(), JournalError> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.file.sync_all().map_err(io_err("flush sync"))
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total records appended through this handle.
    pub fn appends(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .appends_total
    }

    /// Checkpoints currently live (restart would restore exactly these).
    pub fn live_sessions(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .live
            .len()
    }

    /// Clones the live checkpoints, oldest session first — what a restart
    /// feeds into the resume registry.
    pub fn live_checkpoints(&self) -> Vec<SessionCheckpoint> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .live
            .values()
            .cloned()
            .collect()
    }

    /// Decodes the live prepared models, lowest id first — what a restart
    /// feeds into the model registry. Payloads were validated at replay
    /// (or append) time, so a decode failure here means in-memory
    /// corruption; such an entry is silently skipped rather than panicking.
    pub fn live_models(&self) -> Vec<(u64, Vec<Vec<i64>>)> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .live_models
            .values()
            .filter_map(|payload| decode_model_payload(payload).ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resume::SessionCheckpoint;
    use max_ot::iknp;
    use maxelerator::remote::derive_seed;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "maxj-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn checkpoint(session_id: u64) -> SessionCheckpoint {
        let session_seed = derive_seed(77, session_id);
        let (sender, _) = iknp::setup_pair(derive_seed(session_seed, 0x07));
        let digest = max_crypto::TranscriptDigest::new();
        SessionCheckpoint {
            session_id,
            resume_token: session_id ^ 0xF00D,
            session_seed,
            next_job: 1,
            job_id: 0,
            columns: 3,
            job_seed: 9,
            model_id: None,
            snapshots: vec![(0, sender.clone(), digest.clone()), (1, sender, digest)],
        }
    }

    fn model(rows: usize, cols: usize, tweak: i64) -> Vec<Vec<i64>> {
        (0..rows)
            .map(|r| (0..cols).map(|c| (r * cols + c) as i64 + tweak).collect())
            .collect()
    }

    fn config(dir: &Path) -> JournalConfig {
        let mut cfg = JournalConfig::new(dir);
        cfg.fsync = false; // tests don't need durability, just bytes
        cfg
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn replay_restores_last_write_wins() {
        let dir = temp_dir("replay");
        {
            let (journal, report) = Journal::open(config(&dir)).unwrap();
            assert_eq!(report.sessions, 0);
            journal.append_checkpoint(&checkpoint(1)).unwrap();
            journal.append_checkpoint(&checkpoint(2)).unwrap();
            let mut newer = checkpoint(1);
            newer.job_id = 5;
            newer.next_job = 6;
            journal.append_checkpoint(&newer).unwrap();
            journal.append_remove(2).unwrap();
        }
        let (journal, report) = Journal::open(config(&dir)).unwrap();
        assert_eq!(report.sessions, 1);
        assert!(report.quarantined.is_empty());
        assert!(!report.truncated_tail);
        let live = journal.live_checkpoints();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].session_id, 1);
        assert_eq!(live[0].job_id, 5, "last write must win");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_but_keeps_valid_prefix() {
        let dir = temp_dir("torn");
        {
            let (journal, _) = Journal::open(config(&dir)).unwrap();
            journal.append_checkpoint(&checkpoint(1)).unwrap();
            journal.append_checkpoint(&checkpoint(2)).unwrap();
        }
        // Chop bytes off the (single) segment's end: a torn final write.
        let segment = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| parse_segment_seq(p).is_some())
            .unwrap();
        let bytes = fs::read(&segment).unwrap();
        fs::write(&segment, &bytes[..bytes.len() - 9]).unwrap();

        let (journal, report) = Journal::open(config(&dir)).unwrap();
        assert!(report.truncated_tail);
        assert!(report.quarantined.is_empty());
        assert_eq!(journal.live_sessions(), 1, "first record survives");
        assert_eq!(journal.live_checkpoints()[0].session_id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_flip_quarantines_segment_and_still_boots() {
        let dir = temp_dir("flip");
        {
            let (journal, _) = Journal::open(config(&dir)).unwrap();
            journal.append_checkpoint(&checkpoint(1)).unwrap();
            journal.append_checkpoint(&checkpoint(2)).unwrap();
        }
        let segment = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| parse_segment_seq(p).is_some())
            .unwrap();
        let mut bytes = fs::read(&segment).unwrap();
        let near_end = bytes.len() - 20;
        bytes[near_end] ^= 0x40; // flip one bit inside the second record
        fs::write(&segment, &bytes).unwrap();

        let (journal, report) = Journal::open(config(&dir)).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0]
            .to_string_lossy()
            .ends_with(QUARANTINE_SUFFIX));
        assert!(report.quarantined[0].exists(), "evidence is preserved");
        // The valid prefix (record 1) still replays.
        assert_eq!(journal.live_sessions(), 1);
        // A third boot no longer sees the quarantined file as a segment.
        drop(journal);
        let (_, report) = Journal::open(config(&dir)).unwrap();
        assert!(report.quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_bounds_disk_and_preserves_live_set() {
        let dir = temp_dir("rotate");
        let mut cfg = config(&dir);
        cfg.rotate_after = 4;
        let (journal, _) = Journal::open(cfg.clone()).unwrap();
        for round in 0..25u64 {
            let mut cp = checkpoint(round % 3);
            cp.job_id = round;
            journal.append_checkpoint(&cp).unwrap();
        }
        let segments: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| parse_segment_seq(p).is_some())
            .collect();
        assert_eq!(segments.len(), 1, "rotation retires old segments");
        drop(journal);
        let (journal, report) = Journal::open(cfg).unwrap();
        assert_eq!(report.sessions, 3);
        assert_eq!(journal.live_sessions(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_records_replay_last_write_wins() {
        let dir = temp_dir("models");
        {
            let (journal, report) = Journal::open(config(&dir)).unwrap();
            assert_eq!(report.models, 0);
            journal.append_model_put(7, &model(2, 3, 0)).unwrap();
            journal.append_model_put(9, &model(1, 4, 10)).unwrap();
            journal.append_model_put(7, &model(2, 3, 100)).unwrap();
            journal.append_model_remove(9).unwrap();
            // Models and checkpoints share the journal without interfering.
            journal.append_checkpoint(&checkpoint(1)).unwrap();
        }
        let (journal, report) = Journal::open(config(&dir)).unwrap();
        assert_eq!(report.models, 1);
        assert_eq!(report.sessions, 1);
        let models = journal.live_models();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].0, 7);
        assert_eq!(models[0].1, model(2, 3, 100), "re-PUT must win");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_records_survive_compaction_and_rotation() {
        let dir = temp_dir("modelrot");
        let mut cfg = config(&dir);
        cfg.rotate_after = 3;
        {
            let (journal, _) = Journal::open(cfg.clone()).unwrap();
            journal.append_model_put(5, &model(3, 2, 1)).unwrap();
            // Enough appends to force several rotations past the model put.
            for round in 0..10u64 {
                let mut cp = checkpoint(round % 2);
                cp.job_id = round;
                journal.append_checkpoint(&cp).unwrap();
            }
        }
        let (journal, report) = Journal::open(cfg).unwrap();
        assert_eq!(report.models, 1, "model persists across rotations");
        assert_eq!(journal.live_models()[0].1, model(3, 2, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_model_record_quarantines_segment() {
        let dir = temp_dir("modelbad");
        {
            let (journal, _) = Journal::open(config(&dir)).unwrap();
            journal.append_checkpoint(&checkpoint(1)).unwrap();
        }
        // Hand-append a CRC-valid record whose model payload claims an
        // impossible shape: structural corruption, not a torn write.
        let segment = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| parse_segment_seq(p).is_some())
            .unwrap();
        let mut bytes = fs::read(&segment).unwrap();
        let mut payload = 7u64.to_le_bytes().to_vec();
        payload.extend_from_slice(&0u32.to_le_bytes()); // rows = 0: invalid
        payload.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&encode_record(KIND_MODEL_PUT, &payload));
        fs::write(&segment, &bytes).unwrap();

        let (journal, report) = Journal::open(config(&dir)).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.models, 0);
        assert_eq!(journal.live_sessions(), 1, "valid prefix still applies");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_payload_codec_round_trips() {
        let weights = model(4, 5, -7);
        let payload = encode_model_payload(42, &weights);
        let (id, decoded) = decode_model_payload(&payload).unwrap();
        assert_eq!(id, 42);
        assert_eq!(decoded, weights);
        // Truncations and shape lies are typed refusals.
        assert!(decode_model_payload(&payload[..12]).is_err());
        assert!(decode_model_payload(&payload[..payload.len() - 1]).is_err());
        let mut huge = payload.clone();
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_model_payload(&huge).is_err());
    }

    #[test]
    fn model_payload_digest_catches_every_single_bit_flip() {
        let weights = model(2, 3, 5);
        let payload = encode_model_payload(13, &weights);
        assert!(decode_model_payload(&payload).is_ok());
        // Bit rot anywhere in the digested region is a typed digest
        // refusal; damage to the trailer itself is equally refused.
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut rotted = payload.clone();
                rotted[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        decode_model_payload(&rotted),
                        Err(CheckpointCodecError::DigestMismatch { .. })
                    ),
                    "flip at byte {byte} bit {bit} was not a digest refusal"
                );
            }
        }
    }

    #[test]
    fn live_set_is_bounded_by_max_live() {
        let dir = temp_dir("bound");
        let mut cfg = config(&dir);
        cfg.max_live = 2;
        let (journal, _) = Journal::open(cfg).unwrap();
        for id in 0..5u64 {
            journal.append_checkpoint(&checkpoint(id)).unwrap();
        }
        let live = journal.live_checkpoints();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].session_id, 3, "oldest sessions evicted first");
        assert_eq!(live[1].session_id, 4);
        let _ = fs::remove_dir_all(&dir);
    }
}
