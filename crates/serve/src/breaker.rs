//! Load-shedding circuit breaker.
//!
//! The breaker sits in front of session admission and job admission. It
//! trips on sustained queue-full pressure (a configurable run of
//! consecutive [`QueueFull`](crate::QueueFull) rejections) or explicitly —
//! the service wires `max-rng`'s [`HealthMonitor`](max_rng::HealthMonitor)
//! alarms into [`Breaker::trip`], modeling the paper's on-chip RNG health
//! checks gating the garbling fabric. While open, new sessions get
//! `REJECT(overload)` and job requests get `BUSY` — typed, retryable
//! rejections instead of queue pileup — until the open window elapses.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Trip after this many *consecutive* queue-full rejections
    /// (0 disables pressure-based tripping; explicit trips still work).
    pub queue_full_trip: u32,
    /// How long the breaker stays open per trip.
    pub open_for: Duration,
    /// Retry hint attached to shed responses, in milliseconds.
    pub retry_after_ms: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            queue_full_trip: 0,
            open_for: Duration::from_millis(100),
            retry_after_ms: 50,
        }
    }
}

struct BreakerState {
    consecutive_fulls: u32,
    open_until: Option<Instant>,
}

/// The breaker itself; cheap to share behind the service's `Arc`.
pub struct Breaker {
    config: BreakerConfig,
    state: Mutex<BreakerState>,
    trips: AtomicU64,
    sheds: AtomicU64,
}

impl std::fmt::Debug for Breaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Breaker")
            .field("open", &self.is_open())
            .field("trips", &self.trips.load(Ordering::Relaxed))
            .field("sheds", &self.sheds.load(Ordering::Relaxed))
            .finish()
    }
}

impl Breaker {
    /// Builds a closed breaker.
    pub fn new(config: BreakerConfig) -> Breaker {
        Breaker {
            config,
            state: Mutex::new(BreakerState {
                consecutive_fulls: 0,
                open_until: None,
            }),
            trips: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
        }
    }

    /// The tuning this breaker runs with.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Whether the breaker is currently open (load is being shed).
    pub fn is_open(&self) -> bool {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.open_until.is_some_and(|until| Instant::now() < until)
    }

    /// Records one shed decision and reports whether to shed: true while
    /// open.
    pub fn should_shed(&self) -> bool {
        let open = self.is_open();
        if open {
            self.sheds.fetch_add(1, Ordering::Relaxed);
            max_telemetry::counter_add("serve.breaker.sheds", 1);
        }
        open
    }

    /// Notes a queue-full rejection; trips once the consecutive run reaches
    /// the configured threshold. Returns whether this call tripped it.
    pub fn note_queue_full(&self) -> bool {
        if self.config.queue_full_trip == 0 {
            return false;
        }
        let tripped = {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.consecutive_fulls += 1;
            state.consecutive_fulls >= self.config.queue_full_trip
        };
        if tripped {
            self.trip();
        }
        tripped
    }

    /// Notes a successful admission, resetting the pressure run.
    pub fn note_ok(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .consecutive_fulls = 0;
    }

    /// Opens the breaker for the configured window (health alarms, manual
    /// operation, or sustained pressure).
    pub fn trip(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.open_until = Some(Instant::now() + self.config.open_for);
        state.consecutive_fulls = 0;
        drop(state);
        self.trips.fetch_add(1, Ordering::Relaxed);
        max_telemetry::counter_add("serve.breaker.trips", 1);
    }

    /// Force-closes the breaker (operator override).
    pub fn reset(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.open_until = None;
        state.consecutive_fulls = 0;
    }

    /// Times the breaker has tripped.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Requests shed while open.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_trips_after_consecutive_fulls_only() {
        let breaker = Breaker::new(BreakerConfig {
            queue_full_trip: 3,
            open_for: Duration::from_secs(60),
            retry_after_ms: 10,
        });
        assert!(!breaker.note_queue_full());
        assert!(!breaker.note_queue_full());
        breaker.note_ok(); // run broken
        assert!(!breaker.note_queue_full());
        assert!(!breaker.note_queue_full());
        assert!(!breaker.is_open());
        assert!(breaker.note_queue_full());
        assert!(breaker.is_open());
        assert!(breaker.should_shed());
        assert_eq!(breaker.trips(), 1);
        assert_eq!(breaker.sheds(), 1);
        breaker.reset();
        assert!(!breaker.is_open());
    }

    #[test]
    fn explicit_trip_expires_after_the_window() {
        let breaker = Breaker::new(BreakerConfig {
            queue_full_trip: 0,
            open_for: Duration::from_millis(20),
            retry_after_ms: 10,
        });
        assert!(!breaker.note_queue_full(), "pressure tripping disabled");
        breaker.trip();
        assert!(breaker.is_open());
        std::thread::sleep(Duration::from_millis(40));
        assert!(!breaker.is_open());
        assert!(!breaker.should_shed());
    }
}
