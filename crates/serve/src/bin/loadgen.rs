//! Load generator: genuine two-party GC-MAC traffic against a running
//! `serve` instance, with every result verified against plaintext.
//!
//! ```text
//! loadgen [--addr 127.0.0.1:7700] [--width 8] [--rows 4] [--cols 4]
//!         [--seed 42] [--sessions 4] [--jobs 3] [--attempts 8]
//!         [--step-ms 0] [--metrics] [--model ID]
//! ```
//!
//! `--width/--rows/--cols/--seed` must match the server so the demo model
//! can be regenerated locally for verification.
//!
//! `--model ID` exercises the prepared-model path (protocol v5): the demo
//! matrix is registered under that id over `MODEL_PUT` before the sessions
//! start, every job targets the model instead of the session default, and
//! the run ends with the model's registry counters (stock, prepared vs
//! fallback serves) pulled over `MODEL_INFO`. Verification is unchanged —
//! the model is the same demo matrix.
//!
//! Each session drives its jobs through a [`ResilientClient`]: BUSY
//! replies are honored with the server's `retry_after_ms` hint plus
//! decorrelated jitter (never a fixed sleep), dropped connections redial
//! and RESUME, and the summary line reports every recovery event.
//!
//! Latency is aggregated into power-of-two [`Histogram`]s and reported as
//! p50/p95/p99 — whole-job latency plus the per-round breakdown. With
//! `--metrics` the run ends by pulling the server's live `METRICS` frame
//! over a fresh connection and printing the JSON body, so a load run and
//! the server's own view of it land side by side.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;

use max_gc::FramedTcp;
use max_serve::{demo_vector, demo_weights, plain_matvec};
use max_telemetry::Histogram;
use maxelerator::{
    remote, AcceleratorError, ModelHandle, RemoteClient, ResilientClient, RetryPolicy,
};

struct Args {
    addr: String,
    width: usize,
    rows: usize,
    cols: usize,
    seed: u64,
    sessions: usize,
    jobs: usize,
    attempts: u32,
    step_ms: u64,
    metrics: bool,
    model: Option<u64>,
}

fn fatal(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2)
}

fn parsed<T: std::str::FromStr>(what: &str, raw: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| fatal(&format!("{what} got an unparseable value: {raw}")))
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7700".to_string(),
        width: 8,
        rows: 4,
        cols: 4,
        seed: 42,
        sessions: 4,
        jobs: 3,
        attempts: 8,
        step_ms: 0,
        metrics: false,
        model: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| fatal(&format!("{what} needs a value")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--width" => args.width = parsed("--width", &value("--width")),
            "--rows" => args.rows = parsed("--rows", &value("--rows")),
            "--cols" => args.cols = parsed("--cols", &value("--cols")),
            "--seed" => args.seed = parsed("--seed", &value("--seed")),
            "--sessions" => args.sessions = parsed("--sessions", &value("--sessions")),
            "--jobs" => args.jobs = parsed("--jobs", &value("--jobs")),
            "--attempts" => args.attempts = parsed("--attempts", &value("--attempts")),
            "--step-ms" => args.step_ms = parsed("--step-ms", &value("--step-ms")),
            "--metrics" => args.metrics = true,
            "--model" => args.model = Some(parsed("--model", &value("--model"))),
            other => fatal(&format!("unknown flag: {other}")),
        }
    }
    args
}

struct SessionOutcome {
    jobs_ok: usize,
    busy_retries: u64,
    redials: u64,
    resumes: u64,
    restarts: u64,
    backoff_ms: u64,
    job_latencies_ns: Vec<u64>,
    round_latencies_ns: Vec<u64>,
    bytes_down: u64,
    bytes_up: u64,
}

fn run_session(
    args: &Args,
    session_idx: usize,
    model: Option<ModelHandle>,
) -> Result<SessionOutcome, AcceleratorError> {
    let weights = demo_weights(args.rows, args.cols, args.width, args.seed);
    let addr = args.addr.clone();
    let policy = RetryPolicy {
        max_attempts: args.attempts.max(1),
        step_timeout: (args.step_ms > 0).then(|| std::time::Duration::from_millis(args.step_ms)),
        // Per-session seed: concurrent sessions must not back off in
        // lockstep after a shared BUSY burst.
        jitter_seed: args.seed ^ ((session_idx as u64) << 32) ^ 0x010a_d0e4,
        ..RetryPolicy::default()
    };
    let mut client = ResilientClient::new(
        move || FramedTcp::connect(&addr).map_err(AcceleratorError::from),
        args.width,
        policy,
    );
    if let Some(handle) = model {
        client = client.with_model(handle);
    }
    let mut outcome = SessionOutcome {
        jobs_ok: 0,
        busy_retries: 0,
        redials: 0,
        resumes: 0,
        restarts: 0,
        backoff_ms: 0,
        job_latencies_ns: Vec::new(),
        round_latencies_ns: Vec::new(),
        bytes_down: 0,
        bytes_up: 0,
    };
    for job in 0..args.jobs {
        let x = demo_vector(
            args.cols,
            args.width,
            args.seed ^ ((session_idx as u64) << 20) ^ job as u64,
        );
        let expected = plain_matvec(&weights, &x);
        let started = Instant::now();
        let (y, transcript) = client.secure_matvec(&x)?;
        assert_eq!(y, expected, "session {session_idx} job {job} wrong result");
        if job == 0 {
            if let Some(session) = client.session() {
                assert_eq!(session.rows(), args.rows, "server model mismatch");
                assert_eq!(session.cols(), args.cols, "server model mismatch");
            }
        }
        outcome.jobs_ok += 1;
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        outcome.job_latencies_ns.push(elapsed_ns);
        outcome
            .round_latencies_ns
            .push(elapsed_ns / transcript.rounds.max(1));
    }
    let stats = client.stats().clone();
    outcome.busy_retries = stats.busy_backoffs;
    // `reconnects` counts the initial dial too; redials are the recoveries.
    outcome.redials = stats.reconnects.saturating_sub(1);
    outcome.resumes = stats.resumes;
    outcome.restarts = stats.restarts;
    outcome.backoff_ms = stats.backoff_ms_total;
    if let Some(transport) = client.goodbye() {
        outcome.bytes_down = transport.received().bytes();
        outcome.bytes_up = transport.sent().bytes();
    }
    Ok(outcome)
}

fn main() {
    let args = parse_args();
    let model = args.model.map(|model_id| {
        put_demo_model(&args, model_id)
            .unwrap_or_else(|e| fatal(&format!("MODEL_PUT for model {model_id} failed: {e}")))
    });
    let started = Instant::now();
    let outcomes: Vec<Result<SessionOutcome, AcceleratorError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.sessions)
            .map(|s| {
                scope.spawn({
                    let args = &args;
                    move || run_session(args, s, model)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| fatal("session thread panicked"))
            })
            .collect()
    });
    let wall = started.elapsed();

    let mut jobs_ok = 0usize;
    let mut busy_retries = 0u64;
    let mut redials = 0u64;
    let mut resumes = 0u64;
    let mut restarts = 0u64;
    let mut backoff_ms = 0u64;
    let mut job_hist = Histogram::default();
    let mut round_hist = Histogram::default();
    let mut bytes_down = 0u64;
    let mut bytes_up = 0u64;
    let mut failures = 0usize;
    for outcome in outcomes {
        match outcome {
            Ok(o) => {
                jobs_ok += o.jobs_ok;
                busy_retries += o.busy_retries;
                redials += o.redials;
                resumes += o.resumes;
                restarts += o.restarts;
                backoff_ms += o.backoff_ms;
                for ns in o.job_latencies_ns {
                    job_hist.record(ns);
                }
                for ns in o.round_latencies_ns {
                    round_hist.record(ns);
                }
                bytes_down += o.bytes_down;
                bytes_up += o.bytes_up;
            }
            Err(e) => {
                eprintln!("session failed: {e}");
                failures += 1;
            }
        }
    }
    let sessions_per_sec = (args.sessions - failures) as f64 / wall.as_secs_f64();
    let jobs_per_sec = jobs_ok as f64 / wall.as_secs_f64();
    println!(
        "sessions={} ok_jobs={} busy_retries={} redials={} resumes={} restarts={} \
         backoff_ms={} wall_ms={:.1} sessions/s={:.2} jobs/s={:.2} \
         job_p50_us={:.1} job_p95_us={:.1} job_p99_us={:.1} \
         round_p50_us={:.1} round_p95_us={:.1} round_p99_us={:.1} \
         down_bytes={} up_bytes={}",
        args.sessions - failures,
        jobs_ok,
        busy_retries,
        redials,
        resumes,
        restarts,
        backoff_ms,
        wall.as_secs_f64() * 1e3,
        sessions_per_sec,
        jobs_per_sec,
        job_hist.percentile(50.0) as f64 / 1e3,
        job_hist.percentile(95.0) as f64 / 1e3,
        job_hist.percentile(99.0) as f64 / 1e3,
        round_hist.percentile(50.0) as f64 / 1e3,
        round_hist.percentile(95.0) as f64 / 1e3,
        round_hist.percentile(99.0) as f64 / 1e3,
        bytes_down,
        bytes_up,
    );
    if let Some(handle) = model {
        match fetch_model_status(&args, handle.model_id) {
            Ok(status) => println!(
                "model {} ({}x{}): stock={} stock_bytes={} served_prepared={} \
                 served_fallback={} generation={}",
                status.model_id,
                status.rows,
                status.cols,
                status.stock,
                status.stock_bytes,
                status.served_prepared,
                status.served_fallback,
                status.generation,
            ),
            Err(e) => eprintln!("MODEL_INFO fetch failed: {e}"),
        }
    }
    if args.metrics {
        match fetch_server_metrics(&args.addr) {
            Ok(body) => println!("{body}"),
            Err(e) => eprintln!("metrics fetch failed: {e}"),
        }
    }
    assert_eq!(failures, 0, "{failures} sessions failed");
}

/// Registers the demo matrix under `model_id` over a dedicated session and
/// returns the handle every load session will target.
fn put_demo_model(args: &Args, model_id: u64) -> Result<ModelHandle, AcceleratorError> {
    let weights = demo_weights(args.rows, args.cols, args.width, args.seed);
    let mut client = RemoteClient::connect(FramedTcp::connect(&args.addr)?, args.width)?;
    let status = client.put_model(model_id, &weights)?;
    client.goodbye();
    Ok(status.handle())
}

/// Pulls the model's final registry counters over a fresh session.
fn fetch_model_status(args: &Args, model_id: u64) -> Result<remote::ModelStatus, AcceleratorError> {
    let mut client = RemoteClient::connect(FramedTcp::connect(&args.addr)?, args.width)?;
    let status = client.model_info(model_id)?;
    client.goodbye();
    Ok(status)
}

/// Pulls the server's live `METRICS` JSON over a fresh connection; the
/// control frame is answered before any handshake, so no session state is
/// disturbed.
fn fetch_server_metrics(addr: &str) -> Result<String, AcceleratorError> {
    let mut tcp = FramedTcp::connect(addr)?;
    remote::fetch_metrics(&mut tcp)
}
