//! The serving daemon: bind a TCP address and serve GC-MAC sessions.
//!
//! ```text
//! serve [--addr 127.0.0.1:7700] [--width 8] [--rows 4] [--cols 4]
//!       [--seed 42] [--workers 2] [--queue 16] [--idle-ms 30000]
//!       [--step-ms 0] [--resume-cap 64] [--breaker-fulls 0]
//!       [--breaker-open-ms 100] [--breaker-retry-ms 50]
//!       [--flight-cap 64] [--no-recorder]
//!       [--journal-dir DIR] [--no-fsync] [--deterministic-tokens]
//!       [--crash-after-appends N]
//!       [--registry-budget-bytes N] [--target-stock N] [--tile-rows N]
//!       [--prefill]
//! ```
//!
//! The model is the deterministic demo matrix; `loadgen` regenerates it
//! from the same `(rows, cols, width, seed)` to verify every result.
//!
//! Resilience knobs: `--step-ms` bounds each protocol step mid-job (a
//! wedged peer is reaped and its job checkpointed for RESUME),
//! `--resume-cap` sizes the checkpoint registry, and the `--breaker-*`
//! flags tune the load-shedding breaker (`--breaker-fulls 0` disables
//! pressure tripping).
//!
//! Durability: `--journal-dir` persists every round checkpoint to a
//! CRC-checksummed write-ahead journal, replayed on the next start — a
//! `kill -9` mid-job becomes a RESUME, not a restart. `--no-fsync` trades
//! the last few appends' durability for latency. The daemon also handles
//! SIGTERM/SIGINT with a graceful drain: stop accepting, flush the
//! journal, let sessions wind down, exit 0. `--crash-after-appends N`
//! (test/bench harnesses only) aborts the process after the Nth journal
//! append, simulating kill -9 at a deterministic crash point;
//! `--deterministic-tokens` (test-only, forgeable) derives resume tokens
//! from the seed chain so restarted servers mint identical ACCEPT frames.
//!
//! Observability: the daemon installs a [`Recorder`] by default, so the
//! admin `METRICS` control frame (e.g. `loadgen --metrics`) answers with
//! live counters, gauges, and p50/p95/p99 latency percentiles; pass
//! `--no-recorder` to serve without one (the frame still answers, with
//! `percentiles: null`). `--flight-cap` sizes the per-session flight
//! recorder ring whose last events are dumped as JSON when a session dies
//! (`0` disables it).
//!
//! Prepared models: clients register matrices over `MODEL_PUT` and the
//! daemon pre-garbles single-use streams for them during pool idle time.
//! `--registry-budget-bytes` caps the stream cache (0 = unbounded; LRU
//! whole-model eviction beyond it), `--target-stock` sets the warm streams
//! kept per model, `--tile-rows` the precompute tile granularity, and
//! `--prefill` fills every stock synchronously at startup.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use max_serve::{demo_weights, listen_tcp, GcService, JournalConfig, ServeConfig};
use max_telemetry::Recorder;
use maxelerator::AcceleratorConfig;

struct Args {
    addr: String,
    width: usize,
    rows: usize,
    cols: usize,
    seed: u64,
    workers: usize,
    queue: usize,
    idle_ms: u64,
    step_ms: u64,
    resume_cap: usize,
    breaker_fulls: u32,
    breaker_open_ms: u64,
    breaker_retry_ms: u32,
    flight_cap: usize,
    recorder: bool,
    journal_dir: Option<String>,
    fsync: bool,
    deterministic_tokens: bool,
    crash_after_appends: Option<u64>,
    registry_budget_bytes: u64,
    target_stock: usize,
    tile_rows: usize,
    prefill: bool,
}

fn fatal(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(2)
}

fn parsed<T: std::str::FromStr>(what: &str, raw: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| fatal(&format!("{what} got an unparseable value: {raw}")))
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7700".to_string(),
        width: 8,
        rows: 4,
        cols: 4,
        seed: 42,
        workers: 2,
        queue: 16,
        idle_ms: 30_000,
        step_ms: 0,
        resume_cap: 64,
        breaker_fulls: 0,
        breaker_open_ms: 100,
        breaker_retry_ms: 50,
        flight_cap: 64,
        recorder: true,
        journal_dir: None,
        fsync: true,
        deterministic_tokens: false,
        crash_after_appends: None,
        registry_budget_bytes: 0,
        target_stock: 2,
        tile_rows: 16,
        prefill: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| fatal(&format!("{what} needs a value")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--width" => args.width = parsed("--width", &value("--width")),
            "--rows" => args.rows = parsed("--rows", &value("--rows")),
            "--cols" => args.cols = parsed("--cols", &value("--cols")),
            "--seed" => args.seed = parsed("--seed", &value("--seed")),
            "--workers" => args.workers = parsed("--workers", &value("--workers")),
            "--queue" => args.queue = parsed("--queue", &value("--queue")),
            "--idle-ms" => args.idle_ms = parsed("--idle-ms", &value("--idle-ms")),
            "--step-ms" => args.step_ms = parsed("--step-ms", &value("--step-ms")),
            "--resume-cap" => args.resume_cap = parsed("--resume-cap", &value("--resume-cap")),
            "--breaker-fulls" => {
                args.breaker_fulls = parsed("--breaker-fulls", &value("--breaker-fulls"))
            }
            "--breaker-open-ms" => {
                args.breaker_open_ms = parsed("--breaker-open-ms", &value("--breaker-open-ms"))
            }
            "--breaker-retry-ms" => {
                args.breaker_retry_ms = parsed("--breaker-retry-ms", &value("--breaker-retry-ms"))
            }
            "--flight-cap" => args.flight_cap = parsed("--flight-cap", &value("--flight-cap")),
            "--no-recorder" => args.recorder = false,
            "--journal-dir" => args.journal_dir = Some(value("--journal-dir")),
            "--no-fsync" => args.fsync = false,
            "--deterministic-tokens" => args.deterministic_tokens = true,
            "--crash-after-appends" => {
                args.crash_after_appends = Some(parsed(
                    "--crash-after-appends",
                    &value("--crash-after-appends"),
                ))
            }
            "--registry-budget-bytes" => {
                args.registry_budget_bytes =
                    parsed("--registry-budget-bytes", &value("--registry-budget-bytes"))
            }
            "--target-stock" => {
                args.target_stock = parsed("--target-stock", &value("--target-stock"))
            }
            "--tile-rows" => args.tile_rows = parsed("--tile-rows", &value("--tile-rows")),
            "--prefill" => args.prefill = true,
            other => fatal(&format!("unknown flag: {other}")),
        }
    }
    args
}

/// SIGTERM/SIGINT flag, set by the (async-signal-safe) handler and polled
/// by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: a relaxed store.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGTERM and SIGINT via the raw libc `signal`
/// symbol, so the daemon needs no signal-handling crate. The library stays
/// `forbid(unsafe_code)`; this binary is its own crate root and confines
/// the unsafety to this one registration.
fn install_signal_handlers() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

fn main() {
    let args = parse_args();
    let config = AcceleratorConfig::new(args.width);
    let weights = demo_weights(args.rows, args.cols, args.width, args.seed);
    let mut serve_config = ServeConfig::new(config, weights, args.seed);
    serve_config.workers = args.workers;
    serve_config.queue_capacity = args.queue;
    serve_config.idle_timeout = (args.idle_ms > 0).then(|| Duration::from_millis(args.idle_ms));
    serve_config.step_timeout = (args.step_ms > 0).then(|| Duration::from_millis(args.step_ms));
    serve_config.resume_capacity = args.resume_cap;
    serve_config.breaker.queue_full_trip = args.breaker_fulls;
    serve_config.breaker.open_for = Duration::from_millis(args.breaker_open_ms.max(1));
    serve_config.breaker.retry_after_ms = args.breaker_retry_ms;
    serve_config.flight_capacity = args.flight_cap;
    serve_config.deterministic_resume_tokens = args.deterministic_tokens;
    serve_config.registry_budget_bytes =
        (args.registry_budget_bytes > 0).then_some(args.registry_budget_bytes);
    serve_config.registry_target_stock = args.target_stock;
    serve_config.registry_tile_rows = args.tile_rows.max(1);
    serve_config.prefill = args.prefill;
    if args.recorder {
        serve_config.recorder = Some(Arc::new(Recorder::new()));
    }
    if let Some(dir) = &args.journal_dir {
        let mut journal = JournalConfig::new(dir);
        journal.fsync = args.fsync;
        journal.max_live = args.resume_cap;
        journal.abort_after_appends = args.crash_after_appends;
        serve_config.journal = Some(journal);
    }
    install_signal_handlers();
    let service = GcService::start(serve_config);
    let replay = service.journal_replay().clone();
    let handle = match listen_tcp(service, &args.addr) {
        Ok(handle) => handle,
        Err(e) => fatal(&format!("cannot bind {}: {e}", args.addr)),
    };
    println!(
        "serving b={} model {}x{} seed={} on {} ({} workers, queue {}, \
         flight-cap {}, recorder {})",
        args.width,
        args.rows,
        args.cols,
        args.seed,
        handle.addr(),
        args.workers,
        args.queue,
        args.flight_cap,
        if args.recorder { "on" } else { "off" },
    );
    if args.journal_dir.is_some() {
        println!(
            "journal replayed {} records into {} session checkpoints and \
             {} prepared models (quarantined {}, torn tail {})",
            replay.records_applied,
            replay.sessions,
            replay.models,
            replay.quarantined.len(),
            replay.truncated_tail,
        );
    }
    println!(
        "registry: budget {} target-stock {} tile-rows {} prefill {}",
        if args.registry_budget_bytes > 0 {
            format!("{} bytes", args.registry_budget_bytes)
        } else {
            "unbounded".to_string()
        },
        args.target_stock,
        args.tile_rows.max(1),
        if args.prefill { "on" } else { "off" },
    );
    loop {
        if SHUTDOWN.load(Ordering::Relaxed) {
            // Graceful drain: stop accepting, reject new handshakes, let
            // in-flight sessions finish or checkpoint, flush the journal.
            println!("signal received, draining");
            let stats = handle.shutdown();
            println!(
                "drained: {} sessions served, {} jobs completed, {} checkpoints",
                stats.sessions_started, stats.jobs_completed, stats.checkpoints_saved,
            );
            std::process::exit(0);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
