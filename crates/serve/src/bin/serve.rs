//! The serving daemon: bind a TCP address and serve GC-MAC sessions.
//!
//! ```text
//! serve [--addr 127.0.0.1:7700] [--width 8] [--rows 4] [--cols 4]
//!       [--seed 42] [--workers 2] [--queue 16] [--idle-ms 30000]
//!       [--step-ms 0] [--resume-cap 64] [--breaker-fulls 0]
//!       [--breaker-open-ms 100] [--breaker-retry-ms 50]
//! ```
//!
//! The model is the deterministic demo matrix; `loadgen` regenerates it
//! from the same `(rows, cols, width, seed)` to verify every result.
//!
//! Resilience knobs: `--step-ms` bounds each protocol step mid-job (a
//! wedged peer is reaped and its job checkpointed for RESUME),
//! `--resume-cap` sizes the checkpoint registry, and the `--breaker-*`
//! flags tune the load-shedding breaker (`--breaker-fulls 0` disables
//! pressure tripping).

use std::time::Duration;

use max_serve::{demo_weights, listen_tcp, GcService, ServeConfig};
use maxelerator::AcceleratorConfig;

struct Args {
    addr: String,
    width: usize,
    rows: usize,
    cols: usize,
    seed: u64,
    workers: usize,
    queue: usize,
    idle_ms: u64,
    step_ms: u64,
    resume_cap: usize,
    breaker_fulls: u32,
    breaker_open_ms: u64,
    breaker_retry_ms: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7700".to_string(),
        width: 8,
        rows: 4,
        cols: 4,
        seed: 42,
        workers: 2,
        queue: 16,
        idle_ms: 30_000,
        step_ms: 0,
        resume_cap: 64,
        breaker_fulls: 0,
        breaker_open_ms: 100,
        breaker_retry_ms: 50,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--width" => args.width = value("--width").parse().expect("--width"),
            "--rows" => args.rows = value("--rows").parse().expect("--rows"),
            "--cols" => args.cols = value("--cols").parse().expect("--cols"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed"),
            "--workers" => args.workers = value("--workers").parse().expect("--workers"),
            "--queue" => args.queue = value("--queue").parse().expect("--queue"),
            "--idle-ms" => args.idle_ms = value("--idle-ms").parse().expect("--idle-ms"),
            "--step-ms" => args.step_ms = value("--step-ms").parse().expect("--step-ms"),
            "--resume-cap" => {
                args.resume_cap = value("--resume-cap").parse().expect("--resume-cap")
            }
            "--breaker-fulls" => {
                args.breaker_fulls = value("--breaker-fulls").parse().expect("--breaker-fulls")
            }
            "--breaker-open-ms" => {
                args.breaker_open_ms = value("--breaker-open-ms")
                    .parse()
                    .expect("--breaker-open-ms")
            }
            "--breaker-retry-ms" => {
                args.breaker_retry_ms = value("--breaker-retry-ms")
                    .parse()
                    .expect("--breaker-retry-ms")
            }
            other => panic!("unknown flag: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let config = AcceleratorConfig::new(args.width);
    let weights = demo_weights(args.rows, args.cols, args.width, args.seed);
    let mut serve_config = ServeConfig::new(config, weights, args.seed);
    serve_config.workers = args.workers;
    serve_config.queue_capacity = args.queue;
    serve_config.idle_timeout = (args.idle_ms > 0).then(|| Duration::from_millis(args.idle_ms));
    serve_config.step_timeout = (args.step_ms > 0).then(|| Duration::from_millis(args.step_ms));
    serve_config.resume_capacity = args.resume_cap;
    serve_config.breaker.queue_full_trip = args.breaker_fulls;
    serve_config.breaker.open_for = Duration::from_millis(args.breaker_open_ms.max(1));
    serve_config.breaker.retry_after_ms = args.breaker_retry_ms;
    let service = GcService::start(serve_config);
    let handle = listen_tcp(service, &args.addr).expect("bind listener");
    println!(
        "serving b={} model {}x{} seed={} on {} ({} workers, queue {})",
        args.width,
        args.rows,
        args.cols,
        args.seed,
        handle.addr(),
        args.workers,
        args.queue,
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
