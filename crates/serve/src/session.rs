//! Per-session protocol loop: handshake or resume, job dispatch,
//! heartbeats, round checkpoints, idle reaping.
//!
//! One session = one client connection = one thread (blocking transports).
//! The loop owns the transport and the session's OT sender state; garbling
//! happens elsewhere, on the unit pool, so a slow client streaming rounds
//! never occupies a garbling unit.
//!
//! A connection opens with either HELLO (fresh session) or RESUME
//! (reconnect into an interrupted job, validated against the
//! [`ResumeRegistry`](crate::resume::ResumeRegistry)). During the
//! lock-step job exchange the transport runs under the per-step deadline;
//! between jobs it falls back to the idle timeout, and PING/PONG
//! heartbeats keep an intentionally quiet session alive.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use max_crypto::TranscriptDigest;
use max_gc::Transport;
use max_ot::iknp::{self, OtExtSender};
use max_registry::{Acquired, PreparedStream, RegisterError};
use max_telemetry::{FlightRecorder, TraceContext};
use maxelerator::remote::{
    derive_seed, materialize_job, recv_control, send_control, stream_materialized_job_from,
    ControlMsg, MaterializedJob, PROTOCOL_VERSION, REJECT_DRAINING, REJECT_MODEL, REJECT_OVERLOAD,
    REJECT_RESUME, REJECT_VERSION, REJECT_WIDTH, STREAM_DIGEST_MISMATCH,
};
use maxelerator::AcceleratorError;

use crate::resume::SessionCheckpoint;
use crate::service::ServiceShared;

/// Largest matmul a single job request may ask for (columns).
pub const MAX_JOB_COLUMNS: u32 = 64;

/// Draws an unguessable per-session resume token from OS entropy.
///
/// Deliberately *not* derived from the seed chain: [`derive_seed`] is an
/// invertible bijection and `ot_seed` (also seed-derived) is published in
/// ACCEPT, so a seed-derived token would let any client invert its own
/// `ot_seed` back to `base_seed` and forge every other session's token.
fn fresh_resume_token() -> u64 {
    use std::io::Read;
    let mut buf = [0u8; 8];
    match std::fs::File::open("/dev/urandom").and_then(|mut f| f.read_exact(&mut buf)) {
        Ok(()) => u64::from_le_bytes(buf),
        Err(_) => {
            // Portable fallback: `RandomState`'s SipHash keys are seeded
            // from OS entropy, and its output never appears on the wire.
            use std::hash::{BuildHasher, Hasher};
            let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
            hasher.write_u64(0x7e57);
            hasher.finish()
        }
    }
}

/// How one session ended, with its tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Server-assigned session id (the *resumed* id for reconnects).
    pub session_id: u64,
    /// Jobs garbled and streamed to completion.
    pub jobs_completed: u64,
    /// Jobs turned away with BUSY.
    pub busy_rejections: u64,
    /// Jobs continued from a round checkpoint on this connection.
    pub jobs_resumed: u64,
    /// Model jobs served from a warm pre-garbled stream on this connection
    /// (no garbling on the online path).
    pub jobs_prepared: u64,
    /// Round checkpoints deposited when this connection died mid-job.
    pub checkpoints_saved: u64,
    /// The session ended because the idle timeout fired.
    pub idle_reaped: bool,
    /// The handshake was refused (draining / version / width / overload /
    /// unknown resume).
    pub rejected: bool,
    /// Trace id the client put in its HELLO/RESUME (0 = untraced); tags
    /// the flight-recorder dump of an error-ending session.
    pub trace_id: u128,
}

/// Identity and seed material of a live session, common to the fresh and
/// resumed entry paths, plus the session's flight ring (shared with the
/// transport wrapper).
struct SessionCtx<'a> {
    session_id: u64,
    session_seed: u64,
    resume_token: u64,
    next_job: u64,
    trace: TraceContext,
    flight: Option<&'a FlightRecorder>,
}

/// Records an instantaneous server-side trace event when the service has a
/// recorder attached and the session is traced.
fn trace_instant(shared: &ServiceShared, trace: TraceContext, name: &str) {
    if trace.is_traced() {
        if let Some(rec) = &shared.recorder {
            rec.record_trace_instant(trace, name);
        }
    }
}

/// Identity of one streamed job: what a [`SessionCheckpoint`] must record
/// to rebuild it after a disconnect.
struct JobRun {
    job_id: u64,
    columns: u32,
    job_seed: u64,
    /// Prepared model the job ran against (`None` = session default
    /// matrix); recorded in checkpoints so a RESUME re-garbles from the
    /// registry's weights.
    model_id: Option<u64>,
    start_element: usize,
    /// Fill-time digest of a prepared stream, re-verified (pipelined
    /// behind READY) before any material frame leaves; `None` for
    /// pool-garbled and resumed jobs, whose material was never cached.
    expected_digest: Option<[u8; 16]>,
}

/// Builds the checkpoint covering the current snapshot window — the value
/// both the in-memory registry (on error) and the durable journal (every
/// boundary) persist.
fn window_checkpoint(
    ctx: &SessionCtx<'_>,
    run: &JobRun,
    snapshots: &VecDeque<(usize, OtExtSender, TranscriptDigest)>,
) -> SessionCheckpoint {
    SessionCheckpoint {
        session_id: ctx.session_id,
        resume_token: ctx.resume_token,
        session_seed: ctx.session_seed,
        next_job: run.job_id + 1,
        job_id: run.job_id,
        columns: run.columns,
        job_seed: run.job_seed,
        model_id: run.model_id,
        snapshots: snapshots.iter().cloned().collect(),
    }
}

/// Journals the current window, if a journal is configured. A failed
/// append degrades durability, not availability: it is counted and flight-
/// logged, and the session keeps streaming from memory.
fn journal_window(
    shared: &ServiceShared,
    ctx: &SessionCtx<'_>,
    run: &JobRun,
    snapshots: &VecDeque<(usize, OtExtSender, TranscriptDigest)>,
) {
    let Some(journal) = &shared.journal else {
        return;
    };
    if let Err(err) = journal.append_checkpoint(&window_checkpoint(ctx, run, snapshots)) {
        max_telemetry::counter_add("serve.journal.append_errors", 1);
        if let Some(flight) = ctx.flight {
            flight.log("journal.error", format!("{err}"), 0);
        }
    }
}

/// Appends a journal tombstone for `session_id` after its in-flight work
/// stopped needing recovery (job done, clean BYE, or checkpoint evicted).
fn journal_remove(shared: &ServiceShared, session_id: u64) {
    if let Some(journal) = &shared.journal {
        if journal.append_remove(session_id).is_err() {
            max_telemetry::counter_add("serve.journal.append_errors", 1);
        }
    }
}

/// Streams one job under the per-step deadline, snapshotting the OT sender
/// at each element boundary; every boundary is journaled (durable) and on
/// failure the final window is deposited in the in-memory registry,
/// covering the client's two possible rollback points.
#[allow(clippy::too_many_arguments)]
fn stream_job_checkpointed<T: Transport>(
    shared: &ServiceShared,
    summary: &mut SessionSummary,
    transport: &mut T,
    ctx: &SessionCtx<'_>,
    job: &MaterializedJob,
    ot_sender: &mut OtExtSender,
    run: &JobRun,
    mut digest: TranscriptDigest,
) -> Result<(), AcceleratorError> {
    let _stream_span = shared
        .recorder
        .as_ref()
        .filter(|_| ctx.trace.is_traced())
        .map(|rec| rec.trace_span(ctx.trace, "server/stream"));
    let mut snapshots: VecDeque<(usize, OtExtSender, TranscriptDigest)> =
        VecDeque::with_capacity(3);
    snapshots.push_back((run.start_element, ot_sender.clone(), digest.clone()));
    // The pre-job boundary goes to disk before READY: a crash anywhere in
    // the exchange now has a durable floor to resume from.
    journal_window(shared, ctx, run, &snapshots);
    if shared.step_timeout.is_some() {
        transport.set_idle_timeout(shared.step_timeout);
    }
    let result = stream_materialized_job_from(
        transport,
        job,
        ot_sender,
        &mut digest,
        run.job_id,
        ctx.trace,
        run.start_element,
        run.expected_digest,
        |next, sender, boundary_digest| {
            snapshots.push_back((next, sender.clone(), boundary_digest.clone()));
            if snapshots.len() > 2 {
                snapshots.pop_front();
            }
            journal_window(shared, ctx, run, &snapshots);
        },
    );
    transport.set_idle_timeout(shared.idle_timeout);
    match result {
        Ok(_) => {
            // The job finished on this connection: a restart must not
            // resurrect (and a reconnect must not replay) it.
            journal_remove(shared, ctx.session_id);
            Ok(())
        }
        Err(err) => {
            if matches!(err, AcceleratorError::Integrity { .. }) {
                shared.integrity_rejects.fetch_add(1, Ordering::Relaxed);
                max_telemetry::counter_add("serve.integrity.rejects", 1);
                if let Some(flight) = ctx.flight {
                    flight.log("integrity.reject", format!("{err}"), run.job_id);
                }
                // A prepared stream that no longer matches its fill-time
                // digest is cache/disk rot, not a wire fault: count the
                // drop so operators can see material decaying in stock.
                if matches!(err, AcceleratorError::Integrity { what } if what == STREAM_DIGEST_MISMATCH)
                {
                    shared.registry.note_integrity_drop();
                }
            }
            let elements_kept = snapshots.back().map_or(0, |(next, _, _)| *next as u64);
            let evicted = shared.resume.save(window_checkpoint(ctx, run, &snapshots));
            summary.checkpoints_saved += 1;
            shared.checkpoints_saved.fetch_add(1, Ordering::Relaxed);
            max_telemetry::counter_add("serve.resume.checkpoints", 1);
            trace_instant(shared, ctx.trace, "server/checkpoint");
            if let Some(flight) = ctx.flight {
                flight.log(
                    "checkpoint.saved",
                    format!("job {}", run.job_id),
                    elements_kept,
                );
                if let Some(victim) = evicted {
                    flight.log("resume.evicted", format!("session {victim}"), victim);
                }
            }
            if let Some(victim) = evicted {
                // Keep disk and memory telling the same story: the evicted
                // session can no longer resume, live or after a restart.
                journal_remove(shared, victim);
            }
            Err(err)
        }
    }
}

/// Runs one session over `transport` until BYE, disconnect, idle timeout,
/// or a protocol violation.
///
/// Always returns the session's tallies — a session that dies mid-job is
/// exactly the one whose checkpoint/jobs counters matter — alongside how it
/// ended: `Ok` for clean closes (BYE, disconnect between jobs, idle
/// timeout, handshake rejection), the killing error otherwise.
pub(crate) fn run_session<T: Transport>(
    shared: &ServiceShared,
    mut transport: T,
    session_id: u64,
    flight: Option<Arc<FlightRecorder>>,
) -> (SessionSummary, Result<(), AcceleratorError>) {
    let mut summary = SessionSummary {
        session_id,
        ..SessionSummary::default()
    };
    let outcome = session_loop(
        shared,
        &mut transport,
        session_id,
        &mut summary,
        flight.as_deref(),
    );
    (summary, outcome)
}

fn session_loop<T: Transport>(
    shared: &ServiceShared,
    transport: &mut T,
    session_id: u64,
    summary: &mut SessionSummary,
    flight: Option<&FlightRecorder>,
) -> Result<(), AcceleratorError> {
    transport.set_idle_timeout(shared.idle_timeout);

    // METRICS is valid before the handshake (operators poll without
    // becoming a session), so keep answering until a real first frame.
    let first = loop {
        match recv_control(transport) {
            Ok(ControlMsg::MetricsRequest) => {
                send_control(
                    transport,
                    &ControlMsg::MetricsReply {
                        body: shared.metrics_json(),
                    },
                )?;
            }
            Ok(msg) => break msg,
            Err(AcceleratorError::Disconnected) => return Ok(()),
            Err(AcceleratorError::Transport(max_gc::channel::TransportError::TimedOut)) => {
                summary.idle_reaped = true;
                max_telemetry::counter_add("serve.sessions.idle_reaped", 1);
                if let Some(flight) = flight {
                    flight.log("deadline.reap", "handshake", 0);
                }
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    };

    let reject = |transport: &mut T,
                  summary: &mut SessionSummary,
                  code: u8,
                  detail: u32|
     -> Result<(), AcceleratorError> {
        summary.rejected = true;
        send_control(transport, &ControlMsg::Reject { code, detail })
    };

    let (mut ctx, mut ot_sender) = match first {
        ControlMsg::Hello {
            version,
            bit_width,
            trace,
        } => {
            summary.trace_id = trace.trace_id;
            if shared.is_draining() {
                reject(transport, summary, REJECT_DRAINING, 0)?;
                return Ok(());
            }
            if shared.breaker.should_shed() {
                if let Some(flight) = flight {
                    flight.log(
                        "breaker.shed",
                        "handshake",
                        u64::from(shared.breaker.config().retry_after_ms),
                    );
                }
                reject(
                    transport,
                    summary,
                    REJECT_OVERLOAD,
                    shared.breaker.config().retry_after_ms,
                )?;
                return Ok(());
            }
            if version != PROTOCOL_VERSION {
                reject(
                    transport,
                    summary,
                    REJECT_VERSION,
                    u32::from(PROTOCOL_VERSION),
                )?;
                return Ok(());
            }
            if bit_width as usize != shared.config.bit_width {
                reject(
                    transport,
                    summary,
                    REJECT_WIDTH,
                    shared.config.bit_width as u32,
                )?;
                return Ok(());
            }
            let session_seed = derive_seed(shared.base_seed, session_id);
            let ot_seed = derive_seed(session_seed, 0x07);
            let resume_token = if shared.deterministic_resume_tokens {
                // Test-only reproducibility escape hatch — forgeable; see
                // `ServeConfig::deterministic_resume_tokens`.
                derive_seed(session_seed, 0x7e57)
            } else {
                fresh_resume_token()
            };
            send_control(
                transport,
                &ControlMsg::Accept {
                    session_id,
                    ot_seed,
                    resume_token,
                    rows: shared.weights.len() as u32,
                    cols: shared.weights.first().map_or(0, Vec::len) as u32,
                    bit_width: shared.config.bit_width as u32,
                    acc_width: shared.config.acc_width as u32,
                    signed: shared.config.signed,
                    freq_mhz_bits: shared.config.freq_mhz.to_bits(),
                },
            )?;
            let (ot_sender, _client_half) = iknp::setup_pair(ot_seed);
            trace_instant(shared, trace, "server/handshake");
            (
                SessionCtx {
                    session_id,
                    session_seed,
                    resume_token,
                    next_job: 0,
                    trace,
                    flight,
                },
                ot_sender,
            )
        }
        ControlMsg::Resume {
            session_id: resumed_id,
            resume_token,
            job_id,
            columns,
            elements_done,
            trace,
        } => {
            summary.trace_id = trace.trace_id;
            // Resumes finish work already admitted: allowed while draining
            // and while the breaker sheds new load.
            let checkpoint = shared.resume.lookup(resumed_id);
            let valid = checkpoint.as_ref().is_some_and(|cp| {
                cp.resume_token == resume_token
                    && cp.job_id == job_id
                    && cp.columns == columns
                    && cp.snapshot_at(elements_done as usize).is_some()
            });
            let Some(checkpoint) = checkpoint.filter(|_| valid) else {
                reject(transport, summary, REJECT_RESUME, 0)?;
                return Ok(());
            };
            summary.session_id = resumed_id;
            // A model job resumes by re-garbling from the registry's
            // weights with the checkpoint's seed (bit-identical to the
            // consumed stream). If the model was evicted since, the
            // checkpoint is unservable — same refusal as unknown state.
            let model_weights = match checkpoint.model_id {
                None => None,
                Some(model_id) => match shared.registry.weights(model_id) {
                    Some(weights) => Some(weights),
                    None => {
                        max_telemetry::counter_add("serve.resume.model_evicted", 1);
                        reject(transport, summary, REJECT_RESUME, 0)?;
                        return Ok(());
                    }
                },
            };
            let request = crate::scheduler::JobRequest {
                session_id: resumed_id,
                job_id,
                columns,
                seed: checkpoint.job_seed,
                weights: model_weights,
                trace,
            };
            let result_rx = match shared.pool.submit(request) {
                Ok(rx) => rx,
                Err(full) => {
                    // The checkpoint stays put; the client backs off and
                    // re-sends RESUME on its next connection.
                    summary.busy_rejections += 1;
                    shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    send_control(
                        transport,
                        &ControlMsg::Busy {
                            retry_after_ms: shared.retry_after_ms,
                            queue_depth: full.queue_depth as u32,
                        },
                    )?;
                    return Ok(());
                }
            };
            let start_element = elements_done as usize;
            let Some((sender, digest)) = checkpoint
                .snapshot_at(start_element)
                .map(|(sender, digest)| (sender.clone(), digest.clone()))
            else {
                // Unreachable given `valid`, but never panic on peer input.
                reject(transport, summary, REJECT_RESUME, 0)?;
                return Ok(());
            };
            let mut ot_sender = sender;
            let job =
                materialize_job(&result_rx.recv().map_err(|_| AcceleratorError::Protocol {
                    what: "unit pool shut down mid-job",
                })??);
            let ctx = SessionCtx {
                session_id: resumed_id,
                session_seed: checkpoint.session_seed,
                resume_token: checkpoint.resume_token,
                next_job: checkpoint.next_job,
                trace,
                flight,
            };
            trace_instant(shared, trace, "server/resume_restore");
            if let Some(flight) = flight {
                flight.log(
                    "resume.restored",
                    format!("job {job_id}"),
                    u64::from(elements_done),
                );
            }
            stream_job_checkpointed(
                shared,
                summary,
                transport,
                &ctx,
                &job,
                &mut ot_sender,
                &JobRun {
                    job_id,
                    columns,
                    job_seed: checkpoint.job_seed,
                    model_id: checkpoint.model_id,
                    start_element,
                    expected_digest: None,
                },
                digest,
            )?;
            shared.resume.remove(resumed_id);
            summary.jobs_completed += 1;
            summary.jobs_resumed += 1;
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            shared.jobs_resumed.fetch_add(1, Ordering::Relaxed);
            max_telemetry::counter_add("serve.jobs.resumed", 1);
            max_telemetry::counter_add("serve.jobs.completed", 1);
            (ctx, ot_sender)
        }
        _ => {
            return Err(AcceleratorError::Protocol {
                what: "expected HELLO or RESUME",
            })
        }
    };

    loop {
        match recv_control(transport) {
            Ok(ControlMsg::JobRequest { columns, model_id }) => {
                if columns == 0 || columns > MAX_JOB_COLUMNS {
                    return Err(AcceleratorError::Protocol {
                        what: "JOB column count out of range",
                    });
                }
                /// How this job will be served: a warm pre-garbled stream
                /// replayed on the session thread, or a unit-pool garble.
                enum Plan {
                    Prepared(Box<PreparedStream>),
                    Pool {
                        weights: Option<Arc<Vec<Vec<i64>>>>,
                        seed_override: Option<u64>,
                    },
                }
                let plan = match model_id {
                    None => Plan::Pool {
                        weights: None,
                        seed_override: None,
                    },
                    Some(id) => match shared.registry.acquire(id, columns) {
                        None => {
                            // Unknown model is a per-job refusal, not a
                            // session error: the client may PUT and retry.
                            max_telemetry::counter_add("serve.jobs.model_unknown", 1);
                            if let Some(flight) = flight {
                                flight.log("model.unknown", format!("model {id}"), id);
                            }
                            send_control(
                                transport,
                                &ControlMsg::Reject {
                                    code: REJECT_MODEL,
                                    detail: 0,
                                },
                            )?;
                            continue;
                        }
                        Some(Acquired::Prepared(stream)) => Plan::Prepared(stream),
                        Some(Acquired::Starved(ticket)) => {
                            // Stock exhausted (or a shape with no prepared
                            // form): garble inline from the ticket's fresh
                            // generation. Counted, never an error.
                            if let Some(flight) = flight {
                                flight.log(
                                    "model.starved",
                                    format!("model {id}"),
                                    ticket.generation,
                                );
                            }
                            Plan::Pool {
                                weights: Some(ticket.weights),
                                seed_override: Some(ticket.seed),
                            }
                        }
                    },
                };
                match plan {
                    Plan::Prepared(stream) => {
                        // The warm path never touches the breaker or the
                        // pool: the online phase is OT plus frame replay,
                        // which is exactly the capacity the breaker is NOT
                        // guarding.
                        let job_id = ctx.next_job;
                        ctx.next_job += 1;
                        summary.jobs_prepared += 1;
                        shared.jobs_prepared.fetch_add(1, Ordering::Relaxed);
                        max_telemetry::counter_add("serve.jobs.prepared", 1);
                        trace_instant(shared, ctx.trace, "server/prepared_serve");
                        if let Some(flight) = flight {
                            flight.log(
                                "model.prepared",
                                format!("model {}", stream.model_id),
                                stream.generation,
                            );
                        }
                        stream_job_checkpointed(
                            shared,
                            summary,
                            transport,
                            &ctx,
                            &stream.job,
                            &mut ot_sender,
                            &JobRun {
                                job_id,
                                columns,
                                job_seed: stream.seed,
                                model_id: Some(stream.model_id),
                                start_element: 0,
                                expected_digest: Some(stream.digest),
                            },
                            TranscriptDigest::new(),
                        )?;
                        summary.jobs_completed += 1;
                        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
                        max_telemetry::counter_add("serve.jobs.completed", 1);
                    }
                    Plan::Pool {
                        weights,
                        seed_override,
                    } => {
                        if shared.breaker.should_shed() {
                            summary.busy_rejections += 1;
                            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                            if let Some(flight) = flight {
                                flight.log(
                                    "breaker.shed",
                                    "job",
                                    u64::from(shared.breaker.config().retry_after_ms),
                                );
                            }
                            send_control(
                                transport,
                                &ControlMsg::Busy {
                                    retry_after_ms: shared.breaker.config().retry_after_ms,
                                    queue_depth: shared.pool.depth() as u32,
                                },
                            )?;
                            continue;
                        }
                        let job_id = ctx.next_job;
                        let job_seed = seed_override
                            .unwrap_or_else(|| derive_seed(ctx.session_seed, 0x100 + job_id));
                        let request = crate::scheduler::JobRequest {
                            session_id: ctx.session_id,
                            job_id,
                            columns,
                            seed: job_seed,
                            weights,
                            trace: ctx.trace,
                        };
                        match shared.pool.submit(request) {
                            Ok(result_rx) => {
                                shared.breaker.note_ok();
                                ctx.next_job += 1;
                                let job = materialize_job(&result_rx.recv().map_err(|_| {
                                    AcceleratorError::Protocol {
                                        what: "unit pool shut down mid-job",
                                    }
                                })??);
                                stream_job_checkpointed(
                                    shared,
                                    summary,
                                    transport,
                                    &ctx,
                                    &job,
                                    &mut ot_sender,
                                    &JobRun {
                                        job_id,
                                        columns,
                                        job_seed,
                                        model_id,
                                        start_element: 0,
                                        expected_digest: None,
                                    },
                                    TranscriptDigest::new(),
                                )?;
                                summary.jobs_completed += 1;
                                shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
                                max_telemetry::counter_add("serve.jobs.completed", 1);
                            }
                            Err(full) => {
                                shared.breaker.note_queue_full();
                                summary.busy_rejections += 1;
                                shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                                send_control(
                                    transport,
                                    &ControlMsg::Busy {
                                        retry_after_ms: shared.retry_after_ms,
                                        queue_depth: full.queue_depth as u32,
                                    },
                                )?;
                            }
                        }
                    }
                }
            }
            Ok(ControlMsg::ModelPut {
                model_id,
                rows: _,
                cols,
                weights,
            }) => {
                // Reshape row-major; the decoder already enforced
                // `weights.len() == rows * cols` and the element cap.
                let matrix: Vec<Vec<i64>> = if cols == 0 {
                    Vec::new()
                } else {
                    weights.chunks(cols as usize).map(<[i64]>::to_vec).collect()
                };
                match shared.put_model(model_id, matrix) {
                    Ok(status) => {
                        max_telemetry::counter_add("serve.models.put", 1);
                        if let Some(flight) = flight {
                            flight.log("model.put", format!("model {model_id}"), model_id);
                        }
                        send_control(transport, &ControlMsg::ModelStat { status })?;
                    }
                    Err(err) => {
                        // A refused registration keeps the session alive:
                        // the detail tells the client what to fix.
                        let detail: u8 = match err {
                            RegisterError::EmptyModel => 1,
                            RegisterError::RaggedRow { .. } => 2,
                            RegisterError::TooLarge { .. } => 3,
                            RegisterError::ValueOutOfRange { .. } => 4,
                        };
                        max_telemetry::counter_add("serve.models.put_rejected", 1);
                        if let Some(flight) = flight {
                            flight.log("model.put_rejected", format!("{err}"), u64::from(detail));
                        }
                        send_control(
                            transport,
                            &ControlMsg::Reject {
                                code: REJECT_MODEL,
                                detail: u32::from(detail),
                            },
                        )?;
                    }
                }
            }
            Ok(ControlMsg::ModelInfo { model_id }) => match shared.registry.status(model_id) {
                Some(status) => send_control(transport, &ControlMsg::ModelStat { status })?,
                None => send_control(
                    transport,
                    &ControlMsg::Reject {
                        code: REJECT_MODEL,
                        detail: 0,
                    },
                )?,
            },
            Ok(ControlMsg::ModelEvict { model_id }) => match shared.evict_model(model_id) {
                Some(status) => {
                    max_telemetry::counter_add("serve.models.evicted", 1);
                    if let Some(flight) = flight {
                        flight.log("model.evicted", format!("model {model_id}"), model_id);
                    }
                    send_control(transport, &ControlMsg::ModelStat { status })?;
                }
                None => send_control(
                    transport,
                    &ControlMsg::Reject {
                        code: REJECT_MODEL,
                        detail: 0,
                    },
                )?,
            },
            Ok(ControlMsg::Ping { nonce }) => {
                send_control(transport, &ControlMsg::Pong { nonce })?;
                max_telemetry::counter_add("serve.heartbeats", 1);
            }
            Ok(ControlMsg::MetricsRequest) => {
                send_control(
                    transport,
                    &ControlMsg::MetricsReply {
                        body: shared.metrics_json(),
                    },
                )?;
            }
            Ok(ControlMsg::Bye) => {
                // A clean goodbye retires any stale checkpoint this session
                // id left behind on an earlier connection — in memory and
                // on disk.
                shared.resume.remove(ctx.session_id);
                journal_remove(shared, ctx.session_id);
                break;
            }
            Err(AcceleratorError::Disconnected) => break,
            Err(AcceleratorError::Transport(max_gc::channel::TransportError::TimedOut)) => {
                summary.idle_reaped = true;
                max_telemetry::counter_add("serve.sessions.idle_reaped", 1);
                if let Some(flight) = flight {
                    flight.log("deadline.reap", "idle", 0);
                }
                break;
            }
            Ok(_) => {
                return Err(AcceleratorError::Protocol {
                    what: "expected JOB, MODEL, PING, or BYE",
                })
            }
            Err(e) => return Err(e),
        }
    }
    max_telemetry::histogram_record("serve.session.jobs", summary.jobs_completed);
    Ok(())
}
