//! Per-session protocol loop: handshake, job dispatch, idle reaping.
//!
//! One session = one client connection = one thread (blocking transports).
//! The loop owns the transport and the session's OT sender state; garbling
//! happens elsewhere, on the unit pool, so a slow client streaming rounds
//! never occupies a garbling unit.

use max_gc::Transport;
use max_ot::iknp;
use maxelerator::remote::{
    derive_seed, recv_control, send_control, stream_matvec_job, ControlMsg, PROTOCOL_VERSION,
    REJECT_DRAINING, REJECT_VERSION, REJECT_WIDTH,
};
use maxelerator::AcceleratorError;

use crate::service::ServiceShared;

/// Largest matmul a single job request may ask for (columns).
pub const MAX_JOB_COLUMNS: u32 = 64;

/// How one session ended, with its tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Server-assigned session id.
    pub session_id: u64,
    /// Jobs garbled and streamed to completion.
    pub jobs_completed: u64,
    /// Jobs turned away with BUSY.
    pub busy_rejections: u64,
    /// The session ended because the idle timeout fired.
    pub idle_reaped: bool,
    /// The handshake was refused (draining / version / width).
    pub rejected: bool,
}

/// Runs one session over `transport` until BYE, disconnect, idle timeout,
/// or a protocol violation.
///
/// # Errors
///
/// Returns the error that killed the session; clean closes (BYE,
/// disconnect between jobs, idle timeout, handshake rejection) are `Ok`.
pub(crate) fn run_session<T: Transport>(
    shared: &ServiceShared,
    mut transport: T,
    session_id: u64,
) -> Result<SessionSummary, AcceleratorError> {
    let mut summary = SessionSummary {
        session_id,
        ..SessionSummary::default()
    };
    transport.set_idle_timeout(shared.idle_timeout);

    let (version, bit_width) = match recv_control(&mut transport) {
        Ok(ControlMsg::Hello { version, bit_width }) => (version, bit_width),
        Ok(_) => {
            return Err(AcceleratorError::Protocol {
                what: "expected HELLO",
            })
        }
        Err(AcceleratorError::Disconnected) => return Ok(summary),
        Err(AcceleratorError::Transport(max_gc::channel::TransportError::TimedOut)) => {
            summary.idle_reaped = true;
            max_telemetry::counter_add("serve.sessions.idle_reaped", 1);
            return Ok(summary);
        }
        Err(e) => return Err(e),
    };

    let reject = |transport: &mut T, code: u8, detail: u32| -> Result<(), AcceleratorError> {
        send_control(transport, &ControlMsg::Reject { code, detail })
    };
    if shared.is_draining() {
        reject(&mut transport, REJECT_DRAINING, 0)?;
        summary.rejected = true;
        return Ok(summary);
    }
    if version != PROTOCOL_VERSION {
        reject(&mut transport, REJECT_VERSION, u32::from(PROTOCOL_VERSION))?;
        summary.rejected = true;
        return Ok(summary);
    }
    if bit_width as usize != shared.config.bit_width {
        reject(&mut transport, REJECT_WIDTH, shared.config.bit_width as u32)?;
        summary.rejected = true;
        return Ok(summary);
    }

    let session_seed = derive_seed(shared.base_seed, session_id);
    let ot_seed = derive_seed(session_seed, 0x07);
    send_control(
        &mut transport,
        &ControlMsg::Accept {
            session_id,
            ot_seed,
            rows: shared.weights.len() as u32,
            cols: shared.weights.first().map_or(0, Vec::len) as u32,
            bit_width: shared.config.bit_width as u32,
            acc_width: shared.config.acc_width as u32,
            signed: shared.config.signed,
            freq_mhz_bits: shared.config.freq_mhz.to_bits(),
        },
    )?;
    let (mut ot_sender, _client_half) = iknp::setup_pair(ot_seed);

    let mut next_job = 0u64;
    loop {
        match recv_control(&mut transport) {
            Ok(ControlMsg::JobRequest { columns }) => {
                if columns == 0 || columns > MAX_JOB_COLUMNS {
                    return Err(AcceleratorError::Protocol {
                        what: "JOB column count out of range",
                    });
                }
                let job_id = next_job;
                let request = crate::scheduler::JobRequest {
                    session_id,
                    job_id,
                    columns,
                    seed: derive_seed(session_seed, 0x100 + job_id),
                };
                match shared.pool.submit(request) {
                    Ok(result_rx) => {
                        next_job += 1;
                        let job = result_rx.recv().map_err(|_| AcceleratorError::Protocol {
                            what: "unit pool shut down mid-job",
                        })??;
                        stream_matvec_job(&mut transport, &job, &mut ot_sender, job_id)?;
                        summary.jobs_completed += 1;
                        max_telemetry::counter_add("serve.jobs.completed", 1);
                    }
                    Err(full) => {
                        summary.busy_rejections += 1;
                        send_control(
                            &mut transport,
                            &ControlMsg::Busy {
                                retry_after_ms: shared.retry_after_ms,
                                queue_depth: full.queue_depth as u32,
                            },
                        )?;
                    }
                }
            }
            Ok(ControlMsg::Bye) | Err(AcceleratorError::Disconnected) => break,
            Err(AcceleratorError::Transport(max_gc::channel::TransportError::TimedOut)) => {
                summary.idle_reaped = true;
                max_telemetry::counter_add("serve.sessions.idle_reaped", 1);
                break;
            }
            Ok(_) => {
                return Err(AcceleratorError::Protocol {
                    what: "expected JOB or BYE",
                })
            }
            Err(e) => return Err(e),
        }
    }
    max_telemetry::histogram_record("serve.session.jobs", summary.jobs_completed);
    Ok(summary)
}
