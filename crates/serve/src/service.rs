//! The service: session manager + unit pool + transport listeners.
//!
//! [`GcService`] owns the model, the worker pool, every session thread,
//! the [`ResumeRegistry`] of round checkpoints, and the load-shedding
//! [`Breaker`]. Clients reach it two ways — [`GcService::connect`] returns
//! the client half of an in-memory [`Duplex`] wire, and [`listen_tcp`]
//! accepts real sockets — and both run the exact same session protocol.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use max_gc::channel::Duplex;
use max_gc::{FramedTcp, Transport};
use max_registry::{ModelRegistry, RegisterError, RegistryConfig, RegistryStats};
use max_rng::HealthMonitor;
use max_telemetry::report::JsonValue;
use max_telemetry::{FlightRecorder, Recorder};
use maxelerator::remote::ModelStatus;
use maxelerator::AcceleratorConfig;

use crate::breaker::{Breaker, BreakerConfig};
use crate::journal::{Journal, JournalConfig, ReplayReport};
use crate::resume::ResumeRegistry;
use crate::scheduler::{IdleFill, UnitPool};
use crate::session::run_session;
use crate::FlightTransport;

/// Error-session flight dumps retained by the service (oldest evicted).
const MAX_FLIGHT_DUMPS: usize = 16;

/// Everything needed to start a [`GcService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Fabric configuration every session negotiates against.
    pub config: AcceleratorConfig,
    /// Model matrix, row-major (must be non-empty and rectangular).
    pub weights: Vec<Vec<i64>>,
    /// Base seed; per-session and per-job seeds derive from it.
    pub base_seed: u64,
    /// Garbling units (worker threads).
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it, jobs get BUSY.
    pub queue_capacity: usize,
    /// Retry hint attached to BUSY rejections.
    pub retry_after_ms: u32,
    /// Reap sessions idle longer than this (transports that support
    /// timeouts — TCP — only; the in-memory wire is always attended).
    pub idle_timeout: Option<Duration>,
    /// Per-protocol-step deadline during a job's lock-step exchange: a
    /// client that stalls mid-job longer than this gets its connection
    /// reaped (and a checkpoint saved for RESUME). Falls back to
    /// `idle_timeout` when unset.
    pub step_timeout: Option<Duration>,
    /// Round checkpoints held for interrupted sessions (0 disables RESUME).
    pub resume_capacity: usize,
    /// Load-shedding breaker tuning.
    pub breaker: BreakerConfig,
    /// Start with the unit pool paused (deterministic backpressure tests).
    pub start_paused: bool,
    /// Derive resume tokens from the seed chain instead of OS entropy.
    ///
    /// **Test-only.** Deterministic tokens make ACCEPT reproducible across
    /// service instances (what the transcript-parity tests compare), but
    /// they are forgeable: `derive_seed` is an invertible bijection and
    /// `ot_seed` (also seed-derived) is published in ACCEPT, so any client
    /// could walk back to `base_seed` and mint every other session's
    /// token. Production services must leave this off.
    pub deterministic_resume_tokens: bool,
    /// Server-side [`Recorder`] for trace spans (`server/queue_wait`,
    /// `server/garble`, `server/stream`, checkpoint/handshake events) and
    /// the histograms behind the METRICS percentiles. `None` records
    /// nothing; the METRICS endpoint still serves counters.
    pub recorder: Option<Arc<Recorder>>,
    /// Events each per-session flight recorder retains (0 disables flight
    /// recording entirely).
    pub flight_capacity: usize,
    /// Durable checkpoint journal configuration. `None` (the default)
    /// serves memory-only: checkpoints survive dropped connections but not
    /// a dead process. With a journal, startup replays the directory into
    /// the resume registry — see the [`crate::journal`] module docs.
    pub journal: Option<JournalConfig>,
    /// Byte budget for the prepared-model registry's stocked streams
    /// (`None` = unbounded). Enforced with LRU whole-model eviction.
    pub registry_budget_bytes: Option<u64>,
    /// Warm single-use streams to keep per registered model.
    pub registry_target_stock: usize,
    /// Rows per tile during background stream generation.
    pub registry_tile_rows: usize,
    /// Synchronously fill every model's stock to target at startup (and
    /// after journal replay) instead of waiting for pool idle time.
    pub prefill: bool,
}

impl ServeConfig {
    /// Sensible defaults: 2 units, queue of 16, 10 ms retry hint, no
    /// timeouts, 64 resume checkpoints, breaker tripping only on explicit
    /// health alarms.
    pub fn new(config: AcceleratorConfig, weights: Vec<Vec<i64>>, base_seed: u64) -> ServeConfig {
        ServeConfig {
            config,
            weights,
            base_seed,
            workers: 2,
            queue_capacity: 16,
            retry_after_ms: 10,
            idle_timeout: None,
            step_timeout: None,
            resume_capacity: 64,
            breaker: BreakerConfig::default(),
            start_paused: false,
            deterministic_resume_tokens: false,
            recorder: None,
            flight_capacity: 64,
            journal: None,
            registry_budget_bytes: None,
            registry_target_stock: RegistryConfig::default().target_stock,
            registry_tile_rows: RegistryConfig::default().tile_rows,
            prefill: false,
        }
    }
}

/// Aggregate service counters, snapshotted by [`GcService::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions accepted (threads spawned).
    pub sessions_started: u64,
    /// Sessions that ended in a protocol/transport error.
    pub sessions_errored: u64,
    /// Jobs garbled and streamed to completion.
    pub jobs_completed: u64,
    /// Jobs turned away with BUSY.
    pub busy_rejections: u64,
    /// Jobs continued from a round checkpoint after a reconnect.
    pub jobs_resumed: u64,
    /// Model jobs served from a warm pre-garbled stream (OT-only online
    /// path — no garbling on the critical path).
    pub jobs_prepared: u64,
    /// Round checkpoints deposited by dying sessions.
    pub checkpoints_saved: u64,
    /// Jobs ended by a transcript-digest mismatch (the v6 integrity
    /// check): the stream was refused rather than risk a silently wrong
    /// plaintext, and the client restarts under its integrity budget.
    pub integrity_rejects: u64,
    /// Times the load-shedding breaker tripped open.
    pub breaker_trips: u64,
    /// Sessions/jobs turned away by an open breaker.
    pub shed: u64,
}

/// Shared state behind a [`GcService`] (one per service, `Arc`-shared with
/// every session thread).
pub(crate) struct ServiceShared {
    pub(crate) config: AcceleratorConfig,
    pub(crate) weights: Arc<Vec<Vec<i64>>>,
    pub(crate) base_seed: u64,
    pub(crate) pool: UnitPool,
    pub(crate) retry_after_ms: u32,
    pub(crate) idle_timeout: Option<Duration>,
    pub(crate) step_timeout: Option<Duration>,
    pub(crate) resume: ResumeRegistry,
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) journal: Option<Arc<Journal>>,
    /// What journal replay salvaged at boot (empty default when no journal).
    replay: ReplayReport,
    pub(crate) breaker: Breaker,
    pub(crate) deterministic_resume_tokens: bool,
    pub(crate) recorder: Option<Arc<Recorder>>,
    flight_capacity: usize,
    flight_dumps: Mutex<Vec<String>>,
    draining: AtomicBool,
    next_session: AtomicU64,
    sessions_started: AtomicU64,
    sessions_errored: AtomicU64,
    pub(crate) jobs_completed: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    pub(crate) jobs_resumed: AtomicU64,
    pub(crate) jobs_prepared: AtomicU64,
    pub(crate) checkpoints_saved: AtomicU64,
    pub(crate) integrity_rejects: AtomicU64,
}

impl ServiceShared {
    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Registers (or replaces) a prepared model and journals it so a
    /// restart re-registers it before any client reconnects. Journal IO
    /// failures degrade durability, not serving.
    pub(crate) fn put_model(
        &self,
        model_id: u64,
        weights: Vec<Vec<i64>>,
    ) -> Result<ModelStatus, RegisterError> {
        let (status, _replaced) = self.registry.register(model_id, weights)?;
        if let Some(journal) = &self.journal {
            if let Some(weights) = self.registry.weights(model_id) {
                let _ = journal.append_model_put(model_id, &weights);
            }
        }
        Ok(status)
    }

    /// Explicitly evicts a model, journaling the tombstone. `None` if the
    /// id is unknown.
    pub(crate) fn evict_model(&self, model_id: u64) -> Option<ModelStatus> {
        let (status, _eviction) = self.registry.evict(model_id)?;
        if let Some(journal) = &self.journal {
            let _ = journal.append_model_remove(model_id);
        }
        Some(status)
    }

    /// Renders the live METRICS body: schema, serving counters, queue and
    /// breaker gauges, and p50/p95/p99 over every recorder histogram.
    /// Bounded by construction — traces and timelines are deliberately not
    /// included, so the reply stays far under the protocol's 1 MiB cap.
    pub(crate) fn metrics_json(&self) -> String {
        let mut stats = JsonValue::object();
        stats
            .push(
                "sessions_started",
                JsonValue::UInt(self.sessions_started.load(Ordering::Relaxed)),
            )
            .push(
                "sessions_errored",
                JsonValue::UInt(self.sessions_errored.load(Ordering::Relaxed)),
            )
            .push(
                "jobs_completed",
                JsonValue::UInt(self.jobs_completed.load(Ordering::Relaxed)),
            )
            .push(
                "busy_rejections",
                JsonValue::UInt(self.busy_rejections.load(Ordering::Relaxed)),
            )
            .push(
                "jobs_resumed",
                JsonValue::UInt(self.jobs_resumed.load(Ordering::Relaxed)),
            )
            .push(
                "jobs_prepared",
                JsonValue::UInt(self.jobs_prepared.load(Ordering::Relaxed)),
            )
            .push(
                "checkpoints_saved",
                JsonValue::UInt(self.checkpoints_saved.load(Ordering::Relaxed)),
            )
            .push(
                "integrity_rejects",
                JsonValue::UInt(self.integrity_rejects.load(Ordering::Relaxed)),
            )
            .push("breaker_trips", JsonValue::UInt(self.breaker.trips()))
            .push("shed", JsonValue::UInt(self.breaker.sheds()));

        let mut gauges = JsonValue::object();
        gauges
            .push("queue_depth", JsonValue::UInt(self.pool.depth() as u64))
            .push("workers", JsonValue::UInt(self.pool.workers() as u64))
            .push(
                "resume_checkpoints",
                JsonValue::UInt(self.resume.len() as u64),
            )
            .push("breaker_open", JsonValue::Bool(self.breaker.is_open()))
            .push("draining", JsonValue::Bool(self.is_draining()));

        let journal = match &self.journal {
            Some(journal) => {
                let mut entry = JsonValue::object();
                entry
                    .push("appends", JsonValue::UInt(journal.appends()))
                    .push("live", JsonValue::UInt(journal.live_sessions() as u64))
                    .push("replayed", JsonValue::UInt(self.replay.records_applied))
                    .push(
                        "quarantined",
                        JsonValue::UInt(self.replay.quarantined.len() as u64),
                    )
                    .push(
                        "truncated_tail",
                        JsonValue::Bool(self.replay.truncated_tail),
                    );
                entry
            }
            None => JsonValue::Null,
        };

        let registry = {
            let snap: RegistryStats = self.registry.stats();
            let mut entry = JsonValue::object();
            entry
                .push("models", JsonValue::UInt(snap.models as u64))
                .push("streams_ready", JsonValue::UInt(snap.streams_ready as u64))
                .push("stock_bytes", JsonValue::UInt(snap.stock_bytes))
                .push(
                    "budget_bytes",
                    snap.budget_bytes.map_or(JsonValue::Null, JsonValue::UInt),
                )
                .push("served_prepared", JsonValue::UInt(snap.served_prepared))
                .push("served_fallback", JsonValue::UInt(snap.served_fallback))
                .push("streams_produced", JsonValue::UInt(snap.streams_produced))
                .push("streams_discarded", JsonValue::UInt(snap.streams_discarded))
                .push(
                    "streams_integrity_dropped",
                    JsonValue::UInt(snap.streams_integrity_dropped),
                )
                .push("streams_trimmed", JsonValue::UInt(snap.streams_trimmed))
                .push(
                    "evicted_budget",
                    JsonValue::UInt(snap.models_evicted_budget),
                )
                .push(
                    "evicted_explicit",
                    JsonValue::UInt(snap.models_evicted_explicit),
                )
                .push("replaced", JsonValue::UInt(snap.models_replaced))
                .push(
                    "fabric_cycles_offline",
                    JsonValue::UInt(snap.fabric_cycles_spent),
                );
            entry
        };

        let percentiles = match &self.recorder {
            Some(rec) => {
                let snapshot = rec.snapshot();
                let mut out = JsonValue::object();
                for hist in &snapshot.histograms {
                    let mut entry = JsonValue::object();
                    entry
                        .push("count", JsonValue::UInt(hist.count))
                        .push("p50", JsonValue::UInt(hist.percentile(50.0)))
                        .push("p95", JsonValue::UInt(hist.percentile(95.0)))
                        .push("p99", JsonValue::UInt(hist.percentile(99.0)))
                        .push("max", JsonValue::UInt(hist.max));
                    out.push(&hist.name, entry);
                }
                out
            }
            None => JsonValue::Null,
        };

        let mut root = JsonValue::object();
        root.push(
            "schema",
            JsonValue::Str("maxelerator-metrics-v1".to_string()),
        )
        .push("stats", stats)
        .push("gauges", gauges)
        .push("journal", journal)
        .push("registry", registry)
        .push("percentiles", percentiles);
        root.render()
    }

    fn keep_flight_dump(&self, dump: String) {
        let mut dumps = self
            .flight_dumps
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if dumps.len() >= MAX_FLIGHT_DUMPS {
            dumps.remove(0);
        }
        dumps.push(dump);
    }
}

/// One idle-time precompute step: advance the registry's most starved
/// model by one stream, journaling any budget-eviction tombstones it
/// caused. Returns whether the unit should immediately poll again (`false`
/// = nothing to do, or the cache is saturated at its budget and more
/// production would just ping-pong evictions).
fn fill_once(registry: &ModelRegistry, journal: Option<&Journal>) -> bool {
    match registry.fill_step() {
        None => false,
        Some(Ok(report)) => {
            for eviction in &report.evicted {
                if let Some(journal) = journal {
                    let _ = journal.append_model_remove(eviction.model_id);
                }
            }
            // A deposit that evicted or trimmed means the budget is the
            // binding constraint: stop producing until demand frees space.
            report.deposited && report.evicted.is_empty() && report.streams_trimmed == 0
        }
        Some(Err(_)) => {
            // Garbling failed (host-level accelerator misconfiguration for
            // this model). Back off rather than spin; the counter makes
            // the stall observable.
            max_telemetry::counter_add("serve.registry.fill_failed", 1);
            false
        }
    }
}

/// The multi-session GC-MAC service. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct GcService {
    shared: Arc<ServiceShared>,
    session_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for GcService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcService")
            .field("rows", &self.shared.weights.len())
            .field("workers", &self.shared.pool.workers())
            .field("queue_depth", &self.shared.pool.depth())
            .finish_non_exhaustive()
    }
}

impl GcService {
    /// Builds the unit pool and starts serving.
    ///
    /// # Panics
    ///
    /// Panics if the model is empty or ragged, or values exceed the
    /// configured bit-width (host configuration errors, not peer input).
    pub fn start(cfg: ServeConfig) -> GcService {
        assert!(!cfg.weights.is_empty(), "service needs a model");
        let cols = cfg.weights[0].len();
        assert!(cols > 0, "model matrix must have columns");
        for row in &cfg.weights {
            assert_eq!(row.len(), cols, "ragged model matrix");
        }
        let weights = Arc::new(cfg.weights);

        // Replay the durable journal (if configured) into the registries
        // before the first connection can race a RESUME against it. A
        // journal that cannot be *opened* is a host configuration error
        // (like a bad model) and fails loudly; damaged journal *content*
        // never does — it is quarantined inside `Journal::open`.
        let resume = ResumeRegistry::new(cfg.resume_capacity);
        let mut replay = ReplayReport::default();
        let mut first_session = 0u64;
        let journal = match cfg.journal {
            Some(journal_cfg) => {
                let (journal, report) = match Journal::open(journal_cfg) {
                    Ok(opened) => opened,
                    Err(err) => panic!("journal unusable: {err}"),
                };
                for checkpoint in journal.live_checkpoints() {
                    // Restart must hand out session ids above every
                    // replayed one, or a fresh session could silently
                    // displace a recovering session's checkpoint.
                    first_session = first_session.max(checkpoint.session_id + 1);
                    resume.save(checkpoint);
                }
                replay = report;
                Some(Arc::new(journal))
            }
            None => None,
        };

        let registry = Arc::new(ModelRegistry::new(
            cfg.config.clone(),
            RegistryConfig {
                budget_bytes: cfg.registry_budget_bytes,
                target_stock: cfg.registry_target_stock,
                tile_rows: cfg.registry_tile_rows,
            },
            cfg.base_seed,
        ));
        if let Some(journal) = &journal {
            for (model_id, model_weights) in journal.live_models() {
                // A replayed model that no longer validates (operand width
                // shrank across restarts) is dropped with a tombstone
                // rather than wedging boot.
                if registry.register(model_id, model_weights).is_err() {
                    let _ = journal.append_model_remove(model_id);
                    max_telemetry::counter_add("serve.registry.replay_rejected", 1);
                }
            }
        }

        let idle_fill: IdleFill = {
            let registry = Arc::clone(&registry);
            let journal = journal.clone();
            Arc::new(move || fill_once(&registry, journal.as_deref()))
        };
        let pool = UnitPool::new(
            cfg.config.clone(),
            Arc::clone(&weights),
            cfg.workers,
            cfg.queue_capacity,
            cfg.start_paused,
            cfg.recorder.clone(),
            Some(idle_fill),
        );
        if cfg.prefill {
            // Run the offline phase eagerly so the very first model job is
            // a warm serve. Stops at saturation or on garbling failure —
            // either way the idle-fill hook keeps the stocks topped up.
            while fill_once(&registry, journal.as_deref()) {}
        }

        GcService {
            shared: Arc::new(ServiceShared {
                config: cfg.config,
                weights,
                base_seed: cfg.base_seed,
                pool,
                retry_after_ms: cfg.retry_after_ms,
                idle_timeout: cfg.idle_timeout,
                step_timeout: cfg.step_timeout,
                resume,
                registry,
                journal,
                replay,
                breaker: Breaker::new(cfg.breaker),
                deterministic_resume_tokens: cfg.deterministic_resume_tokens,
                recorder: cfg.recorder,
                flight_capacity: cfg.flight_capacity,
                flight_dumps: Mutex::new(Vec::new()),
                draining: AtomicBool::new(false),
                next_session: AtomicU64::new(first_session),
                sessions_started: AtomicU64::new(0),
                sessions_errored: AtomicU64::new(0),
                jobs_completed: AtomicU64::new(0),
                busy_rejections: AtomicU64::new(0),
                jobs_resumed: AtomicU64::new(0),
                jobs_prepared: AtomicU64::new(0),
                checkpoints_saved: AtomicU64::new(0),
                integrity_rejects: AtomicU64::new(0),
            }),
            session_threads: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Spawns a session over any transport (the generic core of
    /// [`GcService::connect`] and the TCP accept loop). When the config's
    /// `flight_capacity` is nonzero the session gets a fresh per-session
    /// [`FlightRecorder`] wrapped around its transport.
    pub fn serve_transport<T: Transport + 'static>(&self, transport: T) {
        let flight = (self.shared.flight_capacity > 0)
            .then(|| Arc::new(FlightRecorder::new(self.shared.flight_capacity)));
        self.spawn_session(transport, flight);
    }

    /// Like [`GcService::serve_transport`], but attaches the given
    /// [`FlightRecorder`] instead of minting one — so a chaos harness can
    /// share one recorder between a fault-injecting transport wrapper and
    /// the session, and the error dump interleaves `fault.*` events with
    /// the frames around them.
    pub fn serve_transport_with_flight<T: Transport + 'static>(
        &self,
        transport: T,
        flight: Arc<FlightRecorder>,
    ) {
        self.spawn_session(transport, Some(flight));
    }

    fn spawn_session<T: Transport + 'static>(
        &self,
        transport: T,
        flight: Option<Arc<FlightRecorder>>,
    ) {
        let shared = Arc::clone(&self.shared);
        let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        shared.sessions_started.fetch_add(1, Ordering::Relaxed);
        max_telemetry::counter_add("serve.sessions.started", 1);
        let spawned = std::thread::Builder::new()
            .name(format!("gc-session-{session_id}"))
            .spawn(move || {
                let (summary, outcome) = match &flight {
                    Some(fl) => run_session(
                        &shared,
                        FlightTransport::new(transport, Arc::clone(fl)),
                        session_id,
                        Some(Arc::clone(fl)),
                    ),
                    None => run_session(&shared, transport, session_id, None),
                };
                // Job/checkpoint tallies land on the shared counters at
                // event time inside the session loop, so the METRICS frame
                // is live even for long-lived sessions; only the error
                // accounting happens here at teardown.
                if let Err(err) = &outcome {
                    // Hostile/broken peers are the session's problem, never
                    // the process's: account and move on.
                    shared.sessions_errored.fetch_add(1, Ordering::Relaxed);
                    max_telemetry::counter_add("serve.sessions.errored", 1);
                    if let Some(fl) = &flight {
                        // The dump's last events name what killed the
                        // session — injected fault, reaped deadline, or the
                        // protocol error itself.
                        fl.log("session.error", format!("{err:?}"), 0);
                        shared.keep_flight_dump(fl.dump_json(summary.trace_id).render());
                    }
                }
            });
        match spawned {
            Ok(handle) => self
                .session_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(handle),
            Err(_) => {
                // Thread exhaustion: drop the transport (the peer sees a
                // disconnect) rather than taking the process down.
                self.shared.sessions_errored.fetch_add(1, Ordering::Relaxed);
                max_telemetry::counter_add("serve.sessions.spawn_failed", 1);
            }
        }
    }

    /// Opens an in-memory session and returns the client endpoint, ready
    /// for [`maxelerator::RemoteClient::connect`].
    pub fn connect(&self) -> Duplex {
        let (server_end, client_end) = Duplex::pair();
        self.serve_transport(server_end);
        client_end
    }

    /// Accepts one TCP stream as a session.
    pub fn serve_stream(&self, stream: TcpStream) {
        self.serve_transport(FramedTcp::from_stream(stream));
    }

    /// Jobs currently queued on the unit pool.
    pub fn queue_depth(&self) -> usize {
        self.shared.pool.depth()
    }

    /// Rendered flight-recorder dumps of sessions that ended in an error
    /// (most recent last; at most 16 retained).
    pub fn flight_dumps(&self) -> Vec<String> {
        self.shared
            .flight_dumps
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The server-side recorder, when one was configured.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.shared.recorder.as_ref()
    }

    /// The live METRICS JSON body (same rendering the METRICS control
    /// frame serves).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics_json()
    }

    /// Round checkpoints currently held for interrupted sessions.
    pub fn resume_checkpoints(&self) -> usize {
        self.shared.resume.len()
    }

    /// The durable checkpoint journal, when one is configured.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.shared.journal.as_ref()
    }

    /// The prepared-model registry behind `MODEL_PUT`/`MODEL_INFO` frames.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Registers (or replaces) a prepared model locally — same path the
    /// wire's `MODEL_PUT` takes, including the journal record.
    ///
    /// # Errors
    ///
    /// [`RegisterError`] when the matrix is empty, ragged, oversized, or a
    /// weight exceeds the operand width.
    pub fn put_model(
        &self,
        model_id: u64,
        weights: Vec<Vec<i64>>,
    ) -> Result<ModelStatus, RegisterError> {
        self.shared.put_model(model_id, weights)
    }

    /// Evicts a prepared model (journaling the tombstone); `None` if the
    /// id is unknown.
    pub fn evict_model(&self, model_id: u64) -> Option<ModelStatus> {
        self.shared.evict_model(model_id)
    }

    /// Synchronously fills every model's stock to target (the offline
    /// phase run eagerly), journaling tombstones for any budget evictions.
    /// Returns the number of clean fill steps taken; stops at saturation
    /// or on a garbling failure (both observable via counters/stats).
    pub fn prefill_models(&self) -> usize {
        let mut steps = 0usize;
        while fill_once(&self.shared.registry, self.shared.journal.as_deref()) {
            steps += 1;
        }
        steps
    }

    /// What journal replay found at boot (all-zero when no journal).
    pub fn journal_replay(&self) -> &ReplayReport {
        &self.shared.replay
    }

    /// Releases a pool started with `start_paused`.
    pub fn resume_workers(&self) {
        self.shared.pool.resume();
    }

    /// Stops accepting new sessions (handshakes get REJECT: draining);
    /// existing sessions keep running, and RESUME is still honored.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// Whether [`GcService::drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// Opens the load-shedding breaker for its configured window: new
    /// sessions get `REJECT(overload)`, job requests get `BUSY`.
    pub fn trip_breaker(&self) {
        self.shared.breaker.trip();
    }

    /// Force-closes the breaker (operator override).
    pub fn reset_breaker(&self) {
        self.shared.breaker.reset();
    }

    /// Whether the breaker is currently shedding load.
    pub fn breaker_open(&self) -> bool {
        self.shared.breaker.is_open()
    }

    /// Trips the breaker if the RNG health monitor has raised any alarm —
    /// the serving-layer reaction to the paper's on-chip health checks.
    /// Returns whether it tripped.
    pub fn observe_health(&self, monitor: &HealthMonitor) -> bool {
        if monitor.alarmed() {
            self.shared.breaker.trip();
            return true;
        }
        false
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            sessions_started: self.shared.sessions_started.load(Ordering::Relaxed),
            sessions_errored: self.shared.sessions_errored.load(Ordering::Relaxed),
            jobs_completed: self.shared.jobs_completed.load(Ordering::Relaxed),
            busy_rejections: self.shared.busy_rejections.load(Ordering::Relaxed),
            jobs_resumed: self.shared.jobs_resumed.load(Ordering::Relaxed),
            jobs_prepared: self.shared.jobs_prepared.load(Ordering::Relaxed),
            checkpoints_saved: self.shared.checkpoints_saved.load(Ordering::Relaxed),
            integrity_rejects: self.shared.integrity_rejects.load(Ordering::Relaxed),
            breaker_trips: self.shared.breaker.trips(),
            shed: self.shared.breaker.sheds(),
        }
    }

    /// Graceful shutdown: drain, join every session thread, then drain and
    /// join the unit pool. Returns the final counters.
    pub fn shutdown(&self) -> ServeStats {
        self.drain();
        let handles = std::mem::take(
            &mut *self
                .session_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
        if let Some(journal) = &self.shared.journal {
            // Sessions are joined: no appends can race this final flush.
            let _ = journal.sync();
        }
        self.stats()
    }
}

/// A running TCP listener bound to a [`GcService`].
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    service: GcService,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener.
    pub fn service(&self) -> &GcService {
        &self.service
    }

    /// Stops accepting, drains the service, joins everything.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.service.shutdown()
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves every accepted stream as
/// a session of `service`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn listen_tcp<A: ToSocketAddrs>(service: GcService, addr: A) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_service = service.clone();
    let accept_thread = std::thread::Builder::new()
        .name("gc-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                match stream {
                    Ok(stream) => accept_service.serve_stream(stream),
                    Err(_) => continue,
                }
            }
        })?;
    Ok(ServeHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        service,
    })
}
