//! # max-serve
//!
//! The serving layer the paper's deployment story implies but never builds:
//! a cloud-side garbler that many evaluators connect to concurrently.
//!
//! ```text
//!  client (loadgen / RemoteClient)          server (serve / GcService)
//!  ───────────────────────────────          ─────────────────────────────
//!        Transport (Duplex | FramedTcp over loopback/real TCP)
//!                      │ handshake, jobs, OT, rounds
//!                      ▼
//!              session thread  ──── submit ───▶  FairQueue (bounded,
//!              (one per client)                  round-robin per session)
//!                      ▲                                │
//!                      │ GarbledJob                     ▼
//!                      └──────────────────────  UnitPool workers
//!                                                (modeled MAXelerator
//!                                                 fabric per job)
//! ```
//!
//! Everything is deterministic given the base seed: jobs carry derived
//! seeds, so the garbled transcript is bit-identical whichever unit runs
//! the job and whichever transport carries it — the property the e2e
//! parity tests pin down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod journal;
pub mod resume;
pub mod scheduler;
mod service;
mod session;

use bytes::Bytes;
use max_gc::channel::{ChannelStats, FrameKind, TransportError};
use max_gc::Transport;
use maxelerator::remote::derive_seed;

pub use breaker::{Breaker, BreakerConfig};
pub use journal::{Journal, JournalConfig, JournalError, ReplayReport};
pub use resume::{ResumeRegistry, SessionCheckpoint};
pub use scheduler::{IdleFill, JobRequest, JobResult, QueueFull, UnitPool};
pub use service::{listen_tcp, GcService, ServeConfig, ServeHandle, ServeStats};
pub use session::{SessionSummary, MAX_JOB_COLUMNS};

// The prepared-model registry the service embeds; re-exported so binaries
// and tests reach its types without naming the crate twice.
pub use max_registry::{
    garble_stream, stream_digest, Acquired, Eviction, EvictionKind, FallbackTicket, ModelRegistry,
    PreparedStream, RegisterError, RegistryConfig, RegistryStats,
};

use max_telemetry::FlightRecorder;
use std::sync::Arc;

/// A [`Transport`] that mirrors every frame crossing it into a
/// [`FlightRecorder`] as `frame.send` / `frame.recv` events (detail = frame
/// kind, value = payload bytes). The frames themselves pass through
/// untouched, so wrapping a session in one changes nothing on the wire —
/// the transcript-parity tests hold with or without it.
#[derive(Debug)]
pub struct FlightTransport<T: Transport> {
    inner: T,
    flight: Arc<FlightRecorder>,
}

impl<T: Transport> FlightTransport<T> {
    /// Wraps a transport; every frame is logged to `flight`.
    pub fn new(inner: T, flight: Arc<FlightRecorder>) -> FlightTransport<T> {
        FlightTransport { inner, flight }
    }

    /// The attached recorder.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for FlightTransport<T> {
    fn send_frame(&mut self, kind: FrameKind, frame: Bytes) -> Result<(), TransportError> {
        self.flight
            .log("frame.send", format!("{kind:?}"), frame.len() as u64);
        self.inner.send_frame(kind, frame)
    }

    fn recv_frame(&mut self) -> Result<Bytes, TransportError> {
        match self.inner.recv_frame() {
            Ok(frame) => {
                self.flight.log("frame.recv", "", frame.len() as u64);
                Ok(frame)
            }
            Err(err) => {
                self.flight.log("frame.recv.error", format!("{err:?}"), 0);
                Err(err)
            }
        }
    }

    fn sent_stats(&self) -> ChannelStats {
        self.inner.sent_stats()
    }

    fn received_stats(&self) -> ChannelStats {
        self.inner.received_stats()
    }

    fn set_idle_timeout(&mut self, timeout: Option<std::time::Duration>) -> bool {
        self.inner.set_idle_timeout(timeout)
    }
}

/// A [`Transport`] wrapper that records every frame in both directions —
/// the instrument behind the "TCP transcript == in-memory transcript"
/// parity tests and wire-level debugging.
#[derive(Debug)]
pub struct RecordingTransport<T: Transport> {
    inner: T,
    sent: Vec<(FrameKind, Bytes)>,
    received: Vec<Bytes>,
}

impl<T: Transport> RecordingTransport<T> {
    /// Wraps a transport.
    pub fn new(inner: T) -> RecordingTransport<T> {
        RecordingTransport {
            inner,
            sent: Vec::new(),
            received: Vec::new(),
        }
    }

    /// Every frame sent, in order, with its kind.
    pub fn sent_frames(&self) -> &[(FrameKind, Bytes)] {
        &self.sent
    }

    /// Every frame received, in order.
    pub fn received_frames(&self) -> &[Bytes] {
        &self.received
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn send_frame(&mut self, kind: FrameKind, frame: Bytes) -> Result<(), TransportError> {
        self.sent.push((kind, frame.clone()));
        self.inner.send_frame(kind, frame)
    }

    fn recv_frame(&mut self) -> Result<Bytes, TransportError> {
        let frame = self.inner.recv_frame()?;
        self.received.push(frame.clone());
        Ok(frame)
    }

    fn sent_stats(&self) -> ChannelStats {
        self.inner.sent_stats()
    }

    fn received_stats(&self) -> ChannelStats {
        self.inner.received_stats()
    }

    fn set_idle_timeout(&mut self, timeout: Option<std::time::Duration>) -> bool {
        self.inner.set_idle_timeout(timeout)
    }
}

fn demo_value(bit_width: usize, seed: u64, index: u64) -> i64 {
    let span = 1i64 << bit_width; // full signed range [-2^(b-1), 2^(b-1))
    let raw = derive_seed(seed, index) % span as u64;
    raw as i64 - (span / 2)
}

/// Deterministic demo model shared by `serve`, `loadgen`, benches, and
/// tests: both ends regenerate the same matrix from `(rows, cols,
/// bit_width, seed)`, so the load generator can verify every result
/// against plaintext.
pub fn demo_weights(rows: usize, cols: usize, bit_width: usize, seed: u64) -> Vec<Vec<i64>> {
    (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| demo_value(bit_width, seed, (r * cols + c) as u64))
                .collect()
        })
        .collect()
}

/// Deterministic demo client vector (see [`demo_weights`]).
pub fn demo_vector(cols: usize, bit_width: usize, seed: u64) -> Vec<i64> {
    (0..cols)
        .map(|c| demo_value(bit_width, seed ^ 0x005e_edc1_1e47, c as u64))
        .collect()
}

/// Plaintext reference `W·x` for verifying served results.
pub fn plain_matvec(weights: &[Vec<i64>], x: &[i64]) -> Vec<i64> {
    weights
        .iter()
        .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_data_is_deterministic_and_in_range() {
        let w1 = demo_weights(3, 4, 8, 42);
        let w2 = demo_weights(3, 4, 8, 42);
        assert_eq!(w1, w2);
        assert_ne!(w1, demo_weights(3, 4, 8, 43));
        for row in &w1 {
            for &v in row {
                assert!((-128..=127).contains(&v), "{v} out of i8 range");
            }
        }
        let x = demo_vector(4, 8, 42);
        assert_eq!(x.len(), 4);
        for &v in &x {
            assert!((-128..=127).contains(&v));
        }
    }

    #[test]
    fn recording_transport_captures_both_directions() {
        use max_gc::channel::Duplex;
        let (a, mut b) = Duplex::pair();
        let mut rec = RecordingTransport::new(a);
        rec.send_frame(FrameKind::Raw, Bytes::from(b"ping".to_vec()))
            .unwrap();
        b.send_bytes(Bytes::from(b"pong".to_vec()));
        let got = rec.recv_frame().unwrap();
        assert_eq!(&got[..], b"pong");
        assert_eq!(rec.sent_frames().len(), 1);
        assert_eq!(rec.sent_frames()[0].0, FrameKind::Raw);
        assert_eq!(&rec.sent_frames()[0].1[..], b"ping");
        assert_eq!(rec.received_frames().len(), 1);
        assert_eq!(&rec.received_frames()[0][..], b"pong");
    }
}
