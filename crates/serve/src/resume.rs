//! Server-side round checkpoints for RESUME.
//!
//! When a session dies mid-job, the session thread deposits a
//! [`SessionCheckpoint`] here: the session's seed material plus OT-sender
//! snapshots at the last two element boundaries. A reconnecting client's
//! RESUME is validated against the checkpoint (token, job, shape, and a
//! snapshot at exactly the client's rollback point); the job is then
//! re-garbled from its original seed and streamed from that boundary, so
//! the stitched transcript is bit-identical to an uninterrupted run.
//!
//! Two snapshots always suffice: the client checkpoints *before* each
//! element and the server snapshots *after* each element, so the client's
//! rollback point is either the server's position or one element behind it
//! (the frame in flight when the wire died).
//!
//! The registry is capacity-bounded with insertion-order eviction — an
//! abandoned checkpoint costs memory only until enough newer failures
//! arrive.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

use max_ot::iknp::OtExtSender;

/// Everything needed to resume one interrupted session on a brand-new
/// connection.
#[derive(Clone, Debug)]
pub struct SessionCheckpoint {
    /// The interrupted session's id (registry key).
    pub session_id: u64,
    /// The session's resume secret (must be quoted back in RESUME).
    pub resume_token: u64,
    /// The session's derived seed (later job seeds continue from it).
    pub session_seed: u64,
    /// Job-id counter after the interrupted job completes.
    pub next_job: u64,
    /// The interrupted job.
    pub job_id: u64,
    /// Column count of the interrupted job.
    pub columns: u32,
    /// The job's original accelerator seed (deterministic re-garble).
    pub job_seed: u64,
    /// `(elements_streamed, sender_state)` snapshots at the most recent
    /// element boundaries, oldest first (at most two).
    pub snapshots: Vec<(usize, OtExtSender)>,
}

impl SessionCheckpoint {
    /// The sender snapshot at exactly `elements_done`, if held.
    pub fn snapshot_at(&self, elements_done: usize) -> Option<&OtExtSender> {
        self.snapshots
            .iter()
            .find(|(at, _)| *at == elements_done)
            .map(|(_, sender)| sender)
    }
}

/// Capacity-bounded store of [`SessionCheckpoint`]s keyed by session id,
/// evicting the oldest entry when full. Capacity zero disables resumption
/// entirely.
pub struct ResumeRegistry {
    capacity: usize,
    // Insertion-ordered; lookups are rare (one per reconnect) so a scan
    // beats the bookkeeping of an index.
    entries: Mutex<VecDeque<SessionCheckpoint>>,
}

impl std::fmt::Debug for ResumeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResumeRegistry")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl ResumeRegistry {
    /// Creates a registry holding at most `capacity` checkpoints.
    pub fn new(capacity: usize) -> ResumeRegistry {
        ResumeRegistry {
            capacity,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Deposits (or replaces) the checkpoint for a session, evicting the
    /// oldest entry if the registry is full. No-op when capacity is zero.
    pub fn save(&self, checkpoint: SessionCheckpoint) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries.retain(|c| c.session_id != checkpoint.session_id);
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(checkpoint);
        max_telemetry::counter_add("serve.resume.saved", 1);
    }

    /// Clones the checkpoint for `session_id`, leaving it in place — a
    /// failed resume attempt must not destroy the state a later attempt
    /// needs.
    pub fn lookup(&self, session_id: u64) -> Option<SessionCheckpoint> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|c| c.session_id == session_id)
            .cloned()
    }

    /// Drops the checkpoint for `session_id` (after a successful resumed
    /// job, or a clean BYE).
    pub fn remove(&self, session_id: u64) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|c| c.session_id != session_id);
    }

    /// Checkpoints currently held.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the registry holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use max_ot::iknp;

    fn checkpoint(session_id: u64) -> SessionCheckpoint {
        let (sender, _receiver) = iknp::setup_pair(session_id);
        SessionCheckpoint {
            session_id,
            resume_token: session_id ^ 0x7e57,
            session_seed: 1,
            next_job: 1,
            job_id: 0,
            columns: 1,
            job_seed: 2,
            snapshots: vec![(0, sender.clone()), (1, sender)],
        }
    }

    #[test]
    fn save_lookup_remove_round_trip() {
        let registry = ResumeRegistry::new(4);
        assert!(registry.is_empty());
        registry.save(checkpoint(7));
        let got = registry.lookup(7).unwrap();
        assert_eq!(got.resume_token, 7 ^ 0x7e57);
        assert!(got.snapshot_at(1).is_some());
        assert!(got.snapshot_at(2).is_none());
        // Peek, not take: still present.
        assert!(registry.lookup(7).is_some());
        registry.remove(7);
        assert!(registry.lookup(7).is_none());
    }

    #[test]
    fn capacity_evicts_oldest_and_zero_disables() {
        let registry = ResumeRegistry::new(2);
        registry.save(checkpoint(1));
        registry.save(checkpoint(2));
        registry.save(checkpoint(3));
        assert_eq!(registry.len(), 2);
        assert!(registry.lookup(1).is_none());
        assert!(registry.lookup(2).is_some());
        assert!(registry.lookup(3).is_some());
        // Re-saving a session replaces, not duplicates.
        registry.save(checkpoint(3));
        assert_eq!(registry.len(), 2);

        let disabled = ResumeRegistry::new(0);
        disabled.save(checkpoint(1));
        assert!(disabled.lookup(1).is_none());
    }
}
