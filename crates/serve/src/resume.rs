//! Server-side round checkpoints for RESUME.
//!
//! When a session dies mid-job, the session thread deposits a
//! [`SessionCheckpoint`] here: the session's seed material plus OT-sender
//! snapshots at the last two element boundaries. A reconnecting client's
//! RESUME is validated against the checkpoint (token, job, shape, and a
//! snapshot at exactly the client's rollback point); the job is then
//! re-garbled from its original seed and streamed from that boundary, so
//! the stitched transcript is bit-identical to an uninterrupted run.
//!
//! Two snapshots always suffice: the client checkpoints *before* each
//! element and the server snapshots *after* each element, so the client's
//! rollback point is either the server's position or one element behind it
//! (the frame in flight when the wire died).
//!
//! The registry is capacity-bounded with insertion-order eviction — an
//! abandoned checkpoint costs memory only until enough newer failures
//! arrive. Evictions are accounted (`serve.resume.evicted`) and reported to
//! the caller, so a client whose later RESUME comes back `REJECT(resume)`
//! can be attributed to capacity pressure rather than a mystery.
//!
//! This module also owns the checkpoint *codec* used by the durable
//! [journal](crate::journal): a checkpoint serializes to a compact
//! little-endian record and deserializes by re-deriving the OT sender from
//! the session's seed chain (`ot_seed = derive_seed(session_seed, 0x07)`,
//! exactly the ACCEPT-path derivation) and then importing the persisted
//! `(session, counters)` cursor — so AES round keys never touch disk.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

use max_crypto::TranscriptDigest;
use max_ot::iknp::{self, OtExtSender, OtStateShapeError};
use maxelerator::remote::derive_seed;

/// Everything needed to resume one interrupted session on a brand-new
/// connection.
#[derive(Clone, Debug)]
pub struct SessionCheckpoint {
    /// The interrupted session's id (registry key).
    pub session_id: u64,
    /// The session's resume secret (must be quoted back in RESUME).
    pub resume_token: u64,
    /// The session's derived seed (later job seeds continue from it).
    pub session_seed: u64,
    /// Job-id counter after the interrupted job completes.
    pub next_job: u64,
    /// The interrupted job.
    pub job_id: u64,
    /// Column count of the interrupted job.
    pub columns: u32,
    /// The job's original accelerator seed (deterministic re-garble).
    pub job_seed: u64,
    /// Prepared model the job ran against, if any. A resume re-garbles
    /// from the *registry's* weights for this id (same `job_seed`, so the
    /// material is bit-identical); if the model was evicted in the
    /// meantime the resume is refused with `REJECT(resume)`.
    pub model_id: Option<u64>,
    /// `(elements_streamed, sender_state, transcript_digest)` snapshots at
    /// the most recent element boundaries, oldest first (at most two). The
    /// digest is the server's rolling transcript digest *at that boundary*,
    /// so a resumed stream keeps folding from exactly where the client's
    /// checkpointed digest stands.
    pub snapshots: Vec<(usize, OtExtSender, TranscriptDigest)>,
}

impl SessionCheckpoint {
    /// The sender snapshot and transcript digest at exactly
    /// `elements_done`, if held.
    pub fn snapshot_at(&self, elements_done: usize) -> Option<(&OtExtSender, &TranscriptDigest)> {
        self.snapshots
            .iter()
            .find(|(at, _, _)| *at == elements_done)
            .map(|(_, sender, digest)| (sender, digest))
    }
}

/// Hard cap on snapshots a serialized checkpoint may carry. The serving
/// layer keeps a window of two; anything larger in a decoded record is
/// corruption, not a bigger window.
const MAX_CODEC_SNAPSHOTS: u8 = 4;

/// Why a serialized checkpoint record failed to decode. Every variant is a
/// typed refusal — hostile or bit-rotted bytes must never panic the codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointCodecError {
    /// The record ended before the named field.
    Truncated {
        /// Which field the record ran out of bytes in.
        what: &'static str,
    },
    /// Bytes remained after the last declared snapshot.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The snapshot count is outside the protocol's window.
    SnapshotCount {
        /// The declared count.
        got: u8,
    },
    /// The model-id presence flag is neither 0 nor 1.
    BadModelFlag {
        /// The flag byte found.
        got: u8,
    },
    /// A persisted OT cursor does not fit the sender it rebuilds.
    OtShape(OtStateShapeError),
    /// A record's embedded content digest does not match its bytes — the
    /// payload rotted (or was tampered with) *after* it was written, in a
    /// way the record-level CRC alone might miss across compaction rewrites.
    DigestMismatch {
        /// Which digested payload failed verification.
        what: &'static str,
    },
}

impl std::fmt::Display for CheckpointCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointCodecError::Truncated { what } => {
                write!(f, "checkpoint record truncated in {what}")
            }
            CheckpointCodecError::TrailingBytes { extra } => {
                write!(f, "checkpoint record has {extra} trailing bytes")
            }
            CheckpointCodecError::SnapshotCount { got } => {
                write!(
                    f,
                    "checkpoint snapshot count {got} exceeds the window cap {MAX_CODEC_SNAPSHOTS}"
                )
            }
            CheckpointCodecError::BadModelFlag { got } => {
                write!(f, "checkpoint model-id flag {got} is not 0 or 1")
            }
            CheckpointCodecError::OtShape(err) => write!(f, "checkpoint OT cursor: {err}"),
            CheckpointCodecError::DigestMismatch { what } => {
                write!(f, "record digest mismatch in {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointCodecError {}

impl From<OtStateShapeError> for CheckpointCodecError {
    fn from(err: OtStateShapeError) -> Self {
        CheckpointCodecError::OtShape(err)
    }
}

/// Little-endian reader over a checkpoint record body.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CheckpointCodecError> {
        if self.bytes.len() < n {
            return Err(CheckpointCodecError::Truncated { what });
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, CheckpointCodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, CheckpointCodecError> {
        let bytes = self.take(2, what)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, CheckpointCodecError> {
        let bytes = self.take(4, what)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, CheckpointCodecError> {
        let bytes = self.take(8, what)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    fn u128(&mut self, what: &'static str) -> Result<u128, CheckpointCodecError> {
        let bytes = self.take(16, what)?;
        let mut buf = [0u8; 16];
        buf.copy_from_slice(bytes);
        Ok(u128::from_le_bytes(buf))
    }
}

/// Serializes a checkpoint for the journal. The OT sender is persisted as
/// its `(session, counters)` cursor only — the keyed state is a pure
/// function of the seed chain and is re-derived on decode.
pub fn encode_checkpoint(checkpoint: &SessionCheckpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + checkpoint.snapshots.len() * (16 + 128 * 16));
    out.extend_from_slice(&checkpoint.session_id.to_le_bytes());
    out.extend_from_slice(&checkpoint.resume_token.to_le_bytes());
    out.extend_from_slice(&checkpoint.session_seed.to_le_bytes());
    out.extend_from_slice(&checkpoint.next_job.to_le_bytes());
    out.extend_from_slice(&checkpoint.job_id.to_le_bytes());
    out.extend_from_slice(&checkpoint.columns.to_le_bytes());
    out.extend_from_slice(&checkpoint.job_seed.to_le_bytes());
    // Fixed-width model-id slot (flag + id) so the record layout does not
    // shift with the option's state.
    out.push(u8::from(checkpoint.model_id.is_some()));
    out.extend_from_slice(&checkpoint.model_id.unwrap_or(0).to_le_bytes());
    out.push(checkpoint.snapshots.len().min(usize::from(u8::MAX)) as u8);
    for (elements, sender, digest) in &checkpoint.snapshots {
        let state = sender.export_state();
        out.extend_from_slice(&(*elements as u64).to_le_bytes());
        let (digest_state, digest_len) = digest.export();
        out.extend_from_slice(&digest_state);
        out.extend_from_slice(&digest_len.to_le_bytes());
        out.extend_from_slice(&state.session.to_le_bytes());
        out.extend_from_slice(
            &(state.counters.len().min(usize::from(u16::MAX)) as u16).to_le_bytes(),
        );
        for counter in &state.counters {
            out.extend_from_slice(&counter.to_le_bytes());
        }
    }
    out
}

/// Deserializes a checkpoint record, rebuilding each OT-sender snapshot
/// from the session's seed chain plus the persisted cursor.
///
/// # Errors
///
/// Any structural defect — truncation, an impossible snapshot count, a
/// cursor that does not fit the derived sender, trailing garbage — returns
/// a typed [`CheckpointCodecError`]; hostile bytes never panic.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<SessionCheckpoint, CheckpointCodecError> {
    let mut reader = Reader { bytes };
    let session_id = reader.u64("session_id")?;
    let resume_token = reader.u64("resume_token")?;
    let session_seed = reader.u64("session_seed")?;
    let next_job = reader.u64("next_job")?;
    let job_id = reader.u64("job_id")?;
    let columns = reader.u32("columns")?;
    let job_seed = reader.u64("job_seed")?;
    let model_flag = reader.u8("model flag")?;
    let model_raw = reader.u64("model id")?;
    let model_id = match model_flag {
        0 => None,
        1 => Some(model_raw),
        got => return Err(CheckpointCodecError::BadModelFlag { got }),
    };
    let count = reader.u8("snapshot count")?;
    if count > MAX_CODEC_SNAPSHOTS {
        return Err(CheckpointCodecError::SnapshotCount { got: count });
    }
    // Same derivation the HELLO path used when the session was born, so the
    // rebuilt sender's keyed state is bit-identical to the original's.
    let ot_seed = derive_seed(session_seed, 0x07);
    let mut snapshots = Vec::with_capacity(usize::from(count));
    for _ in 0..count {
        let elements = reader.u64("snapshot boundary")?;
        let mut digest_state = [0u8; 16];
        digest_state.copy_from_slice(reader.take(16, "snapshot digest state")?);
        let digest_len = reader.u64("snapshot digest length")?;
        let ot_session = reader.u64("snapshot OT session")?;
        let counters_len = reader.u16("snapshot counter count")?;
        let mut counters = Vec::with_capacity(usize::from(counters_len));
        for _ in 0..counters_len {
            counters.push(reader.u128("snapshot counter")?);
        }
        let (mut sender, _receiver_half) = iknp::setup_pair(ot_seed);
        sender.import_state(&iknp::OtSenderState {
            session: ot_session,
            counters,
        })?;
        snapshots.push((
            elements as usize,
            sender,
            TranscriptDigest::import(digest_state, digest_len),
        ));
    }
    if !reader.bytes.is_empty() {
        return Err(CheckpointCodecError::TrailingBytes {
            extra: reader.bytes.len(),
        });
    }
    Ok(SessionCheckpoint {
        session_id,
        resume_token,
        session_seed,
        next_job,
        job_id,
        columns,
        job_seed,
        model_id,
        snapshots,
    })
}

/// Capacity-bounded store of [`SessionCheckpoint`]s keyed by session id,
/// evicting the oldest entry when full. Capacity zero disables resumption
/// entirely.
pub struct ResumeRegistry {
    capacity: usize,
    // Insertion-ordered; lookups are rare (one per reconnect) so a scan
    // beats the bookkeeping of an index.
    entries: Mutex<VecDeque<SessionCheckpoint>>,
}

impl std::fmt::Debug for ResumeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResumeRegistry")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl ResumeRegistry {
    /// Creates a registry holding at most `capacity` checkpoints.
    pub fn new(capacity: usize) -> ResumeRegistry {
        ResumeRegistry {
            capacity,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Deposits (or replaces) the checkpoint for a session, evicting the
    /// oldest entry if the registry is full. No-op when capacity is zero.
    ///
    /// Returns the session id of the checkpoint evicted under capacity
    /// pressure, if any, so the caller can attribute the silenced session's
    /// future `REJECT(resume)` (flight event, journal cleanup) instead of
    /// letting the fallback-to-restart look like random loss.
    pub fn save(&self, checkpoint: SessionCheckpoint) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries.retain(|c| c.session_id != checkpoint.session_id);
        let evicted = if entries.len() >= self.capacity {
            entries.pop_front().map(|c| c.session_id)
        } else {
            None
        };
        entries.push_back(checkpoint);
        max_telemetry::counter_add("serve.resume.saved", 1);
        if evicted.is_some() {
            max_telemetry::counter_add("serve.resume.evicted", 1);
        }
        evicted
    }

    /// Clones the checkpoint for `session_id`, leaving it in place — a
    /// failed resume attempt must not destroy the state a later attempt
    /// needs.
    pub fn lookup(&self, session_id: u64) -> Option<SessionCheckpoint> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|c| c.session_id == session_id)
            .cloned()
    }

    /// Drops the checkpoint for `session_id` (after a successful resumed
    /// job, or a clean BYE).
    pub fn remove(&self, session_id: u64) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|c| c.session_id != session_id);
    }

    /// Checkpoints currently held.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the registry holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use max_ot::iknp;

    fn checkpoint(session_id: u64) -> SessionCheckpoint {
        let (sender, _receiver) = iknp::setup_pair(session_id);
        let digest = TranscriptDigest::new();
        SessionCheckpoint {
            session_id,
            resume_token: session_id ^ 0x7e57,
            session_seed: 1,
            next_job: 1,
            job_id: 0,
            columns: 1,
            job_seed: 2,
            model_id: None,
            snapshots: vec![(0, sender.clone(), digest.clone()), (1, sender, digest)],
        }
    }

    #[test]
    fn save_lookup_remove_round_trip() {
        let registry = ResumeRegistry::new(4);
        assert!(registry.is_empty());
        registry.save(checkpoint(7));
        let got = registry.lookup(7).unwrap();
        assert_eq!(got.resume_token, 7 ^ 0x7e57);
        assert!(got.snapshot_at(1).is_some());
        assert!(got.snapshot_at(2).is_none());
        // Peek, not take: still present.
        assert!(registry.lookup(7).is_some());
        registry.remove(7);
        assert!(registry.lookup(7).is_none());
    }

    #[test]
    fn capacity_evicts_oldest_and_zero_disables() {
        let registry = ResumeRegistry::new(2);
        assert_eq!(registry.save(checkpoint(1)), None);
        assert_eq!(registry.save(checkpoint(2)), None);
        // The eviction names its victim, so callers can account for it.
        assert_eq!(registry.save(checkpoint(3)), Some(1));
        assert_eq!(registry.len(), 2);
        assert!(registry.lookup(1).is_none());
        assert!(registry.lookup(2).is_some());
        assert!(registry.lookup(3).is_some());
        // Re-saving a session replaces, not duplicates.
        registry.save(checkpoint(3));
        assert_eq!(registry.len(), 2);

        let disabled = ResumeRegistry::new(0);
        assert_eq!(disabled.save(checkpoint(1)), None);
        assert!(disabled.lookup(1).is_none());
    }

    /// A realistic checkpoint: seed chain as the HELLO path derives it, OT
    /// sender advanced through real exchanges before snapshotting.
    fn live_checkpoint(session_id: u64, warmup_elements: usize) -> SessionCheckpoint {
        let session_seed = derive_seed(0xBA5E, session_id);
        let ot_seed = derive_seed(session_seed, 0x07);
        let (mut sender, mut receiver) = iknp::setup_pair(ot_seed);
        let mut digest = TranscriptDigest::new();
        let mut snapshots = Vec::new();
        for element in 0..warmup_elements {
            let choices: Vec<bool> = (0..64).map(|i| (i + element) % 2 == 0).collect();
            let (msg, _keys) = receiver.prepare(&choices);
            let pairs: Vec<_> = (0..64)
                .map(|i| {
                    (
                        max_crypto::Block::new(i as u128),
                        max_crypto::Block::new((i + 1000) as u128),
                    )
                })
                .collect();
            let _ = sender.send(&msg, &pairs);
            digest.fold(&(element as u64).to_le_bytes());
            snapshots.push((element + 1, sender.clone(), digest.clone()));
        }
        snapshots.drain(..snapshots.len().saturating_sub(2));
        SessionCheckpoint {
            session_id,
            resume_token: derive_seed(session_seed, 0x7e57),
            session_seed,
            next_job: 3,
            job_id: 2,
            columns: 5,
            job_seed: derive_seed(session_seed, 0x102),
            model_id: Some(derive_seed(session_seed, 0x4d0d)),
            snapshots,
        }
    }

    #[test]
    fn codec_round_trips_a_live_checkpoint() {
        let original = live_checkpoint(11, 3);
        let bytes = encode_checkpoint(&original);
        let decoded = decode_checkpoint(&bytes).unwrap();
        assert_eq!(decoded.session_id, original.session_id);
        assert_eq!(decoded.resume_token, original.resume_token);
        assert_eq!(decoded.session_seed, original.session_seed);
        assert_eq!(decoded.next_job, original.next_job);
        assert_eq!(decoded.job_id, original.job_id);
        assert_eq!(decoded.columns, original.columns);
        assert_eq!(decoded.job_seed, original.job_seed);
        assert_eq!(decoded.model_id, original.model_id);
        assert_eq!(decoded.snapshots.len(), original.snapshots.len());
        for ((at_a, sender_a, digest_a), (at_b, sender_b, digest_b)) in
            decoded.snapshots.iter().zip(&original.snapshots)
        {
            assert_eq!(at_a, at_b);
            // The rebuilt sender carries the same cursor over the same
            // keyed state — full behavioral identity is proven in the OT
            // crate's export/import tests and crash_e2e's transcript diff.
            assert_eq!(sender_a.export_state(), sender_b.export_state());
            assert_eq!(digest_a, digest_b);
            assert_eq!(digest_a.value(), digest_b.value());
        }
    }

    #[test]
    fn codec_rejects_hostile_bytes_with_typed_errors() {
        let bytes = encode_checkpoint(&live_checkpoint(12, 2));

        // Truncation at every prefix length decodes to a typed error (or,
        // for snapshotless prefixes that happen to parse, a valid record) —
        // never a panic.
        for cut in 0..bytes.len() {
            match decode_checkpoint(&bytes[..cut]) {
                Err(
                    CheckpointCodecError::Truncated { .. }
                    | CheckpointCodecError::TrailingBytes { .. },
                ) => {}
                Err(other) => panic!("cut {cut}: unexpected error {other:?}"),
                Ok(_) => panic!("cut {cut}: truncated record decoded"),
            }
        }

        // Trailing garbage is refused.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0xAB; 7]);
        assert!(matches!(
            decode_checkpoint(&padded),
            Err(CheckpointCodecError::TrailingBytes { extra: 7 })
        ));

        // A model-id flag outside {0, 1} is refused.
        let mut bad_flag = bytes.clone();
        bad_flag[52] = 2; // model flag (7 u64/u32 header fields = 52 bytes).
        assert!(matches!(
            decode_checkpoint(&bad_flag),
            Err(CheckpointCodecError::BadModelFlag { got: 2 })
        ));

        // An absurd snapshot count is refused before any allocation work.
        let mut hostile = bytes.clone();
        hostile[61] = 0xFF; // snapshot-count byte (after the 9-byte model slot).
        assert!(matches!(
            decode_checkpoint(&hostile),
            Err(CheckpointCodecError::SnapshotCount { got: 0xFF })
        ));

        // A wrong-width counter vector is a typed OT-shape refusal. The
        // counter-count u16 sits after the snapshot's boundary (8), digest
        // state (16), digest length (8), and OT session (8) fields.
        let mut short_counters = bytes.clone();
        short_counters[62 + 40] = 3;
        short_counters[62 + 41] = 0;
        assert!(matches!(
            decode_checkpoint(&short_counters),
            Err(CheckpointCodecError::OtShape(_)
                | CheckpointCodecError::Truncated { .. }
                | CheckpointCodecError::TrailingBytes { .. })
        ));
    }
}
