//! Keystone integrity property: flip **any single bit** at **any offset**
//! of **any frame** of a live served job — in either direction — and the
//! outcome is *detected* (a typed checksum/digest error healed by a
//! bounded retry) or *harmless*. It is never a silently wrong plaintext.
//!
//! This is the end-to-end proof of the v6 integrity ladder: the CRC seal
//! catches the flip at framing, the transcript digest catches anything
//! that slips past framing into GC state, and the resilient client turns
//! either detection into a rewind + retry. The property quantifies over
//! the whole frame space, so it also covers the handshake and control
//! frames the chaos soak only samples.

use std::time::Duration;

use bytes::Bytes;
use max_gc::channel::{ChannelStats, FrameKind, TransportError};
use max_gc::Transport;
use max_serve::{demo_vector, demo_weights, plain_matvec, GcService, ServeConfig};
use maxelerator::{AcceleratorConfig, ResilientClient, RetryPolicy};
use proptest::prelude::*;

const WIDTH: usize = 8;
const ROWS: usize = 3;
const COLS: usize = 3;
const SEED: u64 = 0x1B17;

/// A transport that flips exactly one bit of exactly one frame, then
/// passes everything else through untouched. Unlike [`max_gc::FaultTransport`]
/// (seeded rates, send-only), this targets a precise `(direction, frame,
/// offset, bit)` coordinate so the property can sweep the frame space.
struct FlipOneBit<T> {
    inner: T,
    /// Flip an outbound (client→server) frame; otherwise inbound.
    outbound: bool,
    /// Index of the frame to hit, counted per direction.
    target: u64,
    /// Offset is `draw % len`, so any draw lands inside any frame.
    offset_draw: u64,
    bit: u8,
    seen: u64,
    armed: bool,
}

impl<T> FlipOneBit<T> {
    fn flip(&mut self, frame: Bytes) -> Bytes {
        let idx = self.seen;
        self.seen += 1;
        if !self.armed || idx != self.target || frame.is_empty() {
            return frame;
        }
        self.armed = false;
        let mut bytes = frame.to_vec();
        let offset = (self.offset_draw % bytes.len() as u64) as usize;
        bytes[offset] ^= 1 << (self.bit % 8);
        Bytes::from(bytes)
    }
}

impl<T: Transport> Transport for FlipOneBit<T> {
    fn send_frame(&mut self, kind: FrameKind, frame: Bytes) -> Result<(), TransportError> {
        let frame = if self.outbound {
            self.flip(frame)
        } else {
            frame
        };
        self.inner.send_frame(kind, frame)
    }

    fn recv_frame(&mut self) -> Result<Bytes, TransportError> {
        let frame = self.inner.recv_frame()?;
        Ok(if self.outbound {
            frame
        } else {
            self.flip(frame)
        })
    }

    fn sent_stats(&self) -> ChannelStats {
        self.inner.sent_stats()
    }

    fn received_stats(&self) -> ChannelStats {
        self.inner.received_stats()
    }

    fn set_idle_timeout(&mut self, timeout: Option<Duration>) -> bool {
        self.inner.set_idle_timeout(timeout)
    }
}

/// One served job under a single targeted bit flip: the result must be
/// the correct plaintext (healed or untouched), and if the flip landed on
/// a frame the client or server actually exchanged, the ladder must have
/// *detected* rather than silently absorbed it.
fn run_flip(outbound: bool, target: u64, offset_draw: u64, bit: u8) {
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let mut cfg = ServeConfig::new(AcceleratorConfig::new(WIDTH), weights.clone(), SEED);
    // A corrupt client frame kills the server session; the client only
    // notices via its step deadline, so keep both deadlines short.
    cfg.step_timeout = Some(Duration::from_millis(80));
    let service = GcService::start(cfg);
    let x = demo_vector(COLS, WIDTH, SEED ^ 7);
    let expected = plain_matvec(&weights, &x);

    let svc = service.clone();
    let mut dials = 0u64;
    let mut client = ResilientClient::new(
        move || {
            dials += 1;
            Ok(FlipOneBit {
                inner: svc.connect(),
                outbound,
                target,
                offset_draw,
                bit,
                seen: 0,
                // Only the first connection carries the flip; recovery
                // dials get a clean wire.
                armed: dials == 1,
            })
        },
        WIDTH,
        RetryPolicy {
            max_attempts: 12,
            base_backoff_ms: 15,
            max_backoff_ms: 120,
            step_timeout: Some(Duration::from_millis(400)),
            jitter_seed: SEED ^ target,
            integrity_retries: 8,
        },
    );

    let (y, _) = client
        .secure_matvec(&x)
        .expect("a single bit flip must be healed, not fatal");
    assert_eq!(
        y, expected,
        "flip(outbound={outbound}, frame={target}, draw={offset_draw}, bit={bit}) \
         produced silently wrong plaintext"
    );
    drop(client);
    service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_single_bit_flip_is_detected_or_harmless(
        outbound in any::<bool>(),
        // Handshake (4) + 3 frame events per element (3 elements) + STATS:
        // the range sweeps past the last frame so "flip never fires" is
        // part of the property too.
        target in 0u64..13,
        offset_draw in any::<u64>(),
        bit in 0u8..8,
    ) {
        run_flip(outbound, target, offset_draw, bit);
    }
}

/// Deterministic anchors on top of the property sweep: the first frame of
/// each direction (HELLO / ACCEPT) and the first data frames, low and
/// high bits — the cases a regression would most plausibly reintroduce.
#[test]
fn anchor_flips_heal_in_both_directions() {
    for (outbound, target) in [(true, 0), (false, 0), (true, 2), (false, 2), (false, 3)] {
        run_flip(outbound, target, 9, 0);
        run_flip(outbound, target, 4, 7);
    }
}
