//! End-to-end prepared-model registry tests: the v5 model lifecycle over
//! the wire, warm-stock serving with plaintext verification, the typed
//! fallback when stock runs dry, byte-budget eviction, journal replay of
//! models across a restart, and a prepared-vs-inline equivalence proptest.

use std::path::{Path, PathBuf};
use std::time::Duration;

use max_gc::FramedTcp;
use max_registry::garble_stream;
use max_serve::{
    demo_vector, demo_weights, listen_tcp, plain_matvec, GcService, JournalConfig, ServeConfig,
};
use maxelerator::{
    AcceleratorConfig, AcceleratorError, ModelHandle, RemoteClient, ResilientClient, RetryPolicy,
};
use proptest::prelude::*;

const WIDTH: usize = 8;
const ROWS: usize = 3;
const COLS: usize = 4;
const SEED: u64 = 0x4e57;

fn demo_service(mutate: impl FnOnce(&mut ServeConfig)) -> GcService {
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let mut cfg = ServeConfig::new(AcceleratorConfig::new(WIDTH), weights, SEED);
    mutate(&mut cfg);
    GcService::start(cfg)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "reg-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A second matrix, distinct from the session's demo model, to register.
fn model_weights(rows: usize, cols: usize, tweak: u64) -> Vec<Vec<i64>> {
    demo_weights(rows, cols, WIDTH, SEED ^ 0x0d0d ^ tweak)
}

#[test]
fn model_lifecycle_roundtrip_over_tcp() {
    let service = demo_service(|_| {});
    let handle = listen_tcp(service, "127.0.0.1:0").expect("bind");
    let tcp = FramedTcp::connect(handle.addr()).expect("connect");
    let mut client = RemoteClient::connect(tcp, WIDTH).expect("handshake");

    // PUT answers with the registered shape.
    let weights = model_weights(2, 3, 1);
    let status = client.put_model(7, &weights).expect("put");
    assert_eq!(status.model_id, 7);
    assert_eq!(status.rows, 2);
    assert_eq!(status.cols, 3);

    // INFO sees the same model; an unknown id is a typed rejection that
    // leaves the session usable.
    let info = client.model_info(7).expect("info");
    assert_eq!((info.rows, info.cols), (2, 3));
    match client.model_info(99) {
        Err(AcceleratorError::Rejected { reason }) => {
            assert!(reason.contains("model"), "unexpected reason: {reason}")
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    // Out-of-range weights are a typed rejection, not a dead session.
    match client.put_model(8, &[vec![10_000]]) {
        Err(AcceleratorError::Rejected { .. }) => {}
        other => panic!("expected Rejected, got {other:?}"),
    }

    // Re-PUT (replace) and EVICT both answer with status; a second evict
    // is a typed rejection.
    client
        .put_model(7, &model_weights(2, 3, 2))
        .expect("re-put");
    let last = client.evict_model(7).expect("evict");
    assert_eq!(last.model_id, 7);
    assert!(matches!(
        client.evict_model(7),
        Err(AcceleratorError::Rejected { .. })
    ));

    // The session default path still works after all of the above.
    let x = demo_vector(COLS, WIDTH, SEED ^ 3);
    let (y, _) = client.secure_matvec(&x).expect("default job");
    assert_eq!(y, plain_matvec(&demo_weights(ROWS, COLS, WIDTH, SEED), &x));
    client.goodbye();
    handle.shutdown();
}

#[test]
fn warm_stock_serves_prepared_and_verifies_plaintext() {
    let service = demo_service(|cfg| cfg.registry_target_stock = 2);
    let weights = model_weights(4, 3, 7);
    let status = service.put_model(11, weights.clone()).expect("register");
    let handle = status.handle();
    // Fill the stock synchronously so the first job cannot race idle-fill.
    service.prefill_models();
    assert!(service.registry().stats().streams_ready >= 1);

    let mut client = RemoteClient::connect(service.connect(), WIDTH).expect("handshake");
    for job in 0..2u64 {
        let x = demo_vector(3, WIDTH, SEED ^ (job << 9));
        let (ys, _) = client
            .secure_matmul_model(handle, std::slice::from_ref(&x))
            .expect("model job");
        assert_eq!(ys[0], plain_matvec(&weights, &x), "prepared result wrong");
    }
    client.goodbye();

    let reg = service.registry().stats();
    assert!(
        reg.served_prepared >= 1,
        "warm stock must serve at least one prepared job, got {reg:?}"
    );
    let stats = service.shutdown();
    assert_eq!(stats.jobs_completed, 2);
    assert!(stats.jobs_prepared >= 1, "prepared serves must be counted");
    assert_eq!(stats.sessions_errored, 0);
}

#[test]
fn stock_exhausted_falls_back_inline_counted_never_an_error() {
    // target_stock = 0: the registry never garbles ahead, so every model
    // job takes the fallback path — and every one must still verify.
    let service = demo_service(|cfg| cfg.registry_target_stock = 0);
    let weights = model_weights(3, 2, 5);
    let handle = service
        .put_model(21, weights.clone())
        .expect("register")
        .handle();

    let mut client = RemoteClient::connect(service.connect(), WIDTH).expect("handshake");
    let x = demo_vector(2, WIDTH, SEED ^ 0xA);
    let (ys, _) = client
        .secure_matmul_model(handle, std::slice::from_ref(&x))
        .expect("fallback matvec");
    assert_eq!(ys[0], plain_matvec(&weights, &x));

    // Matmul (columns > 1) against a model always falls back: a stocked
    // stream is one matvec's element schedule.
    let xs = vec![
        demo_vector(2, WIDTH, SEED ^ 0xB),
        demo_vector(2, WIDTH, SEED ^ 0xC),
    ];
    let (ys, _) = client
        .secure_matmul_model(handle, &xs)
        .expect("fallback matmul");
    for (x, y) in xs.iter().zip(&ys) {
        assert_eq!(y, &plain_matvec(&weights, x));
    }
    client.goodbye();

    let reg = service.registry().stats();
    assert_eq!(reg.served_prepared, 0);
    assert_eq!(
        reg.served_fallback, 2,
        "both jobs must be counted as fallbacks"
    );
    let stats = service.shutdown();
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.jobs_prepared, 0);
    assert_eq!(stats.sessions_errored, 0);
}

#[test]
fn tight_budget_evicts_lru_model_whole() {
    // Size the budget from a real stream so ~2.5 streams fit: stocking
    // model B (2 streams) must push model A's stock out entirely.
    let weights_a = model_weights(2, 2, 11);
    let weights_b = model_weights(2, 2, 13);
    let (probe, _) =
        garble_stream(&AcceleratorConfig::new(WIDTH), &weights_a, SEED, 16).expect("probe stream");
    let budget = probe.stored_bytes() * 2 + probe.stored_bytes() / 2;

    let service = demo_service(|cfg| {
        cfg.registry_target_stock = 2;
        cfg.registry_budget_bytes = Some(budget);
    });
    let handle_a = service.put_model(31, weights_a).expect("put A").handle();
    service.prefill_models();
    let handle_b = service
        .put_model(32, weights_b.clone())
        .expect("put B")
        .handle();
    service.prefill_models();

    let reg = service.registry().stats();
    assert!(
        reg.models_evicted_budget >= 1,
        "tight budget must evict: {reg:?}"
    );
    assert!(reg.stock_bytes <= budget, "stock must fit the budget");
    assert!(service.registry().status(handle_b.model_id).is_some());
    assert!(
        service.registry().status(handle_a.model_id).is_none(),
        "LRU victim must be gone entirely"
    );

    // The evicted model is now a typed rejection; the survivor still serves.
    let mut client = RemoteClient::connect(service.connect(), WIDTH).expect("handshake");
    let x = demo_vector(2, WIDTH, SEED ^ 0x31);
    match client.secure_matmul_model(handle_a, std::slice::from_ref(&x)) {
        Err(AcceleratorError::Rejected { reason }) => {
            assert!(reason.contains("model"), "unexpected reason: {reason}")
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    let (ys, _) = client
        .secure_matmul_model(handle_b, std::slice::from_ref(&x))
        .expect("survivor job");
    assert_eq!(ys[0], plain_matvec(&weights_b, &x));
    client.goodbye();
    service.shutdown();
}

#[test]
fn rotted_prepared_stream_is_rejected_and_healed() {
    // Two streams in stock; rot one bit of the first stream's material
    // *after* its fill-time digest was recorded — exactly what a DRAM
    // fault or cache corruption would do.
    let service = demo_service(|cfg| {
        cfg.registry_target_stock = 2;
        cfg.step_timeout = Some(Duration::from_millis(200));
    });
    let weights = model_weights(3, 3, 23);
    let handle = service
        .put_model(61, weights.clone())
        .expect("register")
        .handle();
    // `prefill_models` can race the idle-fill worker (a model mid-fill is
    // skipped), so poll until both streams are stocked.
    for _ in 0..100 {
        service.prefill_models();
        if service.registry().stats().streams_ready >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(service.registry().stats().streams_ready >= 2);
    assert!(
        service.registry().rot_first_stream_for_tests(61),
        "a stocked stream must exist to rot"
    );

    // The serving layer re-verifies the fill-time digest before any
    // material frame leaves: the rotted stream becomes a typed
    // REJECT(integrity), which the resilient client heals by restarting
    // the job — landing on the healthy second stream.
    let svc = service.clone();
    let mut client = ResilientClient::new(
        move || Ok(svc.connect()),
        WIDTH,
        RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 5,
            max_backoff_ms: 50,
            step_timeout: Some(Duration::from_millis(500)),
            jitter_seed: SEED ^ 61,
            integrity_retries: 4,
        },
    )
    .with_model(handle);
    let x = demo_vector(3, WIDTH, SEED ^ 0x61);
    let (y, _) = client.secure_matvec(&x).expect("rot must heal, not fail");
    assert_eq!(y, plain_matvec(&weights, &x), "healed result must verify");
    assert!(
        client.stats().integrity_detected >= 1,
        "the rot must be *detected*, not silently absorbed: {:?}",
        client.stats()
    );
    assert_eq!(client.stats().integrity_healed, 1);
    drop(client);

    let reg = service.registry().stats();
    assert!(
        reg.streams_integrity_dropped >= 1,
        "the dropped stream must be counted: {reg:?}"
    );
    let stats = service.shutdown();
    assert!(
        stats.integrity_rejects >= 1,
        "the server must count the digest mismatch: {stats:?}"
    );
}

fn journaled_service(dir: &Path, mutate: impl FnOnce(&mut ServeConfig)) -> GcService {
    demo_service(|cfg| {
        let mut journal = JournalConfig::new(dir);
        journal.fsync = false;
        cfg.journal = Some(journal);
        mutate(cfg);
    })
}

#[test]
fn models_replay_from_journal_across_restart() {
    let dir = temp_dir("replay");
    let weights = model_weights(3, 3, 17);

    // First life: register two models over the wire, evict one.
    {
        let service = journaled_service(&dir, |_| {});
        let mut client = RemoteClient::connect(service.connect(), WIDTH).expect("handshake");
        client.put_model(41, &weights).expect("put 41");
        client
            .put_model(42, &model_weights(2, 2, 19))
            .expect("put 42");
        client.evict_model(42).expect("evict 42");
        client.goodbye();
        service.shutdown();
    }

    // Second life: 41 replays (no re-PUT needed), 42's tombstone held.
    let service = journaled_service(&dir, |_| {});
    assert_eq!(
        service.journal_replay().models,
        1,
        "one live model expected"
    );
    let status = service.registry().status(41).expect("model 41 must replay");
    assert_eq!((status.rows, status.cols), (3, 3));
    assert!(
        service.registry().status(42).is_none(),
        "tombstone must hold"
    );

    let handle = ModelHandle {
        model_id: 41,
        rows: 3,
        cols: 3,
    };
    let mut client = RemoteClient::connect(service.connect(), WIDTH).expect("handshake");
    let x = demo_vector(3, WIDTH, SEED ^ 0x41);
    let (ys, _) = client
        .secure_matmul_model(handle, std::slice::from_ref(&x))
        .expect("job against replayed model");
    assert_eq!(ys[0], plain_matvec(&weights, &x));
    client.goodbye();
    let stats = service.shutdown();
    assert_eq!(stats.sessions_errored, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A job served from a warm prepared stream and the same job garbled
    /// inline (as the session default model) decode to the same plaintext
    /// — the whole offline/online split changes nothing a client can see.
    #[test]
    fn prepared_and_inline_jobs_agree_on_plaintext(
        rows in 1usize..4,
        cols in 1usize..4,
        tweak: u64,
        tile_rows in 1usize..4,
    ) {
        let weights = demo_weights(rows, cols, WIDTH, SEED ^ tweak);
        let x = demo_vector(cols, WIDTH, SEED ^ tweak ^ 0x77);
        let expected = plain_matvec(&weights, &x);

        // Inline: the matrix is the session's default model.
        let inline_service = GcService::start(ServeConfig::new(
            AcceleratorConfig::new(WIDTH),
            weights.clone(),
            SEED ^ tweak,
        ));
        let mut client =
            RemoteClient::connect(inline_service.connect(), WIDTH).expect("handshake");
        let (y_inline, _) = client.secure_matvec(&x).expect("inline job");
        client.goodbye();
        inline_service.shutdown();

        // Prepared: the same matrix registered as a model, stock filled
        // ahead of the job, served by replaying materialized frames.
        let prepared_service = demo_service(|cfg| {
            cfg.registry_target_stock = 1;
            cfg.registry_tile_rows = tile_rows;
        });
        let handle = prepared_service
            .put_model(51, weights)
            .expect("register")
            .handle();
        prepared_service.prefill_models();
        prop_assert!(prepared_service.registry().stats().streams_ready >= 1);
        let mut client =
            RemoteClient::connect(prepared_service.connect(), WIDTH).expect("handshake");
        let (ys, _) = client
            .secure_matmul_model(handle, std::slice::from_ref(&x))
            .expect("prepared job");
        client.goodbye();
        let reg = prepared_service.registry().stats();
        prop_assert!(reg.served_prepared >= 1, "job must come from warm stock");
        prepared_service.shutdown();

        prop_assert_eq!(&ys[0], &expected);
        prop_assert_eq!(&y_inline, &expected);
    }
}
