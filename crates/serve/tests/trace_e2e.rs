//! Observability end-to-end: wire-propagated distributed tracing across a
//! chaos recovery, flight-recorder dumps from error-ending sessions, and
//! the live METRICS control frame.

use std::sync::Arc;
use std::time::{Duration, Instant};

use max_gc::channel::Duplex;
use max_gc::{FaultSpec, FaultTransport};
use max_serve::{demo_vector, demo_weights, plain_matvec, GcService, ServeConfig};
use max_telemetry::{FlightRecorder, Recorder, TraceContext};
use maxelerator::{remote, AcceleratorConfig, RemoteClient, ResilientClient, RetryPolicy};

const WIDTH: usize = 8;
const ROWS: usize = 3;
const COLS: usize = 3;
const SEED: u64 = 0x0B5E;

/// Client-side frame events per streamed element: EXT send, CIPHER recv,
/// ROUNDS-burst recv. The server's event sequence mirrors it.
const EVENTS_PER_ELEMENT: u64 = 3;
/// Handshake + job admission: HELLO, ACCEPT, JOB, READY.
const HANDSHAKE_EVENTS: u64 = 4;

fn demo_service(mutate: impl FnOnce(&mut ServeConfig)) -> GcService {
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let mut cfg = ServeConfig::new(AcceleratorConfig::new(WIDTH), weights, SEED);
    mutate(&mut cfg);
    GcService::start(cfg)
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The acceptance arc of the tracing tentpole: a job killed mid-flight by
/// a connection cut recovers over redial + RESUME, and afterwards the
/// client's and the server's recorders — two independent snapshots on
/// opposite sides of the wire — stitch into one trace: the client side
/// holds the redial and the RESUME, the server side holds the checkpoint
/// restore, and every event on both sides carries the same trace id.
#[test]
fn stitched_trace_spans_both_sides_of_a_chaos_recovery() {
    let server_rec = Arc::new(Recorder::new());
    let service = demo_service(|cfg| cfg.recorder = Some(Arc::clone(&server_rec)));
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let x = demo_vector(COLS, WIDTH, SEED ^ 5);

    let client_rec = Arc::new(Recorder::new());
    let svc = service.clone();
    let mut dials = 0u64;
    let mut client = ResilientClient::new(
        move || {
            dials += 1;
            let spec = if dials == 1 {
                // First connection dies partway through element 1 of 3.
                FaultSpec::none(SEED).with_cut_after(HANDSHAKE_EVENTS + EVENTS_PER_ELEMENT + 2)
            } else {
                FaultSpec::none(SEED)
            };
            Ok(FaultTransport::new(svc.connect(), spec))
        },
        WIDTH,
        RetryPolicy {
            // The server must notice the dead connection and checkpoint
            // before the RESUME arrives.
            base_backoff_ms: 80,
            ..RetryPolicy::default()
        },
    )
    .with_recorder(Arc::clone(&client_rec));
    let trace = client.trace();
    assert!(trace.is_traced(), "ResilientClient mints a real trace");

    let (y, _) = client.secure_matvec(&x).expect("job survives the cut");
    assert_eq!(y, plain_matvec(&weights, &x));
    assert_eq!(client.stats().resumes, 1, "recovery must go through RESUME");
    client.goodbye();
    let stats = service.shutdown();
    assert_eq!(stats.jobs_resumed, 1);
    assert_eq!(stats.jobs_completed, 1);

    let client_snap = client_rec.snapshot();
    let server_snap = server_rec.snapshot();

    // Matching trace ids on both snapshots: nothing else was traced, so
    // every recorded event on either side belongs to this one trace.
    assert!(!client_snap.traces.is_empty(), "client side recorded spans");
    assert!(!server_snap.traces.is_empty(), "server side recorded spans");
    for event in client_snap.traces.iter().chain(&server_snap.traces) {
        assert_eq!(
            event.trace_id, trace.trace_id,
            "foreign trace id: {event:?}"
        );
        assert_eq!(event.span_id, trace.span_id);
    }

    let client_names: Vec<&str> = client_snap
        .trace_events(trace.trace_id)
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    for needed in [
        "client/connect",
        "client/backoff",
        "client/redial",
        "client/resume",
        "client/job",
    ] {
        assert!(
            client_names.contains(&needed),
            "missing {needed}: {client_names:?}"
        );
    }

    let server_names: Vec<&str> = server_snap
        .trace_events(trace.trace_id)
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    for needed in [
        "server/handshake",
        "server/queue_wait",
        "server/garble",
        "server/stream",
        "server/checkpoint",
        "server/resume_restore",
    ] {
        assert!(
            server_names.contains(&needed),
            "missing {needed}: {server_names:?}"
        );
    }
    // Two connections → two garble requests served for the one job.
    assert!(
        server_names
            .iter()
            .filter(|n| **n == "server/garble")
            .count()
            >= 2,
        "both connections' work is in the trace: {server_names:?}"
    );
}

/// An error-ending session under a faulted transport must leave a flight
/// dump whose final events name the injected fault — and the dump is
/// tagged with the trace id the client put in its HELLO.
#[test]
fn error_session_dumps_flight_events_naming_the_injected_fault() {
    let service = demo_service(|_| {});
    let flight = Arc::new(FlightRecorder::new(64));
    let (server_end, client_end) = Duplex::pair();
    // Fault the server's wire: the shared recorder sees both the frame
    // traffic (via the service's FlightTransport wrapper) and the fault
    // injections, interleaved in arrival order.
    let fault = FaultTransport::new(
        server_end,
        // Survive the handshake, then die on the first EXT receive.
        FaultSpec::none(SEED).with_cut_after(HANDSHAKE_EVENTS + 1),
    )
    .with_flight(Arc::clone(&flight));
    service.serve_transport_with_flight(fault, Arc::clone(&flight));

    let trace = TraceContext::from_ids(0xF11E_DA7A, 9);
    let mut client = RemoteClient::connect_with_trace(client_end, WIDTH, trace).expect("handshake");
    let xs = vec![demo_vector(COLS, WIDTH, SEED ^ 1)];
    let mut progress = client.start_job(&xs).expect("job admitted");
    client
        .run_job(&mut progress)
        .expect_err("the server-side cut must kill the run");

    wait_until("flight dump", || !service.flight_dumps().is_empty());
    let dumps = service.flight_dumps();
    assert_eq!(dumps.len(), 1);
    let dump = &dumps[0];
    assert!(dump.contains("\"maxelerator-flight-v1\""), "{dump}");
    assert!(
        dump.contains(&format!("{:032x}", trace.trace_id)),
        "dump must carry the HELLO's trace id: {dump}"
    );
    assert!(
        dump.contains("\"fault.cut\""),
        "injected fault named: {dump}"
    );
    assert!(dump.contains("\"session.error\""), "{dump}");
    // The narrative ends with the fault and the death, in that order.
    let cut_at = dump.rfind("\"fault.cut\"").expect("cut position");
    let err_at = dump.rfind("\"session.error\"").expect("error position");
    assert!(cut_at < err_at, "fault precedes the session error: {dump}");

    let stats = service.shutdown();
    assert_eq!(stats.sessions_errored, 1);
}

/// The METRICS control frame answers live counters, gauges, and histogram
/// percentiles — mid-session after the handshake, and on a bare
/// connection before any handshake (so an operator can poll a server
/// they cannot authenticate to).
#[test]
fn metrics_frame_serves_counters_gauges_and_percentiles() {
    let server_rec = Arc::new(Recorder::new());
    let service = demo_service(|cfg| cfg.recorder = Some(Arc::clone(&server_rec)));
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);

    let mut client = RemoteClient::connect(service.connect(), WIDTH).expect("handshake");
    let x = demo_vector(COLS, WIDTH, SEED ^ 2);
    let (y, _) = client.secure_matvec(&x).expect("job");
    assert_eq!(y, plain_matvec(&weights, &x));

    // Feed the recorder a known distribution so the percentile section has
    // something exact to serve.
    for v in 1..=100u64 {
        server_rec.record("demo.latency_ns", v);
    }

    let body = client.metrics().expect("mid-session METRICS");
    assert!(body.contains("\"maxelerator-metrics-v1\""), "{body}");
    assert!(body.contains("\"jobs_completed\":1"), "{body}");
    assert!(body.contains("\"queue_depth\""), "{body}");
    assert!(body.contains("\"demo.latency_ns\""), "{body}");
    // p50 of 1..=100 in power-of-two buckets: bucket [32,64) upper bound;
    // p99 clamps to the observed max.
    assert!(body.contains("\"p50\":63"), "{body}");
    assert!(body.contains("\"p99\":100"), "{body}");
    assert!(
        body.len() < 1 << 20,
        "METRICS body stays under the frame cap"
    );
    client.goodbye();

    // Pre-handshake: a bare connection can poll metrics without ever
    // sending HELLO.
    let mut bare = service.connect();
    let body = remote::fetch_metrics(&mut bare).expect("pre-handshake METRICS");
    assert!(body.contains("\"maxelerator-metrics-v1\""), "{body}");
    assert!(body.contains("\"sessions_started\""), "{body}");
    drop(bare);

    // A recorder-less service still answers, with percentiles null.
    let plain = demo_service(|_| {});
    let mut bare = plain.connect();
    let body = remote::fetch_metrics(&mut bare).expect("recorder-less METRICS");
    assert!(body.contains("\"percentiles\":null"), "{body}");
    drop(bare);
    plain.shutdown();

    service.shutdown();
}
