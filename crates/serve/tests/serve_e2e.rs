//! End-to-end service tests: transcript parity between transports,
//! concurrent TCP sessions, typed backpressure, hostile peers, drain,
//! and idle reaping.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use max_gc::{FramedTcp, Transport};
use max_serve::{
    demo_vector, demo_weights, listen_tcp, plain_matvec, GcService, RecordingTransport, ServeConfig,
};
use maxelerator::remote::{recv_control, send_control, ControlMsg, PROTOCOL_VERSION};
use maxelerator::{AcceleratorConfig, AcceleratorError, RemoteClient};

const WIDTH: usize = 8;
const ROWS: usize = 3;
const COLS: usize = 4;
const SEED: u64 = 0xD05E;

fn demo_service(mutate: impl FnOnce(&mut ServeConfig)) -> GcService {
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let mut cfg = ServeConfig::new(AcceleratorConfig::new(WIDTH), weights, SEED);
    mutate(&mut cfg);
    GcService::start(cfg)
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Runs the same two jobs through a recording client and returns the full
/// wire transcript (sent frames with kinds, received frames).
///
/// The trace context is pinned: `connect` mints fresh OS entropy into the
/// HELLO frame, which would (correctly) diverge the transcripts this file
/// compares byte-for-byte.
fn run_recorded_session<T: Transport>(transport: T) -> (RecordingTransport<T>, Vec<Vec<i64>>) {
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let mut client = RemoteClient::connect_with_trace(
        RecordingTransport::new(transport),
        WIDTH,
        max_telemetry::TraceContext::from_ids(0xE2E, 7),
    )
    .expect("handshake");
    let mut results = Vec::new();
    for job in 0..2u64 {
        let x = demo_vector(COLS, WIDTH, SEED ^ job);
        let (y, _) = client.secure_matvec(&x).expect("matvec");
        assert_eq!(y, plain_matvec(&weights, &x));
        results.push(y);
    }
    (client.goodbye(), results)
}

#[test]
fn tcp_and_duplex_transcripts_are_bit_identical() {
    // Two fresh services, same seed: each serves exactly one session, so
    // both sessions get id 0 and thus identical derived seeds.
    // Deterministic resume tokens keep the ACCEPT frames comparable
    // (production tokens are fresh OS entropy per session).
    let duplex_service = demo_service(|cfg| cfg.deterministic_resume_tokens = true);
    let (duplex_rec, duplex_results) = run_recorded_session(duplex_service.connect());
    duplex_service.shutdown();

    let tcp_service = demo_service(|cfg| cfg.deterministic_resume_tokens = true);
    let handle = listen_tcp(tcp_service, "127.0.0.1:0").expect("bind");
    let tcp = FramedTcp::connect(handle.addr()).expect("connect");
    let (tcp_rec, tcp_results) = run_recorded_session(tcp);
    handle.shutdown();

    assert_eq!(duplex_results, tcp_results);
    // Same frames, same kinds, same bytes, same order — in both directions.
    assert_eq!(duplex_rec.sent_frames().len(), tcp_rec.sent_frames().len());
    for (d, t) in duplex_rec.sent_frames().iter().zip(tcp_rec.sent_frames()) {
        assert_eq!(d.0, t.0, "sent frame kind diverged");
        assert_eq!(d.1, t.1, "sent frame bytes diverged");
    }
    assert_eq!(
        duplex_rec.received_frames(),
        tcp_rec.received_frames(),
        "received transcript diverged between Duplex and TCP"
    );
    assert!(
        duplex_rec.received_frames().len() >= 2 * (1 + COLS),
        "transcript suspiciously short"
    );
}

#[test]
fn four_concurrent_tcp_sessions_all_correct() {
    let service = demo_service(|cfg| {
        cfg.workers = 2;
    });
    let handle = listen_tcp(service, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);

    std::thread::scope(|scope| {
        for s in 0..4u64 {
            let weights = &weights;
            scope.spawn(move || {
                let tcp = FramedTcp::connect(addr).expect("connect");
                let mut client = RemoteClient::connect(tcp, WIDTH).expect("handshake");
                // One matvec and one 2-column matmul per session.
                let x = demo_vector(COLS, WIDTH, SEED ^ (s << 8));
                loop {
                    match client.secure_matvec(&x) {
                        Ok((y, _)) => {
                            assert_eq!(y, plain_matvec(weights, &x));
                            break;
                        }
                        Err(AcceleratorError::Busy { retry_after_ms }) => std::thread::sleep(
                            Duration::from_millis(u64::from(retry_after_ms.max(1))),
                        ),
                        Err(e) => panic!("session {s}: {e}"),
                    }
                }
                let xs = vec![
                    demo_vector(COLS, WIDTH, SEED ^ (s << 8) ^ 1),
                    demo_vector(COLS, WIDTH, SEED ^ (s << 8) ^ 2),
                ];
                loop {
                    match client.secure_matmul(&xs) {
                        Ok((ys, _)) => {
                            for (x, y) in xs.iter().zip(&ys) {
                                assert_eq!(y, &plain_matvec(weights, x));
                            }
                            break;
                        }
                        Err(AcceleratorError::Busy { retry_after_ms }) => std::thread::sleep(
                            Duration::from_millis(u64::from(retry_after_ms.max(1))),
                        ),
                        Err(e) => panic!("session {s}: {e}"),
                    }
                }
                client.goodbye();
            });
        }
    });

    let stats = handle.shutdown();
    assert_eq!(stats.sessions_started, 4);
    assert_eq!(stats.sessions_errored, 0);
    assert_eq!(
        stats.jobs_completed, 8,
        "4 sessions x (1 matvec + 1 matmul)"
    );
}

#[test]
fn overload_returns_typed_busy_and_recovers() {
    let service = demo_service(|cfg| {
        cfg.workers = 1;
        cfg.queue_capacity = 2;
        cfg.retry_after_ms = 7;
        cfg.start_paused = true;
    });
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);

    // Two sessions fill the paused queue...
    let service_ref = &service;
    let weights_ref = &weights;
    std::thread::scope(|scope| {
        for s in 0..2u64 {
            let transport = service_ref.connect();
            scope.spawn(move || {
                let mut client = RemoteClient::connect(transport, WIDTH).expect("handshake");
                let x = demo_vector(COLS, WIDTH, SEED ^ s);
                let (y, _) = client.secure_matvec(&x).expect("queued job");
                assert_eq!(y, plain_matvec(weights_ref, &x));
                client.goodbye();
            });
        }
        wait_until("queue to fill", || service_ref.queue_depth() == 2);

        // ...so the third gets a typed BUSY with the configured retry hint,
        // not an OOM, panic, or hang.
        let mut third = RemoteClient::connect(service_ref.connect(), WIDTH).expect("handshake");
        let x = demo_vector(COLS, WIDTH, SEED ^ 99);
        match third.secure_matvec(&x) {
            Err(AcceleratorError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 7),
            other => panic!("expected Busy, got {other:?}"),
        }

        // After resuming the units, a retry on the same session succeeds.
        service_ref.resume_workers();
        let (y, _) = third.secure_matvec(&x).expect("retry after busy");
        assert_eq!(y, plain_matvec(weights_ref, &x));
        third.goodbye();
    });

    let stats = service.shutdown();
    assert_eq!(stats.busy_rejections, 1);
    assert_eq!(stats.jobs_completed, 3);
    assert_eq!(stats.sessions_errored, 0);
}

#[test]
fn hostile_frames_do_not_kill_the_service() {
    let service = demo_service(|_| {});
    let handle = listen_tcp(service, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    // Oversized length prefix: header promises 4 GiB; the server must
    // reject it before allocating.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&[0u8]).expect("kind");
        stream.write_all(&u32::MAX.to_be_bytes()).expect("len");
        // Server drops the session; our next read sees EOF.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(stream.read(&mut buf).expect("read"), 0, "expected EOF");
    }

    // Truncated frame: header promises 64 bytes, then the peer vanishes.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&[0u8]).expect("kind");
        stream.write_all(&64u32.to_be_bytes()).expect("len");
        stream.write_all(&[0xAB; 10]).expect("partial payload");
    }

    // Mid-job disconnect: complete the handshake, request a job, then
    // vanish right after READY while the server is mid-stream.
    {
        let mut tcp = FramedTcp::connect(addr).expect("connect");
        send_control(
            &mut tcp,
            &ControlMsg::Hello {
                version: PROTOCOL_VERSION,
                bit_width: WIDTH as u32,
                trace: max_telemetry::TraceContext::none(),
            },
        )
        .expect("hello");
        match recv_control(&mut tcp).expect("accept") {
            ControlMsg::Accept { .. } => {}
            other => panic!("expected ACCEPT, got {other:?}"),
        }
        send_control(
            &mut tcp,
            &ControlMsg::JobRequest {
                columns: 1,
                model_id: None,
            },
        )
        .expect("job");
        match recv_control(&mut tcp).expect("ready") {
            ControlMsg::Ready { .. } => {}
            other => panic!("expected READY, got {other:?}"),
        }
        drop(tcp);
    }

    // The service shrugged all three off: a fresh, honest session works.
    wait_until("hostile sessions to be accounted", || {
        handle.service().stats().sessions_errored >= 2
    });
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let tcp = FramedTcp::connect(addr).expect("connect");
    let mut client = RemoteClient::connect(tcp, WIDTH).expect("handshake");
    let x = demo_vector(COLS, WIDTH, SEED ^ 5);
    let (y, _) = client.secure_matvec(&x).expect("honest session");
    assert_eq!(y, plain_matvec(&weights, &x));
    client.goodbye();

    let stats = handle.shutdown();
    assert_eq!(stats.sessions_started, 4);
    // Oversized frame and mid-job disconnect are session errors; the
    // truncated pre-handshake stream is a clean disconnect.
    assert_eq!(stats.sessions_errored, 2);
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn drain_rejects_new_sessions_with_typed_reason() {
    let service = demo_service(|_| {});

    // A pre-drain session works.
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let mut client = RemoteClient::connect(service.connect(), WIDTH).expect("handshake");
    let x = demo_vector(COLS, WIDTH, SEED);
    let (y, _) = client.secure_matvec(&x).expect("pre-drain job");
    assert_eq!(y, plain_matvec(&weights, &x));
    client.goodbye();

    service.drain();
    assert!(service.is_draining());
    match RemoteClient::connect(service.connect(), WIDTH) {
        Err(AcceleratorError::Rejected { reason }) => {
            assert!(reason.contains("drain"), "unexpected reason: {reason}")
        }
        other => panic!("expected Rejected, got {:?}", other.map(|_| "client")),
    }

    let stats = service.shutdown();
    assert_eq!(stats.sessions_errored, 0);
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn idle_tcp_sessions_are_reaped() {
    let service = demo_service(|cfg| {
        cfg.idle_timeout = Some(Duration::from_millis(100));
    });
    let handle = listen_tcp(service, "127.0.0.1:0").expect("bind");

    // Connect and say nothing: the server must hang up on us, not leak the
    // session thread forever.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(stream.read(&mut buf).expect("read"), 0, "expected EOF");

    let stats = handle.shutdown();
    assert_eq!(stats.sessions_started, 1);
    assert_eq!(stats.sessions_errored, 0, "idle reap is a clean close");
}
