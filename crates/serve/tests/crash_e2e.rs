//! Crash end-to-end tests: process death (not just connection death) with
//! durable-journal recovery.
//!
//! The headline invariant extends chaos_e2e's by one failure class: a
//! server that dies *as a process* — `kill -9`, no drop handlers, no
//! flushes beyond what the write-ahead journal already fsync'd — and
//! restarts on the same journal directory gives a reconnecting client
//! RESUME, not REJECT, and the stitched transcript is **bit-identical
//! frame-by-frame** to an uninterrupted run. Damaged journals degrade
//! gracefully: torn tails replay to the last valid record, corrupt
//! segments are quarantined and the affected session gets a typed
//! `REJECT(resume)` while the server boots and serves everything else.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use max_gc::{FaultSpec, FaultTransport, FramedTcp};
use max_serve::{
    demo_vector, demo_weights, plain_matvec, GcService, JournalConfig, RecordingTransport,
    ServeConfig,
};
use maxelerator::{
    AcceleratorConfig, AcceleratorError, RemoteClient, ResilientClient, RetryPolicy,
};

const WIDTH: usize = 8;
const ROWS: usize = 3;
const COLS: usize = 3;
const SEED: u64 = 0xC4A0;

/// Client-side frame events per streamed element (EXT, CIPHER, ROUNDS) and
/// for the handshake (HELLO, ACCEPT, JOB, READY) — same accounting as
/// chaos_e2e.
const EVENTS_PER_ELEMENT: u64 = 3;
const HANDSHAKE_EVENTS: u64 = 4;

fn cut_mid_element(element: u64) -> u64 {
    HANDSHAKE_EVENTS + element * EVENTS_PER_ELEMENT + 2
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crash-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journaled_service(dir: &Path, mutate: impl FnOnce(&mut ServeConfig)) -> GcService {
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let mut cfg = ServeConfig::new(AcceleratorConfig::new(WIDTH), weights, SEED);
    cfg.deterministic_resume_tokens = true;
    let mut journal = JournalConfig::new(dir);
    journal.fsync = false; // in-process tests exercise bytes, not disks
    cfg.journal = Some(journal);
    mutate(&mut cfg);
    GcService::start(cfg)
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The only journal segment file in `dir` (panics if there is not exactly
/// one — the tests keep windows small enough to never rotate mid-job).
fn only_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("journal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "maxj"))
        .collect();
    assert_eq!(segments.len(), 1, "expected exactly one segment");
    segments.remove(0)
}

/// Kill-9 equivalence, deterministically: run a job against a journaled
/// service, cut the wire mid-element, then *abandon the service without
/// any shutdown* — its in-memory registry and all its threads are dead to
/// us, exactly as after `kill -9`. A brand-new service instance on the
/// same journal directory must replay the checkpoints and serve RESUME,
/// and the stitched transcript must be bit-identical to an uninterrupted
/// reference run.
#[test]
fn journal_replay_after_process_loss_resumes_bit_identical() {
    let xs = vec![
        demo_vector(COLS, WIDTH, SEED ^ 1),
        demo_vector(COLS, WIDTH, SEED ^ 2),
    ];
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let expected: Vec<Vec<i64>> = xs.iter().map(|x| plain_matvec(&weights, x)).collect();
    let elements = xs.len() * ROWS;

    // Reference: uninterrupted run, fresh service, same seeds, same pinned
    // trace — bit-comparable because resume tokens are deterministic.
    let trace = max_telemetry::TraceContext::from_ids(0xB17, 0x1D);
    let ref_dir = temp_dir("ref");
    let ref_service = journaled_service(&ref_dir, |_| {});
    let mut ref_client = RemoteClient::connect_with_trace(
        RecordingTransport::new(ref_service.connect()),
        WIDTH,
        trace,
    )
    .expect("reference handshake");
    let (ref_ys, _) = ref_client.secure_matmul(&xs).expect("reference job");
    assert_eq!(ref_ys, expected);
    let ref_rec = ref_client.goodbye();
    ref_service.shutdown();
    let ref_sent = ref_rec.sent_frames();
    let ref_recv = ref_rec.received_frames();
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Crash run: wire dies partway through element 2 of 6, then the whole
    // first service instance is abandoned cold.
    let dir = temp_dir("replay");
    let first_incarnation = journaled_service(&dir, |_| {});
    let fault = FaultTransport::new(
        RecordingTransport::new(first_incarnation.connect()),
        FaultSpec::none(SEED).with_cut_after(cut_mid_element(2)),
    );
    let mut client =
        RemoteClient::connect_with_trace(fault, WIDTH, trace).expect("crash handshake");
    let mut progress = client.start_job(&xs).expect("job admitted");
    client
        .run_job(&mut progress)
        .expect_err("the cut must kill the run");
    assert_eq!(progress.elements_done(), 2);
    let (dead, state) = client.into_parts();
    let rec1 = dead.into_inner();
    let conn1_sent = rec1.sent_frames().to_vec();
    let conn1_recv = rec1.received_frames().to_vec();
    drop(rec1);
    // The journal already holds every element boundary — written *before*
    // the boundary's frames went out — so there is nothing to wait for.
    // The dead instance is never shut down: no flush, no drain, no BYE.
    let journal = first_incarnation.journal().expect("journal configured");
    assert!(journal.appends() >= 3, "boundaries 0..=2 journaled");
    drop(first_incarnation);

    // Second incarnation: same directory, fresh process state.
    let second_incarnation = journaled_service(&dir, |_| {});
    let replay = second_incarnation.journal_replay();
    assert!(replay.records_applied >= 3, "replayed the crash run");
    assert_eq!(replay.sessions, 1, "one interrupted session restored");
    assert!(replay.quarantined.is_empty());
    assert_eq!(second_incarnation.resume_checkpoints(), 1);

    let mut client =
        RemoteClient::reattach(RecordingTransport::new(second_incarnation.connect()), state);
    client
        .resume_job(&mut progress)
        .expect("RESUME accepted after restart");
    client.run_job(&mut progress).expect("resumed run");
    let (ys, transcript) = progress.into_result();
    assert_eq!(ys, expected, "resumed job must be correct");
    assert_eq!(ys, ref_ys, "resumed job must match the uninterrupted run");
    assert_eq!(transcript.elements, elements);
    let rec2 = client.goodbye();
    let conn2_sent = rec2.sent_frames();
    let conn2_recv = rec2.received_frames();

    // Stitch and diff, frame by frame, against the uninterrupted run.
    // Down direction: ACCEPT + READY + two completed elements' data (+ the
    // partial element's CIPHER) on conn1; READY + elements 2..6 + STATS on
    // conn2.
    assert_eq!(conn1_recv[0], ref_recv[0], "ACCEPT diverged across restart");
    assert_eq!(conn1_recv[1], ref_recv[1], "READY diverged");
    assert_eq!(
        &conn1_recv[2..2 + 2 * 2],
        &ref_recv[2..2 + 2 * 2],
        "pre-crash element data diverged"
    );
    assert_eq!(conn2_recv[0], ref_recv[1], "resumed READY diverged");
    assert_eq!(
        &conn2_recv[1..],
        &ref_recv[2 + 2 * 2..],
        "post-restart data (elements 2..6 + STATS) diverged"
    );

    // Up direction: stitched EXT stream matches, and the rolled-back EXT
    // replays bit-identically.
    assert_eq!(conn1_sent[0].1, ref_sent[0].1, "HELLO diverged");
    assert_eq!(conn1_sent[1].1, ref_sent[1].1, "JOB diverged");
    assert_eq!(conn1_sent[2].1, ref_sent[2].1);
    assert_eq!(conn1_sent[3].1, ref_sent[3].1);
    assert_eq!(
        conn2_sent[1].1, conn1_sent[4].1,
        "rolled-back EXT must replay bit-identically"
    );
    for (i, frame) in conn2_sent[1..1 + 4].iter().enumerate() {
        assert_eq!(frame.1, ref_sent[4 + i].1, "stitched EXT {i} diverged");
    }

    let stats = second_incarnation.shutdown();
    assert_eq!(stats.jobs_resumed, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(
        second_incarnation.resume_checkpoints(),
        0,
        "checkpoint retired after the resumed job"
    );
    assert_eq!(
        second_incarnation
            .journal()
            .expect("journal configured")
            .live_sessions(),
        0,
        "journal tombstoned after the resumed job"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn tail — the classic kill-9-mid-write artifact — replays to the
/// last valid record. Because every append carries the full two-snapshot
/// window, losing the *final* record still leaves a window covering the
/// client's rollback point, and RESUME succeeds.
#[test]
fn torn_journal_tail_still_resumes() {
    let xs = vec![
        demo_vector(COLS, WIDTH, SEED ^ 1),
        demo_vector(COLS, WIDTH, SEED ^ 2),
    ];
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let expected: Vec<Vec<i64>> = xs.iter().map(|x| plain_matvec(&weights, x)).collect();

    let dir = temp_dir("torn");
    let first = journaled_service(&dir, |_| {});
    let mut client = RemoteClient::connect(
        FaultTransport::new(
            first.connect(),
            FaultSpec::none(SEED).with_cut_after(cut_mid_element(2)),
        ),
        WIDTH,
    )
    .expect("handshake");
    let mut progress = client.start_job(&xs).expect("job admitted");
    client
        .run_job(&mut progress)
        .expect_err("cut kills the run");
    assert_eq!(progress.elements_done(), 2);
    let (dead, state) = client.into_parts();
    drop(dead);
    wait_until("journal to cover the crash window", || {
        first.journal().is_some_and(|j| j.appends() >= 4)
    });
    drop(first);

    // Tear the last record: chop bytes off the segment's end, mid-record.
    let segment = only_segment(&dir);
    let bytes = std::fs::read(&segment).expect("read segment");
    std::fs::write(&segment, &bytes[..bytes.len() - 33]).expect("tear tail");

    let second = journaled_service(&dir, |_| {});
    let replay = second.journal_replay();
    assert!(replay.truncated_tail, "the tear must be detected");
    assert!(
        replay.quarantined.is_empty(),
        "a torn tail is not corruption"
    );
    assert_eq!(replay.sessions, 1);

    let mut client = RemoteClient::reattach(second.connect(), state);
    client
        .resume_job(&mut progress)
        .expect("window in the second-to-last record still covers the rollback");
    client.run_job(&mut progress).expect("resumed run");
    let (ys, _) = progress.into_result();
    assert_eq!(ys, expected);
    client.goodbye();
    let stats = second.shutdown();
    assert_eq!(stats.jobs_resumed, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bit-flip corruption is caught by the CRC, the damaged segment is
/// quarantined (renamed, preserved for forensics), and the server *boots
/// anyway* — the session whose checkpoint was lost gets a typed
/// `REJECT(resume)` and falls back to a fresh restart; new sessions are
/// untouched. Refusing to boot is the one behavior this test forbids.
#[test]
fn corrupt_journal_quarantines_and_rejects_resume_typed() {
    let xs = vec![
        demo_vector(COLS, WIDTH, SEED ^ 1),
        demo_vector(COLS, WIDTH, SEED ^ 2),
    ];
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);

    let dir = temp_dir("corrupt");
    let first = journaled_service(&dir, |_| {});
    let mut client = RemoteClient::connect(
        FaultTransport::new(
            first.connect(),
            FaultSpec::none(SEED).with_cut_after(cut_mid_element(2)),
        ),
        WIDTH,
    )
    .expect("handshake");
    let mut progress = client.start_job(&xs).expect("job admitted");
    client
        .run_job(&mut progress)
        .expect_err("cut kills the run");
    let (dead, state) = client.into_parts();
    drop(dead);
    wait_until("journal to cover the crash window", || {
        first.journal().is_some_and(|j| j.appends() >= 4)
    });
    drop(first);

    // Flip a bit in the *first* record: every record after it is
    // unreachable (the reader cannot re-synchronize), so the whole
    // segment's state is gone — worst case for this session.
    let segment = only_segment(&dir);
    let mut bytes = std::fs::read(&segment).expect("read segment");
    bytes[20] ^= 0x01;
    std::fs::write(&segment, &bytes).expect("corrupt segment");

    let second = journaled_service(&dir, |_| {});
    let replay = second.journal_replay();
    assert_eq!(replay.quarantined.len(), 1, "segment quarantined");
    assert!(replay.quarantined[0].exists(), "evidence preserved");
    assert_eq!(replay.sessions, 0, "no checkpoint survived");

    // The interrupted session's RESUME is refused with the typed reason…
    let mut client = RemoteClient::reattach(second.connect(), state);
    match client.resume_job(&mut progress) {
        Err(AcceleratorError::Rejected { reason }) => {
            assert_eq!(reason, "resume state not found")
        }
        other => panic!("expected typed REJECT(resume), got {other:?}"),
    }

    // …while the server is fully alive: a fresh session serves jobs.
    let mut fresh = RemoteClient::connect(second.connect(), WIDTH).expect("fresh handshake");
    let x = demo_vector(COLS, WIDTH, SEED ^ 7);
    let (y, _) = fresh.secure_matvec(&x).expect("fresh job");
    assert_eq!(y, plain_matvec(&weights, &x));
    fresh.goodbye();
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Real child-process tests: the serve binary, killed for real.
// ---------------------------------------------------------------------

struct ServeChild {
    child: Child,
    addr: String,
}

impl ServeChild {
    /// SIGKILLs the child and reaps it (idempotent).
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn wait(&mut self) -> std::process::ExitStatus {
        self.child.wait().expect("wait on serve child")
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        // A panicking test must not leak a server process.
        self.kill();
    }
}

/// Spawns the serve binary and parses its bound address off stdout.
fn spawn_serve(args: &[&str]) -> ServeChild {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("serve printed a line")
        .expect("readable stdout");
    let addr = first
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unparseable serve banner: {first}"))
        .to_string();
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _line in lines.map_while(Result::ok) {});
    ServeChild { child, addr }
}

/// Spawns serve bound to `addr`, retrying while the previous incarnation's
/// socket clears.
fn respawn_serve(addr: &str, extra: &[&str]) -> ServeChild {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut args = vec!["--addr", addr];
        args.extend_from_slice(extra);
        let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        match lines.next() {
            Some(Ok(first)) if first.contains(" on ") => {
                std::thread::spawn(move || for _line in lines.map_while(Result::ok) {});
                return ServeChild {
                    child,
                    addr: addr.to_string(),
                };
            }
            _ => {
                // Bind failed (address still in TIME_WAIT-ish limbo) and
                // the child exited; reap it and retry.
                let _ = child.wait();
                assert!(Instant::now() < deadline, "could not rebind {addr}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// The full kill-9 story against the real binary: the server crashes (a
/// deterministic `abort()` planted at the Nth journal append — the
/// process dies with no cleanup, indistinguishable from SIGKILL at that
/// instant), a fresh server process restarts on the same port and journal
/// directory, and the resilient client's job rides through on RESUME —
/// not restart — with a correct result.
#[test]
fn killed_server_process_restarts_and_client_resumes() {
    let dir = temp_dir("child-abort");
    let dir_str = dir.to_string_lossy().to_string();

    // Crash right after journaling boundary 3: mid-job, two elements
    // delivered to the client, the third's CIPHER never sent.
    let mut first = spawn_serve(&[
        "--addr",
        "127.0.0.1:0",
        "--journal-dir",
        &dir_str,
        "--crash-after-appends",
        "4",
        "--seed",
        "42",
    ]);
    let addr = first.addr.clone();

    let weights = demo_weights(4, 4, 8, 42);
    let xs: Vec<Vec<i64>> = (0..2).map(|i| demo_vector(4, 8, 42 ^ (i + 1))).collect();
    let expected: Vec<Vec<i64>> = xs.iter().map(|x| plain_matvec(&weights, x)).collect();

    // The client runs concurrently with the crash + restart. No step
    // timeout: a killed server surfaces as a prompt transport error (RST /
    // EOF), and job admission garbles the whole job before READY — slow in
    // debug builds — so a deadline would only add spurious redials.
    let client_addr = addr.clone();
    let client_thread = std::thread::spawn(move || {
        let mut client = ResilientClient::new(
            move || FramedTcp::connect(&client_addr).map_err(AcceleratorError::from),
            8,
            RetryPolicy {
                max_attempts: 60,
                base_backoff_ms: 50,
                max_backoff_ms: 400,
                step_timeout: None,
                jitter_seed: 7,
                integrity_retries: 4,
            },
        );
        let ys = client.secure_matmul(&xs).expect("job survives the crash").0;
        let stats = client.stats().clone();
        client.goodbye();
        (ys, stats)
    });

    // The crash is self-inflicted and deterministic; wait for the corpse.
    let status = first.wait();
    assert!(
        !status.success(),
        "the server must die by abort, not exit 0"
    );

    // Restart on the same port and journal directory, crash disarmed.
    let second = respawn_serve(&addr, &["--journal-dir", &dir_str, "--seed", "42"]);

    let (ys, stats) = client_thread.join().expect("client thread");
    assert_eq!(ys, expected, "post-crash result must be correct");
    assert!(
        stats.resumes >= 1,
        "recovery must go through RESUME, stats: {stats:?}"
    );
    assert_eq!(
        stats.restarts, 0,
        "a journaled server must never force a restart, stats: {stats:?}"
    );

    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An actual `SIGKILL` delivered mid-job from outside, timed off the
/// journal segment's growth rather than a sleep, then the same
/// restart-and-resume contract.
#[test]
fn sigkill_mid_job_restarts_and_client_resumes() {
    let dir = temp_dir("child-kill9");
    let dir_str = dir.to_string_lossy().to_string();

    let mut first = spawn_serve(&["--addr", "127.0.0.1:0", "--journal-dir", &dir_str]);
    let addr = first.addr.clone();

    let weights = demo_weights(4, 4, 8, 42);
    // A long job — 32 columns × 4 rows = 128 elements, each fsync'd — so
    // the kill window is wide.
    let xs: Vec<Vec<i64>> = (0..32).map(|i| demo_vector(4, 8, 42 ^ (i + 1))).collect();
    let expected: Vec<Vec<i64>> = xs.iter().map(|x| plain_matvec(&weights, x)).collect();

    // No step timeout — see killed_server_process_restarts_and_client_resumes.
    let client_addr = addr.clone();
    let client_xs = xs.clone();
    let client_thread = std::thread::spawn(move || {
        let mut client = ResilientClient::new(
            move || FramedTcp::connect(&client_addr).map_err(AcceleratorError::from),
            8,
            RetryPolicy {
                max_attempts: 60,
                base_backoff_ms: 50,
                max_backoff_ms: 400,
                step_timeout: None,
                jitter_seed: 11,
                integrity_retries: 4,
            },
        );
        let ys = client
            .secure_matmul(&client_xs)
            .expect("job survives SIGKILL")
            .0;
        let stats = client.stats().clone();
        client.goodbye();
        (ys, stats)
    });

    // Kill once the journal shows real mid-job progress: each checkpoint
    // record is ~1.1 KiB, so 20 KiB ≈ element boundary 17 of 128 —
    // comfortably mid-job, comfortably before the end (the first rotation
    // is at append 64, long after the kill lands).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let grown = std::fs::read_dir(&dir).ok().and_then(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "maxj"))
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .max()
        });
        if grown.is_some_and(|len| len > 20_000) {
            break;
        }
        assert!(Instant::now() < deadline, "journal never grew mid-job");
        std::thread::sleep(Duration::from_millis(2));
    }
    first.kill();

    let second = respawn_serve(&addr, &["--journal-dir", &dir_str]);

    let (ys, stats) = client_thread.join().expect("client thread");
    assert_eq!(ys, expected, "post-SIGKILL result must be correct");
    assert!(
        stats.resumes >= 1,
        "recovery must go through RESUME, stats: {stats:?}"
    );
    assert_eq!(stats.restarts, 0, "stats: {stats:?}");

    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM is the *graceful* sibling: the daemon drains (flushes the
/// journal, lets sessions wind down) and exits 0 instead of dying
/// mid-write.
#[test]
fn sigterm_drains_gracefully_and_exits_zero() {
    let dir = temp_dir("child-term");
    let dir_str = dir.to_string_lossy().to_string();

    let mut server = spawn_serve(&[
        "--addr",
        "127.0.0.1:0",
        "--journal-dir",
        &dir_str,
        "--idle-ms",
        "1000",
    ]);

    // A session completes a job cleanly, then disconnects.
    let weights = demo_weights(4, 4, 8, 42);
    let tcp = FramedTcp::connect(&server.addr).expect("connect");
    let mut client = RemoteClient::connect(tcp, 8).expect("handshake");
    let x = demo_vector(4, 8, 43);
    let (y, _) = client.secure_matvec(&x).expect("job");
    assert_eq!(y, plain_matvec(&weights, &x));
    client.goodbye();

    // SIGTERM → drain → exit 0. (std's Child::kill is SIGKILL, so shell
    // out for the graceful signal.)
    let pid = server.child.id().to_string();
    let delivered = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill -TERM")
        .success();
    assert!(delivered, "SIGTERM not delivered");
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        match server.child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None => {
                assert!(Instant::now() < deadline, "drain never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert_eq!(status.code(), Some(0), "graceful drain must exit 0");
    let _ = std::fs::remove_dir_all(&dir);
}
