//! Hostility tests for the durable-checkpoint layer: the checkpoint codec
//! and the journal replay path fed adversarial bytes.
//!
//! The contract under attack: **damaged journal content never panics and
//! never fails a boot**. The codec answers hostile bytes with typed
//! [`CheckpointCodecError`]s; the journal answers damaged segments with
//! truncation (torn tails) or quarantine (corruption), and last-write-wins
//! replay keeps duplicate session ids coherent.

use std::path::{Path, PathBuf};

use max_ot::iknp;
use max_serve::journal::crc32;
use max_serve::resume::{decode_checkpoint, encode_checkpoint, CheckpointCodecError};
use max_serve::{Journal, JournalConfig, SessionCheckpoint};
use maxelerator::remote::derive_seed;
use proptest::prelude::*;

const MAGIC: &[u8; 8] = b"MAXJRNL1";
const KIND_CHECKPOINT: u8 = 1;
const KIND_REMOVE: u8 = 2;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "jhost-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> JournalConfig {
    let mut cfg = JournalConfig::new(dir);
    cfg.fsync = false;
    cfg
}

/// A checkpoint whose OT snapshots genuinely derive from `session_seed`,
/// as the serving layer's do — `decode_checkpoint` rebuilds the sender
/// from that seed, so arbitrary unrelated senders would not round-trip.
fn live_checkpoint(session_id: u64, session_seed: u64, warmup: usize) -> SessionCheckpoint {
    let ot_seed = derive_seed(session_seed, 0x07);
    let (mut sender, mut receiver) = iknp::setup_pair(ot_seed);
    let mut digest = max_crypto::TranscriptDigest::new();
    let mut snapshots = Vec::new();
    for element in 0..warmup {
        let choices: Vec<bool> = (0..32).map(|i| (i + element) % 2 == 0).collect();
        let (msg, _keys) = receiver.prepare(&choices);
        let pairs: Vec<_> = (0..32)
            .map(|i| {
                (
                    max_crypto::Block::new(i as u128),
                    max_crypto::Block::new((i + 77) as u128),
                )
            })
            .collect();
        let _ = sender.send(&msg, &pairs);
        digest.fold(&(element as u64).to_be_bytes());
        snapshots.push((element + 1, sender.clone(), digest.clone()));
    }
    snapshots.drain(..snapshots.len().saturating_sub(2));
    if snapshots.is_empty() {
        snapshots.push((0, sender, digest));
    }
    SessionCheckpoint {
        session_id,
        resume_token: derive_seed(session_seed, 0x7e57),
        session_seed,
        next_job: session_id ^ 3,
        job_id: session_id ^ 2,
        columns: 1 + (session_id % 64) as u32,
        job_seed: derive_seed(session_seed, 0x102),
        model_id: session_id
            .is_multiple_of(2)
            .then(|| derive_seed(session_seed, 0x4d0d)),
        snapshots,
    }
}

/// One wire record exactly as the journal lays it down:
/// `[len][crc32(body)][body]`, body = kind byte + payload.
fn record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut body = vec![kind];
    body.extend_from_slice(payload);
    let mut out = (body.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Writes raw bytes as the journal's first segment and opens it.
fn open_raw(tag: &str, bytes: &[u8]) -> (Journal, max_serve::ReplayReport, PathBuf) {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).expect("create dir");
    std::fs::write(dir.join("journal-000000000000.maxj"), bytes).expect("write segment");
    let (journal, report) =
        Journal::open(config(&dir)).expect("damaged content must not fail open");
    (journal, report, dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Codec round trip: every field and every OT snapshot survives
    /// encode → decode bit-exactly.
    #[test]
    fn codec_round_trips(
        session_id: u64,
        session_seed: u64,
        warmup in 0usize..3,
    ) {
        let original = live_checkpoint(session_id, session_seed, warmup);
        let result = decode_checkpoint(&encode_checkpoint(&original));
        prop_assert!(result.is_ok(), "decode failed: {:?}", result.err());
        let decoded = result.unwrap();
        prop_assert_eq!(decoded.session_id, original.session_id);
        prop_assert_eq!(decoded.resume_token, original.resume_token);
        prop_assert_eq!(decoded.session_seed, original.session_seed);
        prop_assert_eq!(decoded.next_job, original.next_job);
        prop_assert_eq!(decoded.job_id, original.job_id);
        prop_assert_eq!(decoded.columns, original.columns);
        prop_assert_eq!(decoded.job_seed, original.job_seed);
        prop_assert_eq!(decoded.snapshots.len(), original.snapshots.len());
        for ((da, ds, dd), (oa, os, od)) in decoded.snapshots.iter().zip(&original.snapshots) {
            prop_assert_eq!(da, oa);
            prop_assert_eq!(ds.export_state(), os.export_state());
            prop_assert_eq!(dd, od);
        }
    }

    /// Arbitrary bytes never panic the codec: they decode or they return
    /// a typed error.
    #[test]
    fn codec_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = decode_checkpoint(&bytes);
    }

    /// Every strict prefix of a valid record is refused with a typed
    /// error — a truncated record must never decode to a checkpoint.
    #[test]
    fn codec_refuses_every_truncation(
        session_id: u64,
        cut in 0.0f64..1.0,
    ) {
        let bytes = encode_checkpoint(&live_checkpoint(session_id, session_id ^ 0xD1CE, 2));
        let keep = ((bytes.len() - 1) as f64 * cut) as usize;
        prop_assert!(
            decode_checkpoint(&bytes[..keep]).is_err(),
            "a {keep}-byte prefix of a {}-byte record decoded",
            bytes.len()
        );
    }

    /// Trailing garbage after a valid record is refused — silently
    /// ignoring it would let a torn double-write smuggle state.
    #[test]
    fn codec_refuses_trailing_bytes(
        session_id: u64,
        suffix in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut bytes = encode_checkpoint(&live_checkpoint(session_id, session_id ^ 0xFEED, 1));
        let expected_extra = suffix.len();
        bytes.extend_from_slice(&suffix);
        let result = decode_checkpoint(&bytes);
        prop_assert!(result.is_err(), "trailing bytes accepted");
        // The usual refusal is TrailingBytes with an exact count; a suffix
        // may instead masquerade as a bigger field, which is still refused.
        if let Err(CheckpointCodecError::TrailingBytes { extra }) = result {
            prop_assert_eq!(extra, expected_extra);
        }
    }

    /// Arbitrary segment bytes never panic `Journal::open` and never fail
    /// the boot: any damage resolves to truncation or quarantine, and the
    /// journal stays writable afterwards.
    #[test]
    fn replay_never_panics_on_arbitrary_segments(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let (journal, report, dir) = open_raw("arb", &bytes);
        prop_assert!(report.sessions <= 1);
        journal
            .append_checkpoint(&live_checkpoint(99, 0x5EED, 1))
            .expect("journal stays writable after damage");
        drop(journal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn oversized_length_prefix_quarantines() {
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&(2u32 << 20).to_le_bytes()); // 2 MiB > MAX_RECORD_LEN
    bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 64]);
    let (journal, report, dir) = open_raw("oversized", &bytes);
    assert_eq!(
        report.quarantined.len(),
        1,
        "impossible length is corruption"
    );
    assert!(!report.truncated_tail);
    assert_eq!(report.sessions, 0);
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_length_prefix_quarantines() {
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&record(
        KIND_CHECKPOINT,
        &encode_checkpoint(&live_checkpoint(5, 55, 1)),
    ));
    bytes.extend_from_slice(&[0u8; 8]); // len = 0, crc = 0
    let (journal, report, dir) = open_raw("zerolen", &bytes);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(
        report.records_applied, 1,
        "the valid prefix before the damage still applies"
    );
    assert_eq!(report.sessions, 1);
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_segment_is_a_benign_torn_creation() {
    let (journal, report, dir) = open_raw("empty", &[]);
    assert!(
        report.quarantined.is_empty(),
        "an empty file is a torn creation, not corruption"
    );
    assert!(report.truncated_tail);
    assert_eq!(report.sessions, 0);
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_magic_quarantines() {
    let (journal, report, dir) = open_raw("magic", b"NOTJRNL1 something else entirely");
    assert_eq!(report.quarantined.len(), 1);
    assert!(
        report.quarantined[0].exists(),
        "forensic evidence preserved"
    );
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_crc_quarantines_but_keeps_valid_prefix() {
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&record(
        KIND_CHECKPOINT,
        &encode_checkpoint(&live_checkpoint(1, 11, 2)),
    ));
    let tail_start = bytes.len();
    bytes.extend_from_slice(&record(
        KIND_CHECKPOINT,
        &encode_checkpoint(&live_checkpoint(2, 22, 2)),
    ));
    bytes[tail_start + 20] ^= 0x40; // flip one bit inside record 2's body
    let (journal, report, dir) = open_raw("crc", &bytes);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.records_applied, 1);
    assert_eq!(report.sessions, 1, "record 1 survives, record 2 is gone");
    assert_eq!(journal.live_checkpoints()[0].session_id, 1);
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_session_ids_replay_last_write_wins() {
    let mut first = live_checkpoint(7, 0x700, 1);
    first.next_job = 1;
    let mut second = live_checkpoint(7, 0x700, 2);
    second.next_job = 9;
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&record(KIND_CHECKPOINT, &encode_checkpoint(&first)));
    bytes.extend_from_slice(&record(KIND_CHECKPOINT, &encode_checkpoint(&second)));
    let (journal, report, dir) = open_raw("dupes", &bytes);
    assert_eq!(report.records_applied, 2);
    assert_eq!(report.sessions, 1, "one session, not two");
    let live = journal.live_checkpoints();
    assert_eq!(live.len(), 1);
    assert_eq!(live[0].next_job, 9, "the later record must win");
    assert_eq!(live[0].snapshots.len(), 2);
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remove_records_drop_sessions_and_malformed_removes_quarantine() {
    // A checkpoint followed by its tombstone replays to an empty live set.
    let checkpoint = live_checkpoint(3, 0x300, 1);
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&record(KIND_CHECKPOINT, &encode_checkpoint(&checkpoint)));
    bytes.extend_from_slice(&record(KIND_REMOVE, &3u64.to_le_bytes()));
    let (journal, report, dir) = open_raw("remove", &bytes);
    assert_eq!(report.records_applied, 2);
    assert_eq!(report.sessions, 0, "tombstone must erase the checkpoint");
    assert!(report.quarantined.is_empty());
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);

    // A CRC-valid remove with the wrong payload width is structural
    // corruption: quarantine, not a guess at the session id.
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&record(KIND_REMOVE, &[1, 2, 3]));
    let (journal, report, dir) = open_raw("badremove", &bytes);
    assert_eq!(report.quarantined.len(), 1);
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_record_kind_quarantines() {
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&record(0x7F, &[0u8; 16]));
    let (journal, report, dir) = open_raw("kind", &bytes);
    assert_eq!(
        report.quarantined.len(),
        1,
        "a future format must not be silently dropped"
    );
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_mid_record_keeps_every_earlier_record() {
    let mut bytes = MAGIC.to_vec();
    for session in 0..3u64 {
        bytes.extend_from_slice(&record(
            KIND_CHECKPOINT,
            &encode_checkpoint(&live_checkpoint(session, session * 101, 2)),
        ));
    }
    let torn = &bytes[..bytes.len() - 17];
    let (journal, report, dir) = open_raw("torn", torn);
    assert!(
        report.truncated_tail,
        "mid-record EOF on the last segment is a torn tail"
    );
    assert!(report.quarantined.is_empty());
    assert_eq!(
        report.sessions, 2,
        "sessions 0 and 1 survive, 2 was mid-write"
    );
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}
