//! Chaos end-to-end tests: deterministic mid-job kills with RESUME
//! stitching, the self-healing client riding through cuts and lost
//! checkpoints, breaker-driven load shedding, heartbeats, and a seeded
//! fault soak over real TCP.
//!
//! The headline invariant: a job interrupted by a connection cut and
//! continued over RESUME produces a stitched wire transcript that is
//! **bit-identical** to an uninterrupted run — same frames, same bytes,
//! same order, minus only the rolled-back partial element.

use std::time::{Duration, Instant};

use max_gc::channel::Duplex;
use max_gc::{FaultSpec, FaultTransport, FramedTcp};
use max_rng::HealthMonitor;
use max_serve::{
    demo_vector, demo_weights, listen_tcp, plain_matvec, GcService, RecordingTransport, ServeConfig,
};
use maxelerator::{
    AcceleratorConfig, AcceleratorError, RemoteClient, ResilientClient, RetryPolicy,
};

const WIDTH: usize = 8;
const ROWS: usize = 3;
const COLS: usize = 3;
const SEED: u64 = 0xC4A0;

/// Client-side frame events per streamed element: 1 EXT send, 1 CIPHER
/// receive, 1 ROUNDS-burst receive (v3 coalesces all rounds into it).
const EVENTS_PER_ELEMENT: u64 = 3;
/// Handshake + job admission: HELLO send, ACCEPT recv, JOB send, READY recv.
const HANDSHAKE_EVENTS: u64 = 4;

fn demo_service(mutate: impl FnOnce(&mut ServeConfig)) -> GcService {
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let mut cfg = ServeConfig::new(AcceleratorConfig::new(WIDTH), weights, SEED);
    mutate(&mut cfg);
    GcService::start(cfg)
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A deterministic cut that dies partway through element `element`: the
/// client survives the handshake, `element` full elements, and the EXT +
/// CIPHER of the next one, then loses the connection on the ROUNDS receive.
fn cut_mid_element(element: u64) -> u64 {
    HANDSHAKE_EVENTS + element * EVENTS_PER_ELEMENT + 2
}

#[test]
fn killed_mid_job_resumes_bit_identical_to_uninterrupted_run() {
    let xs = vec![
        demo_vector(COLS, WIDTH, SEED ^ 1),
        demo_vector(COLS, WIDTH, SEED ^ 2),
    ];
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let expected: Vec<Vec<i64>> = xs.iter().map(|x| plain_matvec(&weights, x)).collect();

    // Reference: the same job, uninterrupted, on a fresh service with the
    // same base seed (both runs are session 0, so every derived seed —
    // session, OT, job — is identical; resume tokens are deterministic
    // here too so the ACCEPT frames stay bit-comparable). Both runs pin
    // the same trace context: HELLO carries it on the wire, so minted
    // entropy would make the handshakes diverge byte-for-byte.
    let trace = max_telemetry::TraceContext::from_ids(0xB17, 0x1D);
    let ref_service = demo_service(|cfg| cfg.deterministic_resume_tokens = true);
    let mut ref_client = RemoteClient::connect_with_trace(
        RecordingTransport::new(ref_service.connect()),
        WIDTH,
        trace,
    )
    .expect("reference handshake");
    let (ref_ys, _) = ref_client.secure_matmul(&xs).expect("reference job");
    assert_eq!(ref_ys, expected);
    let ref_rec = ref_client.goodbye();
    ref_service.shutdown();
    let ref_sent = ref_rec.sent_frames();
    let ref_recv = ref_rec.received_frames();
    // HELLO, JOB, one EXT per element, BYE / ACCEPT, READY, (CIPHER +
    // ROUNDS burst) per element, STATS.
    let elements = xs.len() * ROWS;
    assert_eq!(ref_sent.len(), 2 + elements + 1);
    assert_eq!(ref_recv.len(), 2 + elements * 2 + 1);

    // Chaos run: the wire dies partway through element 2 of 6.
    let service = demo_service(|cfg| cfg.deterministic_resume_tokens = true);
    let fault = FaultTransport::new(
        RecordingTransport::new(service.connect()),
        FaultSpec::none(SEED).with_cut_after(cut_mid_element(2)),
    );
    let mut client =
        RemoteClient::connect_with_trace(fault, WIDTH, trace).expect("chaos handshake");
    let mut progress = client.start_job(&xs).expect("job admitted");
    client
        .run_job(&mut progress)
        .expect_err("the cut must kill the run");
    assert_eq!(
        progress.elements_done(),
        2,
        "two elements completed before the cut"
    );
    let (dead, state) = client.into_parts();
    let rec1 = dead.into_inner();
    let conn1_sent = rec1.sent_frames().to_vec();
    let conn1_recv = rec1.received_frames().to_vec();
    // Release the dead connection so the server session observes the
    // disconnect and deposits its round checkpoint.
    drop(rec1);
    wait_until("checkpoint to be saved", || {
        service.stats().checkpoints_saved >= 1
    });
    assert_eq!(service.resume_checkpoints(), 1);

    // Reconnect, RESUME, and finish the job on a second connection.
    let mut client = RemoteClient::reattach(RecordingTransport::new(service.connect()), state);
    client.resume_job(&mut progress).expect("RESUME accepted");
    client.run_job(&mut progress).expect("resumed run");
    let (ys, transcript) = progress.into_result();
    assert_eq!(ys, expected, "resumed job must be correct");
    assert_eq!(ys, ref_ys, "resumed job must match the uninterrupted run");
    assert_eq!(transcript.elements, elements);
    let rec2 = client.goodbye();
    let conn2_sent = rec2.sent_frames();
    let conn2_recv = rec2.received_frames();

    // Stitch the two connections' transcripts and compare bit-for-bit.
    //
    // Down direction (server → client): conn1 carries ACCEPT, READY, and
    // the data of the two completed elements plus the CIPHER of the
    // rolled-back partial element; conn2 carries READY and everything from
    // the rollback point on.
    assert_eq!(conn1_recv.len(), 2 + 2 * 2 + 1);
    assert_eq!(conn1_recv[0], ref_recv[0], "ACCEPT diverged");
    assert_eq!(conn1_recv[1], ref_recv[1], "READY diverged");
    let completed = &conn1_recv[2..2 + 2 * 2];
    assert_eq!(
        completed,
        &ref_recv[2..2 + 2 * 2],
        "pre-cut element data diverged"
    );
    assert_eq!(conn2_recv[0], ref_recv[1], "resumed READY diverged");
    assert_eq!(
        &conn2_recv[1..],
        &ref_recv[2 + 2 * 2..],
        "post-resume data (elements 2..6 + STATS) diverged"
    );

    // Up direction (client → server): HELLO and JOB match, the stitched
    // EXT stream (elements 0,1 from conn1, 2..6 from conn2) matches, and
    // the replayed EXT of the rolled-back element is bit-identical to the
    // one that died on the wire.
    assert_eq!(conn1_sent.len(), 2 + 3, "HELLO, JOB, EXT x3");
    assert_eq!(conn1_sent[0].1, ref_sent[0].1, "HELLO diverged");
    assert_eq!(conn1_sent[1].1, ref_sent[1].1, "JOB diverged");
    assert_eq!(conn1_sent[2].1, ref_sent[2].1);
    assert_eq!(conn1_sent[3].1, ref_sent[3].1);
    assert_eq!(
        conn2_sent[1].1, conn1_sent[4].1,
        "rolled-back EXT must replay bit-identically"
    );
    for (i, frame) in conn2_sent[1..1 + 4].iter().enumerate() {
        assert_eq!(frame.1, ref_sent[4 + i].1, "stitched EXT {i} diverged");
    }

    let stats = service.shutdown();
    assert_eq!(stats.jobs_resumed, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.checkpoints_saved, 1);
    assert_eq!(service.resume_checkpoints(), 0, "checkpoint cleaned up");
}

/// Regression: a cut between the last element's data and STATS leaves
/// `elements_done == total_elements` on the client while the server
/// deposits a checkpoint whose snapshot window ends at the final boundary.
/// The client's checkpoints must cover that boundary too — a stale
/// checkpoint from the top of the last iteration would roll the OT
/// receiver back one element while the server restores its sender at the
/// end, silently desyncing every later job on the session.
#[test]
fn killed_before_stats_resumes_and_keeps_session_ot_synced() {
    let xs = vec![
        demo_vector(COLS, WIDTH, SEED ^ 1),
        demo_vector(COLS, WIDTH, SEED ^ 2),
    ];
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let expected: Vec<Vec<i64>> = xs.iter().map(|x| plain_matvec(&weights, x)).collect();
    let elements = (xs.len() * ROWS) as u64;

    // Fault the *server's* transport: its event sequence mirrors the
    // client's (recv HELLO, send ACCEPT, recv JOB, send READY, then
    // EXT/CIPHER/ROUNDs per element), so after the handshake plus every
    // element's data the next event — the STATS send — hits the cut. The
    // failed send makes the server checkpoint at the final boundary while
    // the client, which already has all its data, errors waiting on STATS.
    let service = demo_service(|_| {});
    let (server_end, client_end) = Duplex::pair();
    service.serve_transport(FaultTransport::new(
        server_end,
        FaultSpec::none(SEED).with_cut_after(HANDSHAKE_EVENTS + elements * EVENTS_PER_ELEMENT),
    ));
    let mut client = RemoteClient::connect(client_end, WIDTH).expect("handshake");
    let mut progress = client.start_job(&xs).expect("job admitted");
    client
        .run_job(&mut progress)
        .expect_err("the cut must kill the STATS wait");
    assert_eq!(
        progress.elements_done(),
        elements as usize,
        "every element completed before the cut"
    );
    let (dead, state) = client.into_parts();
    drop(dead);
    wait_until("checkpoint to be saved", || {
        service.stats().checkpoints_saved >= 1
    });

    // Reconnect and resume: only READY + STATS remain to exchange.
    let mut client = RemoteClient::reattach(service.connect(), state);
    client.resume_job(&mut progress).expect("RESUME accepted");
    client.run_job(&mut progress).expect("resumed run");
    let (ys, transcript) = progress.into_result();
    assert_eq!(ys, expected, "resumed job must be correct");
    assert_eq!(transcript.elements, elements as usize);

    // The actual regression check: a follow-up job on the same session
    // only decodes correctly if both sides' OT state stayed aligned
    // through the resume.
    let x2 = demo_vector(COLS, WIDTH, SEED ^ 3);
    let (y2, _) = client.secure_matvec(&x2).expect("follow-up job");
    assert_eq!(
        y2,
        plain_matvec(&weights, &x2),
        "post-resume session must stay OT-synced"
    );
    client.goodbye();

    let stats = service.shutdown();
    assert_eq!(stats.jobs_resumed, 1);
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.checkpoints_saved, 1);
}

#[test]
fn resilient_client_rides_through_a_mid_job_cut() {
    let service = demo_service(|_| {});
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let x = demo_vector(COLS, WIDTH, SEED ^ 9);

    let svc = service.clone();
    let mut dials = 0u64;
    let mut client = ResilientClient::new(
        move || {
            dials += 1;
            let spec = if dials == 1 {
                // First connection dies partway through element 1 of 3.
                FaultSpec::none(SEED).with_cut_after(cut_mid_element(1))
            } else {
                FaultSpec::none(SEED)
            };
            Ok(FaultTransport::new(svc.connect(), spec))
        },
        WIDTH,
        RetryPolicy {
            // Generous first backoff: the server must notice the dead
            // connection and checkpoint before the RESUME arrives.
            base_backoff_ms: 80,
            ..RetryPolicy::default()
        },
    );
    let (y, _) = client.secure_matvec(&x).expect("job survives the cut");
    assert_eq!(y, plain_matvec(&weights, &x));
    let stats = client.stats().clone();
    assert_eq!(stats.resumes, 1, "recovery must go through RESUME");
    assert_eq!(stats.restarts, 0);
    assert_eq!(
        stats.reconnects, 1,
        "initial dial only; recovery reattached"
    );
    client.goodbye();

    let stats = service.shutdown();
    assert_eq!(stats.jobs_resumed, 1);
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn lost_checkpoint_falls_back_to_a_fresh_restart() {
    // Resumption disabled server-side: the checkpoint is never kept, so
    // RESUME gets a typed REJECT and the client restarts from scratch.
    let service = demo_service(|cfg| cfg.resume_capacity = 0);
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);
    let x = demo_vector(COLS, WIDTH, SEED ^ 3);

    let svc = service.clone();
    let mut dials = 0u64;
    let mut client = ResilientClient::new(
        move || {
            dials += 1;
            let spec = if dials == 1 {
                FaultSpec::none(SEED).with_cut_after(cut_mid_element(1))
            } else {
                FaultSpec::none(SEED)
            };
            Ok(FaultTransport::new(svc.connect(), spec))
        },
        WIDTH,
        RetryPolicy {
            base_backoff_ms: 40,
            ..RetryPolicy::default()
        },
    );
    let (y, _) = client.secure_matvec(&x).expect("restart still delivers");
    assert_eq!(y, plain_matvec(&weights, &x));
    let stats = client.stats().clone();
    assert_eq!(stats.resumes, 0, "no checkpoint to resume from");
    assert_eq!(stats.restarts, 1, "job restarted from scratch");
    client.goodbye();

    let stats = service.shutdown();
    assert_eq!(stats.jobs_resumed, 0);
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn tripped_breaker_sheds_typed_and_the_resilient_client_rides_it_out() {
    let service = demo_service(|cfg| {
        cfg.breaker.open_for = Duration::from_millis(120);
        cfg.breaker.retry_after_ms = 15;
    });
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);

    // A session admitted before the trip stays alive but gets BUSY with
    // the breaker's retry hint while the window is open.
    let mut admitted = RemoteClient::connect(service.connect(), WIDTH).expect("handshake");
    service.trip_breaker();
    assert!(service.breaker_open());
    let x = demo_vector(COLS, WIDTH, SEED ^ 4);
    match admitted.secure_matvec(&x) {
        Err(AcceleratorError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 15),
        other => panic!("expected Busy from an open breaker, got {other:?}"),
    }

    // A brand-new handshake gets the typed overload rejection.
    match RemoteClient::connect(service.connect(), WIDTH) {
        Err(AcceleratorError::Rejected { reason }) => {
            assert!(reason.contains("shedding"), "unexpected reason: {reason}")
        }
        other => panic!("expected Rejected, got {:?}", other.map(|_| "client")),
    }

    // The resilient client backs off until the window closes, then lands.
    let svc = service.clone();
    let mut resilient = ResilientClient::new(
        move || Ok(svc.connect()),
        WIDTH,
        RetryPolicy {
            max_attempts: 20,
            base_backoff_ms: 20,
            ..RetryPolicy::default()
        },
    );
    let (y, _) = resilient.secure_matvec(&x).expect("rides out the breaker");
    assert_eq!(y, plain_matvec(&weights, &x));
    assert!(resilient.stats().busy_backoffs >= 1);
    resilient.goodbye();

    // The pre-trip session also recovers once the breaker closes.
    wait_until("breaker to close", || !service.breaker_open());
    let (y, _) = admitted.secure_matvec(&x).expect("post-window retry");
    assert_eq!(y, plain_matvec(&weights, &x));
    admitted.goodbye();

    let stats = service.shutdown();
    assert!(stats.breaker_trips >= 1);
    assert!(stats.shed >= 2, "BUSY shed + handshake shed");
    assert_eq!(stats.busy_rejections, 1);
}

#[test]
fn rng_health_alarm_trips_the_breaker() {
    let service = demo_service(|_| {});
    let mut healthy = HealthMonitor::new();
    // Alternating bits: no repetition or proportion alarm.
    for i in 0..256 {
        healthy.observe(i % 2 == 0);
    }
    assert!(!service.observe_health(&healthy));
    assert!(!service.breaker_open());

    // A stuck-at-one source fires the repetition-count alarm, and the
    // service reacts by shedding load — the paper's RNG health checks
    // gating the fabric, lifted to the serving layer.
    let mut stuck = HealthMonitor::new();
    stuck.observe_all(&[true; 256]);
    assert!(stuck.alarmed());
    assert!(service.observe_health(&stuck));
    assert!(service.breaker_open());
    service.reset_breaker();
    assert!(!service.breaker_open());
    service.shutdown();
}

#[test]
fn heartbeats_keep_a_quiet_session_alive_past_the_idle_deadline() {
    let service = demo_service(|cfg| {
        cfg.idle_timeout = Some(Duration::from_millis(150));
    });
    let handle = listen_tcp(service, "127.0.0.1:0").expect("bind");
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);

    let tcp = FramedTcp::connect(handle.addr()).expect("connect");
    let mut client = RemoteClient::connect(tcp, WIDTH).expect("handshake");
    // Stay quiet for 2.4x the idle deadline, but heartbeat through it.
    for nonce in 0..6u64 {
        std::thread::sleep(Duration::from_millis(60));
        client.ping(nonce).expect("PONG");
    }
    let x = demo_vector(COLS, WIDTH, SEED ^ 6);
    let (y, _) = client.secure_matvec(&x).expect("session still alive");
    assert_eq!(y, plain_matvec(&weights, &x));
    client.goodbye();

    let stats = handle.shutdown();
    assert_eq!(stats.sessions_errored, 0);
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn seeded_soak_over_tcp_under_sustained_faults() {
    // Four concurrent sessions over real TCP, each behind a lossy wire:
    // dropped, truncated, and bit-flipped client frames at fixed seeded
    // rates. Drops and truncations surface as timeouts/disconnects and are
    // healed transparently (reconnect + RESUME/restart). Since v6 every
    // frame is CRC-sealed and the transcript is digest-checked, so a bit
    // flip is *detected* at the framing or integrity layer and healed the
    // same way — it must never reach GC state and decode to wrong
    // plaintext. The soak still verifies every result against plaintext
    // end-to-end and asserts that safety net is never needed.
    const SESSIONS: u64 = 4;
    const JOBS: u64 = 3;
    let service = demo_service(|cfg| {
        cfg.workers = 2;
        cfg.idle_timeout = Some(Duration::from_secs(5));
        // Shorter than the clients' step deadline, so a checkpoint exists
        // by the time the reconnect's RESUME arrives.
        cfg.step_timeout = Some(Duration::from_millis(100));
    });
    let handle = listen_tcp(service, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    let weights = demo_weights(ROWS, COLS, WIDTH, SEED);

    let recoveries = std::thread::scope(|scope| {
        let mut threads = Vec::new();
        for s in 0..SESSIONS {
            let weights = &weights;
            threads.push(scope.spawn(move || {
                let mut dials = 0u64;
                let mut client = ResilientClient::new(
                    move || {
                        dials += 1;
                        // Fresh deterministic schedule per connection.
                        let spec = FaultSpec::none(SEED ^ (s << 32) ^ dials)
                            .with_drops(15)
                            .with_truncation(10)
                            .with_corruption(10)
                            .with_delays(20, 3);
                        Ok(FaultTransport::new(
                            FramedTcp::connect(addr).map_err(AcceleratorError::from)?,
                            spec,
                        ))
                    },
                    WIDTH,
                    RetryPolicy {
                        max_attempts: 25,
                        base_backoff_ms: 10,
                        max_backoff_ms: 200,
                        step_timeout: Some(Duration::from_millis(400)),
                        jitter_seed: SEED ^ s,
                        integrity_retries: 8,
                    },
                );
                let mut wrong_results = 0u64;
                for job in 0..JOBS {
                    let x = demo_vector(COLS, WIDTH, SEED ^ (s << 16) ^ job);
                    let expected = plain_matvec(weights, &x);
                    let mut verified = false;
                    for _try in 0..5 {
                        let (y, _) = client
                            .secure_matvec(&x)
                            .unwrap_or_else(|e| panic!("session {s} job {job}: {e}"));
                        if y == expected {
                            verified = true;
                            break;
                        }
                        // Should be unreachable since v6: flips die at the
                        // CRC seal or the transcript digest, not here.
                        wrong_results += 1;
                    }
                    assert!(verified, "session {s} job {job} never verified");
                }
                let stats = client.stats().clone();
                client.goodbye();
                (stats, wrong_results)
            }));
        }
        let mut total = (0u64, 0u64, 0u64, 0u64);
        for t in threads {
            let (stats, wrong) = t.join().expect("soak session panicked");
            total.0 += stats.resumes;
            total.1 += stats.restarts;
            total.2 += stats.reconnects.saturating_sub(1);
            total.3 += wrong;
        }
        total
    });

    // The service survived the whole storm: a clean session still works.
    let tcp = FramedTcp::connect(addr).expect("connect");
    let mut client = RemoteClient::connect(tcp, WIDTH).expect("post-soak handshake");
    let x = demo_vector(COLS, WIDTH, SEED ^ 0xFF);
    let (y, _) = client.secure_matvec(&x).expect("post-soak job");
    assert_eq!(y, plain_matvec(&weights, &x));
    client.goodbye();

    let stats = handle.shutdown();
    assert!(
        stats.jobs_completed >= SESSIONS * JOBS,
        "all soak jobs (plus retries) completed: {stats:?}"
    );
    // The headline integrity invariant: with every frame sealed and the
    // transcript digest-checked, no corrupted job may ever decode to
    // silently wrong plaintext — corruption is detected and retried, so
    // the end-to-end plaintext check must never fire.
    assert_eq!(
        recoveries.3, 0,
        "corruption slipped past the integrity ladder and produced wrong plaintext"
    );
    // The chosen seeds do inject faults that force recovery; if this ever
    // fails the schedule went soft and the rates should be raised.
    assert!(
        recoveries.0 + recoveries.1 + recoveries.2 > 0,
        "soak exercised no recovery path at all: {recoveries:?}"
    );
}
