//! Property-based tests: circuit semantics must match integer semantics for
//! random operands at random widths.

use max_netlist::{
    decode_signed, decode_unsigned, encode_signed, encode_unsigned, Builder, MacCircuit,
    MultiplierKind, Sign,
};
use proptest::prelude::*;

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

proptest! {
    #[test]
    fn add_expand_matches_u64(width in 1usize..16, a: u64, b: u64) {
        let a = a & mask(width);
        let b = b & mask(width);
        let mut bld = Builder::new();
        let ba = bld.garbler_input_bus(width);
        let bb = bld.evaluator_input_bus(width);
        let sum = bld.add_expand(&ba, &bb);
        let netlist = bld.build(sum.wires().to_vec());
        let out = netlist.evaluate(&encode_unsigned(a, width), &encode_unsigned(b, width));
        prop_assert_eq!(decode_unsigned(&out), a + b);
    }

    #[test]
    fn sub_wrap_matches_wrapping(width in 1usize..16, a: u64, b: u64) {
        let a = a & mask(width);
        let b = b & mask(width);
        let mut bld = Builder::new();
        let ba = bld.garbler_input_bus(width);
        let bb = bld.evaluator_input_bus(width);
        let diff = bld.sub_wrap(&ba, &bb);
        let netlist = bld.build(diff.wires().to_vec());
        let out = netlist.evaluate(&encode_unsigned(a, width), &encode_unsigned(b, width));
        prop_assert_eq!(decode_unsigned(&out), a.wrapping_sub(b) & mask(width));
    }

    #[test]
    fn multipliers_match_u64(width in 1usize..12, a: u64, x: u64, serial: bool) {
        let a = a & mask(width);
        let x = x & mask(width);
        let kind = if serial { MultiplierKind::Serial } else { MultiplierKind::Tree };
        let mut bld = Builder::new();
        let ba = bld.garbler_input_bus(width);
        let bx = bld.evaluator_input_bus(width);
        let prod = bld.mul(kind, &ba, &bx);
        let netlist = bld.build(prod.wires().to_vec());
        let out = netlist.evaluate(&encode_unsigned(a, width), &encode_unsigned(x, width));
        prop_assert_eq!(decode_unsigned(&out), a * x);
    }

    #[test]
    fn signed_mac_matches_i64(
        width in 2usize..10,
        a: i64,
        x: i64,
        acc: i64,
    ) {
        let bound = 1i64 << (width - 1);
        let a = a.rem_euclid(2 * bound) - bound;
        let x = x.rem_euclid(2 * bound) - bound;
        let acc_width = 2 * width + 4;
        let acc_bound = 1i64 << (acc_width - 1);
        let acc = acc.rem_euclid(2 * acc_bound) - acc_bound;
        let mac = MacCircuit::build(width, acc_width, Sign::Signed, MultiplierKind::Tree);
        let expected_wide = acc as i128 + (a as i128) * (x as i128);
        // Reduce into the accumulator's two's-complement range.
        let modulus = 1i128 << acc_width;
        let mut expected = expected_wide.rem_euclid(modulus);
        if expected >= modulus / 2 {
            expected -= modulus;
        }
        prop_assert_eq!(mac.evaluate_signed(a, acc, x) as i128, expected);
    }

    #[test]
    fn unsigned_mac_matches_u64(
        width in 1usize..10,
        a: u64,
        x: u64,
        acc: u64,
    ) {
        let a = a & mask(width);
        let x = x & mask(width);
        let acc_width = 2 * width + 4;
        let acc = acc & mask(acc_width);
        let mac = MacCircuit::build(width, acc_width, Sign::Unsigned, MultiplierKind::Tree);
        let expected = (acc as u128 + a as u128 * x as u128) & mask(acc_width) as u128;
        prop_assert_eq!(mac.evaluate_unsigned(a, acc, x) as u128, expected);
    }

    #[test]
    fn encode_decode_signed_roundtrip(width in 1usize..=64, v: i64) {
        let v = if width == 64 {
            v
        } else {
            let bound = 1i128 << (width - 1);
            (((v as i128).rem_euclid(2 * bound)) - bound) as i64
        };
        prop_assert_eq!(decode_signed(&encode_signed(v, width)), v);
    }

    #[test]
    fn comparators_match(width in 1usize..16, a: u64, b: u64) {
        let a = a & mask(width);
        let b = b & mask(width);
        let mut bld = Builder::new();
        let ba = bld.garbler_input_bus(width);
        let bb = bld.evaluator_input_bus(width);
        let eq = bld.eq_bus(&ba, &bb);
        let lt = bld.lt_unsigned(&ba, &bb);
        let netlist = bld.build(vec![eq, lt]);
        let out = netlist.evaluate(&encode_unsigned(a, width), &encode_unsigned(b, width));
        prop_assert_eq!(out[0], a == b);
        prop_assert_eq!(out[1], a < b);
    }

    #[test]
    fn netlists_always_validate(width in 1usize..10, signed: bool) {
        let sign = if signed { Sign::Signed } else { Sign::Unsigned };
        let mac = MacCircuit::build(width, 2 * width + 2, sign, MultiplierKind::Tree);
        prop_assert!(mac.netlist().validate().is_ok());
    }
}

proptest! {
    #[test]
    fn optimize_preserves_semantics(
        width in 1usize..8,
        a: u64,
        x: u64,
        acc: u64,
    ) {
        let a = a & mask(width);
        let x = x & mask(width);
        let acc_width = 2 * width + 2;
        let acc = acc & mask(acc_width);
        let mac = MacCircuit::build(width, acc_width, Sign::Unsigned, MultiplierKind::Tree);
        let (opt, _) = mac.netlist().optimize();
        let g_bits = mac.garbler_bits(a as i64, acc as i64);
        let e_bits = mac.evaluator_bits(x as i64);
        prop_assert_eq!(
            opt.evaluate(&g_bits, &e_bits),
            mac.netlist().evaluate(&g_bits, &e_bits)
        );
        prop_assert!(opt.validate().is_ok());
    }
}
