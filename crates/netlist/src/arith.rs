//! Arithmetic bus operations with minimal AND-gate counts.
//!
//! All constructions follow the GC-optimized library the paper inherits from
//! TinyGarble: a full adder costs exactly **one** AND gate
//! (`carry' = c ⊕ ((a ⊕ c) ∧ (b ⊕ c))`, `sum = a ⊕ b ⊕ c`), so an `n`-bit
//! addition costs `n` ANDs, a conditional negation costs `n` ANDs, and a 2:1
//! bus multiplexer costs `n` ANDs.

use crate::builder::{Builder, Bus};
use crate::ir::WireId;

impl Builder {
    /// One-AND full adder; returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: WireId, b: WireId, cin: WireId) -> (WireId, WireId) {
        let axc = self.xor(a, cin);
        let bxc = self.xor(b, cin);
        let sum = self.xor(axc, b);
        let and = self.and(axc, bxc);
        let cout = self.xor(cin, and);
        (sum, cout)
    }

    /// Ripple-carry addition producing `max(width)+1` bits (no overflow).
    pub fn add_expand(&mut self, a: &Bus, b: &Bus) -> Bus {
        let width = a.width().max(b.width());
        let (sum, carry) = self.add_with_carry(a, b, None, width);
        let mut wires = sum.wires().to_vec();
        wires.push(carry);
        Bus::new(wires)
    }

    /// Ripple-carry addition modulo `2^width` where `width = max(a, b)`
    /// (the carry out is dropped) — the accumulator form.
    pub fn add_wrap(&mut self, a: &Bus, b: &Bus) -> Bus {
        let width = a.width().max(b.width());
        self.add_with_carry(a, b, None, width).0
    }

    /// `width`-bit addition with optional carry-in; returns `(sum, carry_out)`.
    ///
    /// Inputs narrower than `width` are zero-extended. The final carry costs
    /// one AND like every other position.
    pub fn add_with_carry(
        &mut self,
        a: &Bus,
        b: &Bus,
        cin: Option<WireId>,
        width: usize,
    ) -> (Bus, WireId) {
        let zero = self.zero();
        let mut carry = cin.unwrap_or(zero);
        let mut sum = Vec::with_capacity(width);
        for i in 0..width {
            let ai = if i < a.width() { a.bit(i) } else { zero };
            let bi = if i < b.width() { b.bit(i) } else { zero };
            let (s, c) = self.full_adder(ai, bi, carry);
            sum.push(s);
            carry = c;
        }
        (Bus::new(sum), carry)
    }

    /// Two's-complement subtraction `a - b` modulo `2^width`.
    ///
    /// Implemented as `a + ¬b + 1`; costs `width` ANDs.
    pub fn sub_wrap(&mut self, a: &Bus, b: &Bus) -> Bus {
        let width = a.width().max(b.width());
        let zero = self.zero();
        let one = self.constant(true);
        let nb: Bus = (0..width)
            .map(|i| {
                let bi = if i < b.width() { b.bit(i) } else { zero };
                self.not(bi)
            })
            .collect();
        self.add_with_carry(a, &nb, Some(one), width).0
    }

    /// Two's complement negation `-a` (one AND per bit via conditional form
    /// with a constant-true select folds to `¬a + 1`).
    pub fn negate(&mut self, a: &Bus) -> Bus {
        let one = self.constant(true);
        self.cond_negate(one, a)
    }

    /// Conditional two's complement: `sel ? -a : a`.
    ///
    /// The paper's "multiplexer-2's complement pair" for signed-input
    /// support (§4.3). Computed as `(a ⊕ sel) + sel`: the XOR stage is free
    /// and the increment-by-select ripple costs one AND per bit.
    pub fn cond_negate(&mut self, sel: WireId, a: &Bus) -> Bus {
        let flipped: Bus = a.iter().map(|&w| self.xor(w, sel)).collect();
        let mut carry = sel;
        let mut out = Vec::with_capacity(a.width());
        for (i, &f) in flipped.iter().enumerate() {
            let s = self.xor(f, carry);
            out.push(s);
            if i + 1 < a.width() {
                carry = self.and(f, carry);
            }
        }
        Bus::new(out)
    }

    /// Bus 2:1 multiplexer `sel ? then_b : else_b` (one AND per bit).
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn mux_bus(&mut self, sel: WireId, then_b: &Bus, else_b: &Bus) -> Bus {
        assert_eq!(then_b.width(), else_b.width(), "mux bus width mismatch");
        then_b
            .iter()
            .zip(else_b.iter())
            .map(|(&t, &e)| self.mux(sel, t, e))
            .collect()
    }

    /// ANDs every bit of `a` with the single wire `sel` — a partial-product
    /// row (one AND per bit).
    pub fn and_bus(&mut self, sel: WireId, a: &Bus) -> Bus {
        a.iter().map(|&w| self.and(sel, w)).collect()
    }

    /// Zero-extends `a` to `width` bits.
    pub fn zero_extend(&mut self, a: &Bus, width: usize) -> Bus {
        assert!(width >= a.width(), "cannot zero-extend to a narrower bus");
        let zero = self.zero();
        let mut wires = a.wires().to_vec();
        wires.resize(width, zero);
        Bus::new(wires)
    }

    /// Sign-extends `a` to `width` bits (free: the sign wire is replicated).
    pub fn sign_extend(&mut self, a: &Bus, width: usize) -> Bus {
        assert!(width >= a.width(), "cannot sign-extend to a narrower bus");
        let sign = a.msb();
        let mut wires = a.wires().to_vec();
        wires.resize(width, sign);
        Bus::new(wires)
    }

    /// Equality comparator: 1 when `a == b`. Costs `width - 1` ANDs.
    pub fn eq_bus(&mut self, a: &Bus, b: &Bus) -> WireId {
        assert_eq!(a.width(), b.width(), "eq bus width mismatch");
        let diffs: Vec<WireId> = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| {
                let d = self.xor(x, y);
                self.not(d)
            })
            .collect();
        let mut acc = diffs[0];
        for &d in &diffs[1..] {
            acc = self.and(acc, d);
        }
        acc
    }

    /// Unsigned less-than: 1 when `a < b`. Costs `width` ANDs (borrow chain).
    pub fn lt_unsigned(&mut self, a: &Bus, b: &Bus) -> WireId {
        assert_eq!(a.width(), b.width(), "lt bus width mismatch");
        // a < b  ⇔  final borrow of a - b. Borrow is the carry of ¬a + b:
        // borrow' = borrow ⊕ ((¬a ⊕ borrow) ∧ (b ⊕ borrow)) — 1 AND per bit.
        let mut borrow = self.zero();
        for (&ai, &bi) in a.iter().zip(b.iter()) {
            let na = self.not(ai);
            let naxc = self.xor(na, borrow);
            let bxc = self.xor(bi, borrow);
            let t = self.and(naxc, bxc);
            borrow = self.xor(borrow, t);
        }
        borrow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{decode_signed, decode_unsigned, encode_signed, encode_unsigned};

    fn eval_binary(
        f: impl Fn(&mut Builder, &Bus, &Bus) -> Bus,
        width: usize,
        a: u64,
        b: u64,
    ) -> u64 {
        let mut builder = Builder::new();
        let ba = builder.garbler_input_bus(width);
        let bb = builder.evaluator_input_bus(width);
        let out = f(&mut builder, &ba, &bb);
        let netlist = builder.build(out.wires().to_vec());
        decode_unsigned(&netlist.evaluate(&encode_unsigned(a, width), &encode_unsigned(b, width)))
    }

    #[test]
    fn add_expand_never_overflows() {
        for (a, b) in [(0u64, 0u64), (255, 255), (200, 100), (1, 254)] {
            assert_eq!(
                eval_binary(|bld, x, y| bld.add_expand(x, y), 8, a, b),
                a + b
            );
        }
    }

    #[test]
    fn add_wrap_wraps() {
        assert_eq!(
            eval_binary(|bld, x, y| bld.add_wrap(x, y), 8, 200, 100),
            (200 + 100) % 256
        );
    }

    #[test]
    fn adder_uses_one_and_per_bit() {
        let mut b = Builder::new();
        let x = b.garbler_input_bus(16);
        let y = b.evaluator_input_bus(16);
        let sum = b.add_wrap(&x, &y);
        let netlist = b.build(sum.wires().to_vec());
        assert_eq!(netlist.stats().and_gates, 16);
    }

    #[test]
    fn sub_wrap_matches_wrapping_sub() {
        for (a, b) in [(5u64, 3u64), (3, 5), (0, 255), (255, 255)] {
            assert_eq!(
                eval_binary(|bld, x, y| bld.sub_wrap(x, y), 8, a, b),
                (a.wrapping_sub(b)) % 256
            );
        }
    }

    #[test]
    fn negate_is_twos_complement() {
        for v in [-128i64, -5, -1, 0, 1, 127] {
            let mut b = Builder::new();
            let x = b.garbler_input_bus(8);
            let neg = b.negate(&x);
            let netlist = b.build(neg.wires().to_vec());
            let out = netlist.evaluate(&encode_signed(v, 8), &[]);
            // -(-128) wraps back to -128 in 8-bit two's complement.
            let expected = (v as i8).wrapping_neg() as i64;
            assert_eq!(decode_signed(&out), expected, "v = {v}");
        }
    }

    #[test]
    fn cond_negate_selects() {
        for v in [-100i64, -1, 0, 1, 100] {
            for sel in [false, true] {
                let mut b = Builder::new();
                let s = b.garbler_input();
                let x = b.garbler_input_bus(8);
                let out = b.cond_negate(s, &x);
                let netlist = b.build(out.wires().to_vec());
                let mut inputs = vec![sel];
                inputs.extend(encode_signed(v, 8));
                let got = decode_signed(&netlist.evaluate(&inputs, &[]));
                assert_eq!(got, if sel { -v } else { v });
            }
        }
    }

    #[test]
    fn cond_negate_costs_width_minus_one_ands() {
        let mut b = Builder::new();
        let s = b.garbler_input();
        let x = b.garbler_input_bus(8);
        let out = b.cond_negate(s, &x);
        let netlist = b.build(out.wires().to_vec());
        assert_eq!(netlist.stats().and_gates, 7);
    }

    #[test]
    fn mux_bus_selects_whole_bus() {
        for sel in [false, true] {
            let mut b = Builder::new();
            let s = b.garbler_input();
            let t = b.garbler_input_bus(8);
            let e = b.garbler_input_bus(8);
            let out = b.mux_bus(s, &t, &e);
            let netlist = b.build(out.wires().to_vec());
            let mut inputs = vec![sel];
            inputs.extend(encode_unsigned(0xAA, 8));
            inputs.extend(encode_unsigned(0x55, 8));
            let got = decode_unsigned(&netlist.evaluate(&inputs, &[]));
            assert_eq!(got, if sel { 0xAA } else { 0x55 });
        }
    }

    #[test]
    fn and_bus_is_partial_product() {
        for sel in [false, true] {
            let mut b = Builder::new();
            let s = b.garbler_input();
            let x = b.garbler_input_bus(8);
            let out = b.and_bus(s, &x);
            let netlist = b.build(out.wires().to_vec());
            let mut inputs = vec![sel];
            inputs.extend(encode_unsigned(0xC3, 8));
            let got = decode_unsigned(&netlist.evaluate(&inputs, &[]));
            assert_eq!(got, if sel { 0xC3 } else { 0 });
        }
    }

    #[test]
    fn extensions() {
        let mut b = Builder::new();
        let x = b.garbler_input_bus(4);
        let ze = b.zero_extend(&x, 8);
        let se = b.sign_extend(&x, 8);
        let netlist = b.build(ze.wires().iter().chain(se.wires()).copied().collect());
        let out = netlist.evaluate(&encode_signed(-3, 4), &[]);
        assert_eq!(decode_unsigned(&out[..8]), 0b0000_1101);
        assert_eq!(decode_signed(&out[8..]), -3);
    }

    #[test]
    fn comparators() {
        for (a, b) in [(3u64, 5u64), (5, 3), (7, 7), (0, 255), (255, 0)] {
            let mut bld = Builder::new();
            let x = bld.garbler_input_bus(8);
            let y = bld.evaluator_input_bus(8);
            let eq = bld.eq_bus(&x, &y);
            let lt = bld.lt_unsigned(&x, &y);
            let netlist = bld.build(vec![eq, lt]);
            let out = netlist.evaluate(&encode_unsigned(a, 8), &encode_unsigned(b, 8));
            assert_eq!(out[0], a == b, "eq({a},{b})");
            assert_eq!(out[1], a < b, "lt({a},{b})");
        }
    }
}
