//! Netlist optimization passes.
//!
//! The builder already constant-folds; these passes clean up what emerges
//! from compositional construction:
//!
//! * **Common-subexpression elimination** — duplicate gates (same kind,
//!   same inputs, XOR/AND commutative) collapse to one. Duplicate AND
//!   gates cost real garbled tables, so this directly shrinks GC traffic.
//! * **Dead-gate elimination** — gates whose outputs reach no circuit
//!   output are dropped (e.g. the unused remainder of a divider).
//!
//! Passes preserve input/output interfaces exactly and are verified
//! semantics-preserving by property tests.

use std::collections::HashMap;

use crate::ir::{Gate, GateKind, Netlist, WireId};

/// Statistics of one optimization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Gates removed by common-subexpression elimination.
    pub cse_removed: usize,
    /// Gates removed as dead code.
    pub dead_removed: usize,
}

impl Netlist {
    /// Runs CSE + dead-gate elimination until fixpoint; returns the
    /// optimized netlist and what was removed.
    ///
    /// The wire numbering changes (wires are re-densified); the *interface*
    /// — input order, constant values, output order — is preserved.
    pub fn optimize(&self) -> (Netlist, OptStats) {
        let mut stats = OptStats::default();
        let after_cse = self.eliminate_common_subexpressions(&mut stats);
        let after_dce = after_cse.eliminate_dead_gates(&mut stats);
        (after_dce, stats)
    }

    fn eliminate_common_subexpressions(&self, stats: &mut OptStats) -> Netlist {
        // Map each original wire to its canonical replacement.
        let mut canon: Vec<WireId> = (0..self.wire_count).map(WireId).collect();
        let mut seen: HashMap<(GateKind, u32, u32), WireId> = HashMap::new();
        let mut gates = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let a = canon[gate.a.index()];
            let b = canon[gate.b.index()];
            // Commutative normalization for AND/XOR.
            let (ka, kb) = match gate.kind {
                GateKind::And | GateKind::Xor => {
                    if a.0 <= b.0 {
                        (a.0, b.0)
                    } else {
                        (b.0, a.0)
                    }
                }
                GateKind::Not => (a.0, a.0),
            };
            match seen.get(&(gate.kind, ka, kb)) {
                Some(&existing) => {
                    canon[gate.out.index()] = existing;
                    stats.cse_removed += 1;
                }
                None => {
                    seen.insert((gate.kind, ka, kb), gate.out);
                    gates.push(Gate {
                        kind: gate.kind,
                        a,
                        b,
                        out: gate.out,
                    });
                }
            }
        }
        let outputs = self.outputs.iter().map(|w| canon[w.index()]).collect();
        // Wire ids unchanged (holes allowed until densify).
        Netlist {
            wire_count: self.wire_count,
            garbler_inputs: self.garbler_inputs.clone(),
            evaluator_inputs: self.evaluator_inputs.clone(),
            constants: self.constants.clone(),
            gates,
            outputs,
        }
        .densify()
    }

    fn eliminate_dead_gates(&self, stats: &mut OptStats) -> Netlist {
        let mut live = vec![false; self.wire_count as usize];
        for w in &self.outputs {
            live[w.index()] = true;
        }
        // Reverse sweep: a gate is live if its output is.
        let mut keep = vec![false; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate().rev() {
            if live[gate.out.index()] {
                keep[i] = true;
                live[gate.a.index()] = true;
                live[gate.b.index()] = true;
            }
        }
        let removed = keep.iter().filter(|&&k| !k).count();
        stats.dead_removed += removed;
        let gates: Vec<Gate> = self
            .gates
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(g, _)| *g)
            .collect();
        Netlist {
            wire_count: self.wire_count,
            garbler_inputs: self.garbler_inputs.clone(),
            evaluator_inputs: self.evaluator_inputs.clone(),
            constants: self.constants.clone(),
            gates,
            outputs: self.outputs.clone(),
        }
        .densify()
    }

    /// Renumbers wires densely (inputs/constants keep their relative order,
    /// then gate outputs in gate order).
    fn densify(&self) -> Netlist {
        let mut remap: Vec<Option<WireId>> = vec![None; self.wire_count as usize];
        let mut next = 0u32;
        let mut assign = |remap: &mut Vec<Option<WireId>>, w: WireId| -> WireId {
            if let Some(mapped) = remap[w.index()] {
                return mapped;
            }
            let mapped = WireId(next);
            next += 1;
            remap[w.index()] = Some(mapped);
            mapped
        };
        let garbler_inputs: Vec<WireId> = self
            .garbler_inputs
            .iter()
            .map(|&w| assign(&mut remap, w))
            .collect();
        let evaluator_inputs: Vec<WireId> = self
            .evaluator_inputs
            .iter()
            .map(|&w| assign(&mut remap, w))
            .collect();
        let constants: Vec<(WireId, bool)> = self
            .constants
            .iter()
            .map(|&(w, v)| (assign(&mut remap, w), v))
            .collect();
        let gates: Vec<Gate> = self
            .gates
            .iter()
            .map(|g| {
                let a = remap[g.a.index()].expect("input before use (topological)");
                let b = remap[g.b.index()].expect("input before use (topological)");
                let out = assign(&mut remap, g.out);
                Gate {
                    kind: g.kind,
                    a,
                    b,
                    out,
                }
            })
            .collect();
        let outputs: Vec<WireId> = self
            .outputs
            .iter()
            .map(|&w| remap[w.index()].expect("outputs are driven"))
            .collect();
        let netlist = Netlist {
            wire_count: next,
            garbler_inputs,
            evaluator_inputs,
            constants,
            gates,
            outputs,
        };
        debug_assert!(netlist.validate().is_ok(), "densify broke the netlist");
        netlist
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::Builder;
    use crate::encoding::{decode_unsigned, encode_unsigned};

    #[test]
    fn cse_merges_duplicate_gates() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let a1 = b.and(x, y);
        let a2 = b.and(y, x); // commutative duplicate
        let o = b.xor(a1, a2); // folds to 0 only after CSE identifies a1 == a2
        let netlist = b.build(vec![a1, a2, o]);
        let (opt, stats) = netlist.optimize();
        assert_eq!(stats.cse_removed, 1);
        assert_eq!(opt.stats().and_gates, 1);
        for gx in [false, true] {
            for ey in [false, true] {
                assert_eq!(opt.evaluate(&[gx], &[ey]), netlist.evaluate(&[gx], &[ey]));
            }
        }
    }

    #[test]
    fn dead_gates_removed() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let used = b.xor(x, y);
        let _dead1 = b.and(x, y);
        let dead2 = b.or(x, y);
        let _dead3 = b.not(dead2);
        let netlist = b.build(vec![used]);
        let (opt, stats) = netlist.optimize();
        assert!(stats.dead_removed >= 3, "removed {}", stats.dead_removed);
        assert_eq!(opt.stats().and_gates, 0);
        assert_eq!(opt.evaluate(&[true], &[false]), vec![true]);
    }

    #[test]
    fn divider_quotient_only_sheds_remainder_logic() {
        let mut b = Builder::new();
        let x = b.garbler_input_bus(8);
        let y = b.evaluator_input_bus(8);
        let (q, _r) = b.div_unsigned(&x, &y);
        let netlist = b.build(q.wires().to_vec());
        let before = netlist.stats().and_gates;
        let (opt, _) = netlist.optimize();
        let after = opt.stats().and_gates;
        assert!(after <= before);
        // Semantics preserved.
        for (a, d) in [(200u64, 7u64), (255, 255), (9, 1)] {
            let got = opt.evaluate(&encode_unsigned(a, 8), &encode_unsigned(d, 8));
            assert_eq!(decode_unsigned(&got), a / d);
        }
    }

    #[test]
    fn optimize_preserves_interfaces() {
        let mut b = Builder::new();
        let x = b.garbler_input_bus(4);
        let y = b.evaluator_input_bus(4);
        let s = b.add_expand(&x, &y);
        let netlist = b.build(s.wires().to_vec());
        let (opt, _) = netlist.optimize();
        assert_eq!(opt.garbler_inputs().len(), 4);
        assert_eq!(opt.evaluator_inputs().len(), 4);
        assert_eq!(opt.outputs().len(), 5);
        assert!(opt.validate().is_ok());
    }

    #[test]
    fn optimizing_twice_is_idempotent() {
        let mut b = Builder::new();
        let x = b.garbler_input_bus(6);
        let y = b.evaluator_input_bus(6);
        let p = b.mul(crate::mult::MultiplierKind::Tree, &x, &y);
        let netlist = b.build(p.wires().to_vec());
        let (once, _) = netlist.optimize();
        let (twice, stats2) = once.optimize();
        assert_eq!(stats2.cse_removed, 0);
        assert_eq!(stats2.dead_removed, 0);
        assert_eq!(once.stats(), twice.stats());
    }
}
