//! Incremental circuit construction.

use crate::ir::{Gate, GateKind, Netlist, WireId};

/// A little-endian bundle of wires representing a multi-bit value.
///
/// Bit 0 (the least significant bit) is `wires()[0]`. Buses are cheap to
/// clone; they are just wire-id vectors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bus(Vec<WireId>);

impl Bus {
    /// Wraps raw wires (LSB first) as a bus.
    pub fn new(wires: Vec<WireId>) -> Self {
        Bus(wires)
    }

    /// The wires, LSB first.
    pub fn wires(&self) -> &[WireId] {
        &self.0
    }

    /// Bus width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The most significant wire (two's-complement sign bit).
    ///
    /// # Panics
    ///
    /// Panics if the bus is empty.
    pub fn msb(&self) -> WireId {
        *self.0.last().expect("empty bus has no msb")
    }

    /// Bit `i` (0 = LSB).
    pub fn bit(&self, i: usize) -> WireId {
        self.0[i]
    }

    /// The low `n` bits as a new bus.
    pub fn low(&self, n: usize) -> Bus {
        Bus(self.0[..n].to_vec())
    }

    /// Concatenation `self ‖ high` (self stays in the low bits).
    pub fn concat(&self, high: &Bus) -> Bus {
        let mut wires = self.0.clone();
        wires.extend_from_slice(&high.0);
        Bus(wires)
    }

    /// Logical left shift by `n` zero bits — callers must supply the zero
    /// wire since shifting is pure rewiring.
    pub fn shifted_left(&self, n: usize, zero: WireId) -> Bus {
        let mut wires = vec![zero; n];
        wires.extend_from_slice(&self.0);
        Bus(wires)
    }

    /// Iterates over the wires, LSB first.
    pub fn iter(&self) -> std::slice::Iter<'_, WireId> {
        self.0.iter()
    }
}

impl From<Vec<WireId>> for Bus {
    fn from(wires: Vec<WireId>) -> Self {
        Bus(wires)
    }
}

impl FromIterator<WireId> for Bus {
    fn from_iter<I: IntoIterator<Item = WireId>>(iter: I) -> Self {
        Bus(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Bus {
    type Item = &'a WireId;
    type IntoIter = std::slice::Iter<'a, WireId>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Builds a [`Netlist`] gate by gate, guaranteeing topological order by
/// construction.
///
/// # Example
///
/// ```
/// use max_netlist::Builder;
///
/// let mut b = Builder::new();
/// let x = b.garbler_input();
/// let y = b.evaluator_input();
/// let z = b.and(x, y);
/// let netlist = b.build(vec![z]);
/// assert_eq!(netlist.evaluate(&[true], &[true]), vec![true]);
/// assert_eq!(netlist.evaluate(&[true], &[false]), vec![false]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Builder {
    next_wire: u32,
    garbler_inputs: Vec<WireId>,
    evaluator_inputs: Vec<WireId>,
    constants: Vec<(WireId, bool)>,
    gates: Vec<Gate>,
    const_false: Option<WireId>,
    const_true: Option<WireId>,
    /// Constant-propagation lattice: `known[w] = Some(v)` when wire `w` is a
    /// compile-time constant. Gate constructors fold through this, so dead
    /// logic on known-zero bits (e.g. the low bits of shifted partial
    /// products) never reaches the netlist.
    known: Vec<Option<bool>>,
}

impl Builder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Builder::default()
    }

    fn fresh(&mut self) -> WireId {
        let id = WireId(self.next_wire);
        self.next_wire += 1;
        self.known.push(None);
        id
    }

    fn value_of(&self, w: WireId) -> Option<bool> {
        self.known[w.index()]
    }

    /// Declares one garbler (server-side) input bit.
    pub fn garbler_input(&mut self) -> WireId {
        let w = self.fresh();
        self.garbler_inputs.push(w);
        w
    }

    /// Declares one evaluator (client-side) input bit.
    pub fn evaluator_input(&mut self) -> WireId {
        let w = self.fresh();
        self.evaluator_inputs.push(w);
        w
    }

    /// Declares a `width`-bit garbler input bus (LSB first).
    pub fn garbler_input_bus(&mut self, width: usize) -> Bus {
        (0..width).map(|_| self.garbler_input()).collect()
    }

    /// Declares a `width`-bit evaluator input bus (LSB first).
    pub fn evaluator_input_bus(&mut self, width: usize) -> Bus {
        (0..width).map(|_| self.evaluator_input()).collect()
    }

    /// A public constant wire (deduplicated).
    pub fn constant(&mut self, value: bool) -> WireId {
        let slot = if value {
            &mut self.const_true
        } else {
            &mut self.const_false
        };
        if let Some(w) = *slot {
            return w;
        }
        let w = WireId(self.next_wire);
        self.next_wire += 1;
        self.known.push(Some(value));
        self.constants.push((w, value));
        *slot = Some(w);
        w
    }

    /// The shared constant-zero wire.
    pub fn zero(&mut self) -> WireId {
        self.constant(false)
    }

    /// AND gate (one garbled table), constant-folded where possible.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.value_of(a), self.value_of(b)) {
            (Some(va), Some(vb)) => return self.constant(va && vb),
            (Some(false), _) | (_, Some(false)) => return self.constant(false),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ if a == b => return a,
            _ => {}
        }
        let out = self.fresh();
        self.gates.push(Gate {
            kind: GateKind::And,
            a,
            b,
            out,
        });
        out
    }

    /// XOR gate (free), constant-folded where possible.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.value_of(a), self.value_of(b)) {
            (Some(va), Some(vb)) => return self.constant(va ^ vb),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ if a == b => return self.constant(false),
            _ => {}
        }
        let out = self.fresh();
        self.gates.push(Gate {
            kind: GateKind::Xor,
            a,
            b,
            out,
        });
        out
    }

    /// Inverter (free), constant-folded where possible.
    pub fn not(&mut self, a: WireId) -> WireId {
        if let Some(v) = self.value_of(a) {
            return self.constant(!v);
        }
        let out = self.fresh();
        self.gates.push(Gate {
            kind: GateKind::Not,
            a,
            b: a,
            out,
        });
        out
    }

    /// OR gate, lowered to one AND: `a | b = ¬(¬a ∧ ¬b)`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let na = self.not(a);
        let nb = self.not(b);
        let nand = self.and(na, nb);
        self.not(nand)
    }

    /// 2:1 multiplexer on single wires: `sel ? then_w : else_w`, one AND.
    pub fn mux(&mut self, sel: WireId, then_w: WireId, else_w: WireId) -> WireId {
        // else ^ (sel & (then ^ else))
        let diff = self.xor(then_w, else_w);
        let gated = self.and(sel, diff);
        self.xor(else_w, gated)
    }

    /// Number of gates emitted so far.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Finalizes the circuit with the given output wires.
    ///
    /// # Panics
    ///
    /// Panics if the resulting netlist fails validation — that indicates a
    /// builder bug, not a user error.
    pub fn build(self, outputs: Vec<WireId>) -> Netlist {
        let netlist = Netlist {
            wire_count: self.next_wire,
            garbler_inputs: self.garbler_inputs,
            evaluator_inputs: self.evaluator_inputs,
            constants: self.constants,
            gates: self.gates,
            outputs,
        };
        if let Err(e) = netlist.validate() {
            panic!("builder produced invalid netlist: {e}");
        }
        netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_xor_not_truth_tables() {
        for (ga, ea, expect_and, expect_xor) in [
            (false, false, false, false),
            (false, true, false, true),
            (true, false, false, true),
            (true, true, true, false),
        ] {
            let mut b = Builder::new();
            let x = b.garbler_input();
            let y = b.evaluator_input();
            let a = b.and(x, y);
            let o = b.xor(x, y);
            let n = b.not(x);
            let netlist = b.build(vec![a, o, n]);
            assert_eq!(
                netlist.evaluate(&[ga], &[ea]),
                vec![expect_and, expect_xor, !ga]
            );
        }
    }

    #[test]
    fn or_matches_boolean_or() {
        for ga in [false, true] {
            for ea in [false, true] {
                let mut b = Builder::new();
                let x = b.garbler_input();
                let y = b.evaluator_input();
                let o = b.or(x, y);
                let netlist = b.build(vec![o]);
                assert_eq!(netlist.evaluate(&[ga], &[ea]), vec![ga || ea]);
            }
        }
    }

    #[test]
    fn or_costs_one_and() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.garbler_input();
        let o = b.or(x, y);
        let netlist = b.build(vec![o]);
        assert_eq!(netlist.stats().and_gates, 1);
    }

    #[test]
    fn mux_selects() {
        for sel in [false, true] {
            for t in [false, true] {
                for e in [false, true] {
                    let mut b = Builder::new();
                    let s = b.garbler_input();
                    let tw = b.garbler_input();
                    let ew = b.garbler_input();
                    let m = b.mux(s, tw, ew);
                    let netlist = b.build(vec![m]);
                    assert_eq!(
                        netlist.evaluate(&[sel, t, e], &[]),
                        vec![if sel { t } else { e }]
                    );
                }
            }
        }
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut b = Builder::new();
        let z1 = b.constant(false);
        let z2 = b.zero();
        let o1 = b.constant(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
        let netlist = b.build(vec![z1, o1]);
        assert_eq!(netlist.evaluate(&[], &[]), vec![false, true]);
        assert_eq!(netlist.constants().len(), 2);
    }

    #[test]
    fn bus_shifting_and_concat() {
        let mut b = Builder::new();
        let bus = b.garbler_input_bus(4);
        let zero = b.zero();
        let shifted = bus.shifted_left(2, zero);
        assert_eq!(shifted.width(), 6);
        assert_eq!(shifted.bit(0), zero);
        assert_eq!(shifted.bit(2), bus.bit(0));
        let cat = bus.low(2).concat(&bus.low(1));
        assert_eq!(cat.width(), 3);
        assert_eq!(cat.bit(2), bus.bit(0));
    }

    #[test]
    fn stats_counts_gates() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.garbler_input();
        let a = b.and(x, y);
        let o = b.xor(a, x);
        let n = b.not(o);
        let netlist = b.build(vec![n]);
        let stats = netlist.stats();
        assert_eq!(stats.and_gates, 1);
        assert_eq!(stats.xor_gates, 1);
        assert_eq!(stats.not_gates, 1);
        assert_eq!(stats.and_depth, 1);
        assert_eq!(stats.garbled_tables(), 1);
        assert_eq!(stats.table_bytes(), 32);
    }

    #[test]
    fn validate_accepts_builder_output() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.and(x, y);
        let netlist = b.build(vec![z]);
        assert!(netlist.validate().is_ok());
    }

    #[test]
    fn validate_rejects_cyclic_ordering() {
        use crate::ir::{Gate, GateKind};
        let netlist = Netlist {
            wire_count: 2,
            garbler_inputs: vec![WireId(1)],
            evaluator_inputs: vec![],
            constants: vec![],
            gates: vec![Gate {
                kind: GateKind::And,
                a: WireId(1),
                b: WireId(1),
                out: WireId(0),
            }],
            outputs: vec![WireId(0)],
        };
        assert!(netlist.validate().is_err());
    }

    #[test]
    fn evaluate_panics_on_bad_input_length() {
        let mut b = Builder::new();
        let x = b.garbler_input();
        let netlist = b.build(vec![x]);
        let result = std::panic::catch_unwind(|| netlist.evaluate(&[], &[]));
        assert!(result.is_err());
    }
}
