//! Bristol-fashion netlist interchange.
//!
//! The de-facto exchange format of the MPC community ("Bristol fashion",
//! as used by SCALE-MAMBA, MP-SPDZ, emp-toolkit …):
//!
//! ```text
//! <ngates> <nwires>
//! <niv> <n_in_1> <n_in_2> ...        // input bundles (party 1 = garbler)
//! <nov> <n_out_1> ...                // output bundles
//!
//! 2 1 <a> <b> <out> AND
//! 2 1 <a> <b> <out> XOR
//! 1 1 <a> <out> INV
//! ```
//!
//! Export lets other GC frameworks evaluate our MAC netlists; import lets
//! this stack garble community-standard circuits.

use std::fmt::Write as _;

use crate::builder::Builder;
use crate::ir::{GateKind, Netlist, WireId};

/// Error parsing a Bristol-fashion circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBristolError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseBristolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bristol parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseBristolError {}

/// Exports a netlist in Bristol fashion with two input bundles
/// (garbler, evaluator) and one output bundle.
///
/// Public constants (which the format cannot express) are lowered first:
/// `0 = w ⊕ w` and `1 = ¬0` synthesized from the first input wire.
///
/// # Errors
///
/// Returns a message if the netlist has constants but no input wire to
/// lower them from, or violates a Bristol structural convention
/// (duplicate/input outputs).
pub fn export(netlist: &Netlist) -> Result<String, String> {
    let lowered;
    let netlist = if netlist.constants().is_empty() {
        netlist
    } else {
        lowered = lower_constants(netlist)?;
        &lowered
    };
    // Bristol conventions: inputs are wires 0.., outputs are the
    // highest-numbered wires in output order. Build the relabeling.
    let nwires = netlist.wire_count();
    let n_outputs = netlist.outputs().len();
    let mut relabel: Vec<Option<u32>> = vec![None; nwires];
    {
        let mut output_set = std::collections::HashSet::new();
        for (pos, out) in netlist.outputs().iter().enumerate() {
            if !output_set.insert(out.0) {
                return Err("bristol fashion cannot express duplicate output wires".to_string());
            }
            relabel[out.index()] = Some((nwires - n_outputs + pos) as u32);
        }
        // Inputs occupy wires 0.. in bundle order (garbler then evaluator).
        let mut next = 0u32;
        for input in netlist
            .garbler_inputs()
            .iter()
            .chain(netlist.evaluator_inputs())
        {
            if relabel[input.index()].is_some() {
                return Err(
                    "bristol fashion cannot express an input that is also an output".to_string(),
                );
            }
            relabel[input.index()] = Some(next);
            next += 1;
        }
        for slot in relabel.iter_mut() {
            if slot.is_none() {
                *slot = Some(next);
                next += 1;
            }
        }
        debug_assert_eq!(next as usize, nwires - n_outputs);
    }
    let id = |w: WireId| relabel[w.index()].expect("every wire relabeled");

    let mut text = String::new();
    let ngates = netlist.gates().len();
    writeln!(text, "{ngates} {nwires}").expect("string write");
    writeln!(
        text,
        "2 {} {}",
        netlist.garbler_inputs().len(),
        netlist.evaluator_inputs().len()
    )
    .expect("string write");
    writeln!(text, "1 {}", n_outputs).expect("string write");
    writeln!(text).expect("string write");
    for gate in netlist.gates() {
        match gate.kind {
            GateKind::And => writeln!(
                text,
                "2 1 {} {} {} AND",
                id(gate.a),
                id(gate.b),
                id(gate.out)
            ),
            GateKind::Xor => writeln!(
                text,
                "2 1 {} {} {} XOR",
                id(gate.a),
                id(gate.b),
                id(gate.out)
            ),
            GateKind::Not => writeln!(text, "1 1 {} {} INV", id(gate.a), id(gate.out)),
        }
        .expect("string write");
    }
    Ok(text)
}

/// Imports a Bristol-fashion circuit with one or two input bundles (bundle
/// 1 → garbler, bundle 2 → evaluator) and one output bundle whose wires are
/// the highest-numbered, per the format convention.
///
/// # Errors
///
/// Returns [`ParseBristolError`] on any malformed content.
pub fn import(text: &str) -> Result<Netlist, ParseBristolError> {
    let err = |line: usize, message: &str| ParseBristolError {
        line,
        message: message.to_string(),
    };
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty());

    let (l1, header) = lines.next().ok_or_else(|| err(1, "missing header"))?;
    let mut header_parts = header.split_whitespace();
    let ngates: usize = header_parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(l1, "bad gate count"))?;
    let nwires: usize = header_parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(l1, "bad wire count"))?;

    let (l2, inputs_line) = lines
        .next()
        .ok_or_else(|| err(l1, "missing input header"))?;
    let input_counts: Vec<usize> = inputs_line
        .split_whitespace()
        .skip(1)
        .map(|t| t.parse().map_err(|_| err(l2, "bad input bundle size")))
        .collect::<Result<_, _>>()?;
    let declared_bundles: usize = inputs_line
        .split_whitespace()
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(l2, "bad input bundle count"))?;
    if declared_bundles != input_counts.len() || input_counts.is_empty() || input_counts.len() > 2 {
        return Err(err(l2, "expected 1 or 2 input bundles"));
    }

    let (l3, outputs_line) = lines
        .next()
        .ok_or_else(|| err(l2, "missing output header"))?;
    let output_counts: Vec<usize> = outputs_line
        .split_whitespace()
        .skip(1)
        .map(|t| t.parse().map_err(|_| err(l3, "bad output bundle size")))
        .collect::<Result<_, _>>()?;
    if output_counts.len() != 1 {
        return Err(err(l3, "expected exactly 1 output bundle"));
    }
    let n_outputs = output_counts[0];
    if n_outputs > nwires {
        return Err(err(l3, "more outputs than wires"));
    }

    let garbler_in = input_counts[0];
    let evaluator_in = *input_counts.get(1).unwrap_or(&0);
    if garbler_in + evaluator_in > nwires {
        return Err(err(l2, "more inputs than wires"));
    }

    let mut builder = Builder::new();
    // Imported wire id → our wire id. Bristol inputs are wires 0..n_in.
    let mut map: Vec<Option<WireId>> = vec![None; nwires];
    for slot in map.iter_mut().take(garbler_in) {
        *slot = Some(builder.garbler_input());
    }
    for slot in map.iter_mut().skip(garbler_in).take(evaluator_in) {
        *slot = Some(builder.evaluator_input());
    }

    let mut gates_seen = 0usize;
    for (lineno, line) in lines {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 4 {
            return Err(err(lineno, "short gate line"));
        }
        let kind = *tokens.last().expect("checked length");
        let parse_wire = |t: &str| -> Result<usize, ParseBristolError> {
            let w: usize = t.parse().map_err(|_| err(lineno, "bad wire id"))?;
            if w >= nwires {
                return Err(err(lineno, "wire id out of range"));
            }
            Ok(w)
        };
        let resolve = |map: &[Option<WireId>], w: usize| -> Result<WireId, ParseBristolError> {
            map[w].ok_or_else(|| err(lineno, "gate reads undriven wire"))
        };
        match kind {
            "AND" | "XOR" => {
                if tokens.len() != 6 || tokens[0] != "2" || tokens[1] != "1" {
                    return Err(err(lineno, "malformed 2-input gate"));
                }
                let a = resolve(&map, parse_wire(tokens[2])?)?;
                let b = resolve(&map, parse_wire(tokens[3])?)?;
                let out = parse_wire(tokens[4])?;
                let new = if kind == "AND" {
                    builder.and(a, b)
                } else {
                    builder.xor(a, b)
                };
                if map[out].is_some() {
                    return Err(err(lineno, "wire driven twice"));
                }
                map[out] = Some(new);
            }
            "INV" | "NOT" => {
                if tokens.len() != 5 || tokens[0] != "1" || tokens[1] != "1" {
                    return Err(err(lineno, "malformed inverter"));
                }
                let a = resolve(&map, parse_wire(tokens[2])?)?;
                let out = parse_wire(tokens[3])?;
                if map[out].is_some() {
                    return Err(err(lineno, "wire driven twice"));
                }
                map[out] = Some(builder.not(a));
            }
            other => return Err(err(lineno, &format!("unsupported gate {other}"))),
        }
        gates_seen += 1;
    }
    if gates_seen != ngates {
        return Err(err(
            0,
            &format!("header declared {ngates} gates, found {gates_seen}"),
        ));
    }
    // Outputs: the highest-numbered wires.
    let outputs: Result<Vec<WireId>, ParseBristolError> = (nwires - n_outputs..nwires)
        .map(|w| map[w].ok_or_else(|| err(0, "output wire undriven")))
        .collect();
    Ok(builder.build(outputs?))
}

/// Rewrites a netlist's constant wires as gates on the first input wire:
/// `zero = w ⊕ w`, `one = ¬zero`.
fn lower_constants(netlist: &Netlist) -> Result<Netlist, String> {
    let seed_wire = netlist
        .garbler_inputs()
        .first()
        .or_else(|| netlist.evaluator_inputs().first())
        .copied()
        .ok_or_else(|| "cannot lower constants without any input wire".to_string())?;
    let mut builder = Builder::new();
    let mut map: Vec<Option<WireId>> = vec![None; netlist.wire_count()];
    for wire in netlist.garbler_inputs() {
        map[wire.index()] = Some(builder.garbler_input());
    }
    for wire in netlist.evaluator_inputs() {
        map[wire.index()] = Some(builder.evaluator_input());
    }
    // Constants become synthesized gates. The Builder would fold
    // `xor(w, w)` straight back into a constant wire, so the gates are
    // emitted through a raw (non-folding) emitter instead.
    let seed = map[seed_wire.index()].expect("seed is an input");
    let mut raw = RawEmitter::new(builder);
    let zero = raw.xor_raw(seed, seed);
    let one = raw.not_raw(zero);
    for &(wire, value) in netlist.constants() {
        map[wire.index()] = Some(if value { one } else { zero });
    }
    for gate in netlist.gates() {
        let a = map[gate.a.index()].ok_or("gate reads unmapped wire")?;
        let b = map[gate.b.index()].ok_or("gate reads unmapped wire")?;
        let out = match gate.kind {
            GateKind::And => raw.and_raw(a, b),
            GateKind::Xor => raw.xor_raw(a, b),
            GateKind::Not => raw.not_raw(a),
        };
        map[gate.out.index()] = Some(out);
    }
    let outputs: Result<Vec<WireId>, String> = netlist
        .outputs()
        .iter()
        .map(|w| map[w.index()].ok_or_else(|| "output unmapped".to_string()))
        .collect();
    Ok(raw.finish(outputs?))
}

/// Emits gates without the [`Builder`]'s constant folding (folding would
/// re-create the constants being lowered).
struct RawEmitter {
    wire_count: u32,
    garbler_inputs: Vec<WireId>,
    evaluator_inputs: Vec<WireId>,
    gates: Vec<crate::ir::Gate>,
}

impl RawEmitter {
    fn new(builder: Builder) -> Self {
        // Recover the inputs the builder declared; it has no gates yet.
        let probe = builder.build(Vec::new());
        RawEmitter {
            wire_count: probe.wire_count() as u32,
            garbler_inputs: probe.garbler_inputs().to_vec(),
            evaluator_inputs: probe.evaluator_inputs().to_vec(),
            gates: Vec::new(),
        }
    }

    fn fresh(&mut self) -> WireId {
        let w = WireId(self.wire_count);
        self.wire_count += 1;
        w
    }

    fn and_raw(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.fresh();
        self.gates.push(crate::ir::Gate {
            kind: GateKind::And,
            a,
            b,
            out,
        });
        out
    }

    fn xor_raw(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.fresh();
        self.gates.push(crate::ir::Gate {
            kind: GateKind::Xor,
            a,
            b,
            out,
        });
        out
    }

    fn not_raw(&mut self, a: WireId) -> WireId {
        let out = self.fresh();
        self.gates.push(crate::ir::Gate {
            kind: GateKind::Not,
            a,
            b: a,
            out,
        });
        out
    }

    fn finish(self, outputs: Vec<WireId>) -> Netlist {
        let netlist = Netlist {
            wire_count: self.wire_count,
            garbler_inputs: self.garbler_inputs,
            evaluator_inputs: self.evaluator_inputs,
            constants: Vec::new(),
            gates: self.gates,
            outputs,
        };
        debug_assert!(
            netlist.validate().is_ok(),
            "constant lowering broke the netlist"
        );
        netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{decode_unsigned, encode_unsigned};

    fn adder_netlist(width: usize) -> Netlist {
        let mut b = Builder::new();
        let x = b.garbler_input_bus(width);
        let y = b.evaluator_input_bus(width);
        // Carry-free low bit keeps the constant-zero wire out of the
        // netlist (Bristol has no constants): use full adders seeded with
        // an explicit wire.
        let sum = {
            // add_with_carry would introduce the shared zero constant; do a
            // constant-free ripple instead.
            let mut out = Vec::with_capacity(width);
            let mut carry: Option<crate::ir::WireId> = None;
            for i in 0..width {
                let (s, c) = match carry {
                    None => {
                        let s = b.xor(x.bit(i), y.bit(i));
                        let c = b.and(x.bit(i), y.bit(i));
                        (s, c)
                    }
                    Some(cin) => b.full_adder(x.bit(i), y.bit(i), cin),
                };
                out.push(s);
                carry = Some(c);
            }
            out.push(carry.expect("width > 0"));
            out
        };
        b.build(sum)
    }

    #[test]
    fn export_then_import_round_trips_semantics() {
        let netlist = adder_netlist(6);
        let text = export(&netlist).expect("no constants");
        let imported = import(&text).expect("parses");
        assert_eq!(
            imported.garbler_inputs().len(),
            netlist.garbler_inputs().len()
        );
        for (a, b) in [(13u64, 50u64), (63, 63), (0, 0), (1, 62)] {
            let want = netlist.evaluate(&encode_unsigned(a, 6), &encode_unsigned(b, 6));
            let got = imported.evaluate(&encode_unsigned(a, 6), &encode_unsigned(b, 6));
            assert_eq!(decode_unsigned(&got), decode_unsigned(&want));
            assert_eq!(decode_unsigned(&got), a + b);
        }
    }

    #[test]
    fn export_lowers_constants() {
        // A circuit that genuinely keeps a constant wire: output the
        // constant directly alongside real logic.
        let mut b = Builder::new();
        let x = b.garbler_input_bus(4);
        let y = b.evaluator_input_bus(4);
        let p = b.mul(crate::mult::MultiplierKind::Tree, &x, &y);
        let netlist = b.build(p.wires().to_vec());
        assert!(
            !netlist.constants().is_empty(),
            "tree mult uses the zero wire"
        );
        let text = export(&netlist).expect("constants are lowered");
        let imported = import(&text).expect("parses");
        for (a, c) in [(5u64, 9u64), (15, 15), (0, 7)] {
            let got = imported.evaluate(&encode_unsigned(a, 4), &encode_unsigned(c, 4));
            assert_eq!(decode_unsigned(&got), a * c, "{a}*{c}");
        }
    }

    #[test]
    fn export_without_inputs_and_with_constants_errors() {
        let mut b = Builder::new();
        let k = b.constant(true);
        let netlist = b.build(vec![k]);
        assert!(export(&netlist).is_err());
    }

    #[test]
    fn imports_a_hand_written_circuit() {
        // out = (a AND b) XOR (NOT a): 2 inputs, 3 gates, 5 wires.
        let text = "3 5\n2 1 1\n1 1\n\n2 1 0 1 2 AND\n1 1 0 3 INV\n2 1 2 3 4 XOR\n";
        let netlist = import(text).expect("parses");
        for a in [false, true] {
            for b in [false, true] {
                let got = netlist.evaluate(&[a], &[b]);
                assert_eq!(got, vec![(a && b) ^ !a], "a={a} b={b}");
            }
        }
    }

    #[test]
    fn import_rejects_malformed_inputs() {
        assert!(import("").is_err());
        assert!(import("1 3\n2 1 1\n1 1\n\n2 1 0 1 2 NAND\n").is_err());
        assert!(import("1 3\n2 1 1\n1 1\n\n2 1 0 9 2 AND\n").is_err()); // out of range
        assert!(import("2 3\n2 1 1\n1 1\n\n2 1 0 1 2 AND\n").is_err()); // count mismatch
    }

    #[test]
    fn import_rejects_double_driven_wires() {
        let text = "2 4\n2 1 1\n1 1\n\n2 1 0 1 3 AND\n2 1 0 1 3 XOR\n";
        let result = import(text);
        assert!(result.is_err());
        assert!(result.unwrap_err().message.contains("driven twice"));
    }

    #[test]
    fn garbling_an_imported_circuit_works() {
        // The imported netlist slots straight into the GC stack via the
        // shared IR; check by plaintext equivalence + validation here (the
        // GC path is covered by max-gc's generic netlist tests).
        let netlist = import("3 5\n2 1 1\n1 1\n\n2 1 0 1 2 AND\n1 1 0 3 INV\n2 1 2 3 4 XOR\n")
            .expect("parses");
        assert!(netlist.validate().is_ok());
    }
}
