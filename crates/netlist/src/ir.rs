//! The netlist intermediate representation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one wire in a [`Netlist`].
///
/// Wires are numbered densely from zero in creation order; a gate's output
/// wire id is always greater than its input ids, so gate order doubles as a
/// topological order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WireId(pub u32);

impl WireId {
    /// The wire's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WireId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Logic function of a gate. The IR is normalized to the Free-XOR friendly
/// basis {AND, XOR, NOT}; richer functions are lowered by [`crate::Builder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// 2-input AND — the only gate that costs garbled-table entries.
    And,
    /// 2-input XOR — free under the Free-XOR optimization.
    Xor,
    /// Inverter — free (label-role swap) in garbled circuits.
    Not,
}

/// One gate: `out = kind(a, b)` (`b` is ignored for [`GateKind::Not`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// First input wire.
    pub a: WireId,
    /// Second input wire (equal to `a` for NOT gates).
    pub b: WireId,
    /// Output wire.
    pub out: WireId,
}

/// An immutable Boolean circuit with two-party input ownership.
///
/// Built by [`crate::Builder`]; gates are stored in topological order.
/// `constants` are wires whose value is fixed and public to the garbler
/// (they are garbled as garbler-known inputs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) wire_count: u32,
    pub(crate) garbler_inputs: Vec<WireId>,
    pub(crate) evaluator_inputs: Vec<WireId>,
    pub(crate) constants: Vec<(WireId, bool)>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) outputs: Vec<WireId>,
}

impl Netlist {
    /// Total number of wires (inputs, constants and gate outputs).
    pub fn wire_count(&self) -> usize {
        self.wire_count as usize
    }

    /// Wires carrying the garbler's (server's) private input bits, in the
    /// order the garbler supplies them.
    pub fn garbler_inputs(&self) -> &[WireId] {
        &self.garbler_inputs
    }

    /// Wires carrying the evaluator's (client's) private input bits.
    pub fn evaluator_inputs(&self) -> &[WireId] {
        &self.evaluator_inputs
    }

    /// Public constant wires and their values.
    pub fn constants(&self) -> &[(WireId, bool)] {
        &self.constants
    }

    /// Gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Output wires in declaration order.
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Evaluates the circuit in plaintext.
    ///
    /// `garbler_bits` and `evaluator_bits` are matched positionally with
    /// [`Netlist::garbler_inputs`] / [`Netlist::evaluator_inputs`].
    ///
    /// # Panics
    ///
    /// Panics if either slice length does not match the input count.
    pub fn evaluate(&self, garbler_bits: &[bool], evaluator_bits: &[bool]) -> Vec<bool> {
        assert_eq!(
            garbler_bits.len(),
            self.garbler_inputs.len(),
            "garbler input length mismatch"
        );
        assert_eq!(
            evaluator_bits.len(),
            self.evaluator_inputs.len(),
            "evaluator input length mismatch"
        );
        let mut values = vec![false; self.wire_count as usize];
        for (wire, &bit) in self.garbler_inputs.iter().zip(garbler_bits) {
            values[wire.index()] = bit;
        }
        for (wire, &bit) in self.evaluator_inputs.iter().zip(evaluator_bits) {
            values[wire.index()] = bit;
        }
        for &(wire, bit) in &self.constants {
            values[wire.index()] = bit;
        }
        for gate in &self.gates {
            let a = values[gate.a.index()];
            let b = values[gate.b.index()];
            values[gate.out.index()] = match gate.kind {
                GateKind::And => a && b,
                GateKind::Xor => a ^ b,
                GateKind::Not => !a,
            };
        }
        self.outputs.iter().map(|w| values[w.index()]).collect()
    }

    /// Gate statistics: the GC cost model.
    pub fn stats(&self) -> NetlistStats {
        let mut stats = NetlistStats {
            wires: self.wire_count as usize,
            ..NetlistStats::default()
        };
        // AND-depth: longest chain of AND gates, the sequential-GC critical
        // path when XORs are free.
        let mut depth = vec![0u32; self.wire_count as usize];
        for gate in &self.gates {
            let in_depth = depth[gate.a.index()].max(depth[gate.b.index()]);
            let d = match gate.kind {
                GateKind::And => {
                    stats.and_gates += 1;
                    in_depth + 1
                }
                GateKind::Xor => {
                    stats.xor_gates += 1;
                    in_depth
                }
                GateKind::Not => {
                    stats.not_gates += 1;
                    in_depth
                }
            };
            depth[gate.out.index()] = d;
        }
        stats.and_depth = self
            .outputs
            .iter()
            .map(|w| depth[w.index()])
            .max()
            .unwrap_or(0) as usize;
        stats
    }

    /// Checks structural invariants: topological gate order, in-range wire
    /// ids, no wire driven twice. Used by tests and by backends on ingest.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.wire_count as usize;
        let mut driven = vec![false; n];
        for wire in self
            .garbler_inputs
            .iter()
            .chain(&self.evaluator_inputs)
            .chain(self.constants.iter().map(|(w, _)| w))
        {
            if wire.index() >= n {
                return Err(format!("input {wire} out of range"));
            }
            if driven[wire.index()] {
                return Err(format!("wire {wire} sourced twice"));
            }
            driven[wire.index()] = true;
        }
        for gate in &self.gates {
            for input in [gate.a, gate.b] {
                if input.index() >= n {
                    return Err(format!("gate input {input} out of range"));
                }
                if !driven[input.index()] {
                    return Err(format!("gate reads undriven wire {input}"));
                }
            }
            if gate.out.index() >= n {
                return Err(format!("gate output {} out of range", gate.out));
            }
            if driven[gate.out.index()] {
                return Err(format!("wire {} driven twice", gate.out));
            }
            if gate.out <= gate.a || gate.out <= gate.b {
                return Err(format!("gate {} breaks topological order", gate.out));
            }
            driven[gate.out.index()] = true;
        }
        for output in &self.outputs {
            if output.index() >= n || !driven[output.index()] {
                return Err(format!("output {output} undriven"));
            }
        }
        Ok(())
    }
}

/// Gate-count summary of a netlist.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Total wires.
    pub wires: usize,
    /// Non-free gates: each costs one garbled table (two ciphertexts under
    /// half-gates).
    pub and_gates: usize,
    /// Free XOR gates.
    pub xor_gates: usize,
    /// Free inverters.
    pub not_gates: usize,
    /// Longest AND-gate chain from any input to any output.
    pub and_depth: usize,
}

impl NetlistStats {
    /// Garbled tables transmitted (= AND gates, with half-gates).
    pub fn garbled_tables(&self) -> usize {
        self.and_gates
    }

    /// Bytes of garbled tables on the wire (2 × 16-byte ciphertexts each).
    pub fn table_bytes(&self) -> usize {
        self.and_gates * 32
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} AND / {} XOR / {} NOT gates, {} wires, AND-depth {}",
            self.and_gates, self.xor_gates, self.not_gates, self.wires, self.and_depth
        )
    }
}
