//! Integer ⇄ bit-vector encodings (little-endian, two's complement).

/// Encodes `value` as `width` bits, LSB first.
///
/// # Panics
///
/// Panics if `value` does not fit in `width` unsigned bits.
pub fn encode_unsigned(value: u64, width: usize) -> Vec<bool> {
    assert!(
        unsigned_fits(value, width),
        "{value} does not fit in {width} unsigned bits"
    );
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Encodes `value` as `width` two's-complement bits, LSB first.
///
/// # Panics
///
/// Panics if `value` does not fit in `width` signed bits.
pub fn encode_signed(value: i64, width: usize) -> Vec<bool> {
    assert!(
        signed_fits(value, width),
        "{value} does not fit in {width} signed bits"
    );
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Decodes LSB-first bits as an unsigned integer.
///
/// # Panics
///
/// Panics if more than 64 bits are supplied.
pub fn decode_unsigned(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "too many bits for u64");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (b as u64) << i)
}

/// Decodes LSB-first bits as a two's-complement signed integer.
///
/// # Panics
///
/// Panics if the slice is empty or longer than 64 bits.
pub fn decode_signed(bits: &[bool]) -> i64 {
    assert!(!bits.is_empty(), "cannot decode an empty bit vector");
    assert!(bits.len() <= 64, "too many bits for i64");
    let raw = decode_unsigned(bits);
    let width = bits.len();
    if width == 64 {
        return raw as i64;
    }
    if bits[width - 1] {
        // Sign-extend.
        (raw | !((1u64 << width) - 1)) as i64
    } else {
        raw as i64
    }
}

/// True when `value` fits in `width` unsigned bits.
pub fn unsigned_fits(value: u64, width: usize) -> bool {
    width >= 64 || value < (1u64 << width)
}

/// True when `value` fits in `width` two's-complement bits.
pub fn signed_fits(value: i64, width: usize) -> bool {
    if width == 0 {
        return false;
    }
    if width >= 64 {
        return true;
    }
    let bound = 1i64 << (width - 1);
    (-bound..bound).contains(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_round_trip() {
        for value in [0u64, 1, 2, 127, 128, 255] {
            assert_eq!(decode_unsigned(&encode_unsigned(value, 8)), value);
        }
        assert_eq!(decode_unsigned(&encode_unsigned(u64::MAX, 64)), u64::MAX);
    }

    #[test]
    fn signed_round_trip() {
        for value in [-128i64, -1, 0, 1, 127] {
            assert_eq!(decode_signed(&encode_signed(value, 8)), value);
        }
        assert_eq!(decode_signed(&encode_signed(i64::MIN, 64)), i64::MIN);
    }

    #[test]
    fn signed_decoding_sign_extends() {
        // 0b1111 as 4-bit two's complement = -1.
        assert_eq!(decode_signed(&[true, true, true, true]), -1);
        // 0b1000 = -8.
        assert_eq!(decode_signed(&[false, false, false, true]), -8);
    }

    #[test]
    fn lsb_first_ordering() {
        assert_eq!(encode_unsigned(1, 3), vec![true, false, false]);
        assert_eq!(encode_unsigned(4, 3), vec![false, false, true]);
    }

    #[test]
    fn fits_predicates() {
        assert!(unsigned_fits(255, 8));
        assert!(!unsigned_fits(256, 8));
        assert!(signed_fits(-128, 8));
        assert!(!signed_fits(128, 8));
        assert!(signed_fits(127, 8));
        assert!(!signed_fits(-129, 8));
        assert!(!signed_fits(0, 0));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn encode_unsigned_rejects_overflow() {
        encode_unsigned(256, 8);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn encode_signed_rejects_overflow() {
        encode_signed(128, 8);
    }
}
