//! Higher-level circuit operations: the non-MAC garbled operations the
//! paper's case studies mention (ridge regression needs `O(d)` square roots
//! and `O(d²)` divisions in its garbled phase) and the activation functions
//! of the deep-learning motivation (§2.1).
//!
//! All constructions keep the one-AND-per-bit discipline of the arithmetic
//! library: comparisons are borrow chains, conditional updates are muxes.

use crate::builder::{Builder, Bus};
use crate::ir::WireId;

impl Builder {
    /// Signed less-than: 1 when `a < b` as two's complement. Costs
    /// `width + 1` ANDs (unsigned borrow chain on sign-flipped operands).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or empty buses.
    pub fn lt_signed(&mut self, a: &Bus, b: &Bus) -> WireId {
        assert_eq!(a.width(), b.width(), "lt bus width mismatch");
        assert!(a.width() > 0, "empty bus");
        // Signed compare = unsigned compare with the sign bit inverted.
        let flip = |builder: &mut Builder, bus: &Bus| -> Bus {
            let mut wires = bus.wires().to_vec();
            let last = wires.len() - 1;
            wires[last] = builder.not(wires[last]);
            Bus::new(wires)
        };
        let fa = flip(self, a);
        let fb = flip(self, b);
        self.lt_unsigned(&fa, &fb)
    }

    /// Signed maximum of two buses (one compare + one mux).
    pub fn max_signed(&mut self, a: &Bus, b: &Bus) -> Bus {
        let a_lt_b = self.lt_signed(a, b);
        self.mux_bus(a_lt_b, b, a)
    }

    /// Signed minimum of two buses.
    pub fn min_signed(&mut self, a: &Bus, b: &Bus) -> Bus {
        let a_lt_b = self.lt_signed(a, b);
        self.mux_bus(a_lt_b, a, b)
    }

    /// ReLU on a two's-complement bus: `max(x, 0)`, one AND per bit — the
    /// deep-learning activation of §2.1.
    pub fn relu(&mut self, x: &Bus) -> Bus {
        let positive = self.not(x.msb());
        self.and_bus(positive, x)
    }

    /// Absolute value of a two's-complement bus (`|-2^(b-1)|` wraps, as in
    /// hardware).
    pub fn abs(&mut self, x: &Bus) -> Bus {
        self.cond_negate(x.msb(), x)
    }

    /// Unsigned restoring division: returns `(quotient, remainder)` of
    /// `dividend / divisor`, both `width` bits. Division by zero yields
    /// quotient = all-ones, remainder = dividend (the borrow chain never
    /// fires), matching typical hardware dividers.
    ///
    /// Cost ≈ `2·width²` ANDs.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or empty buses.
    pub fn div_unsigned(&mut self, dividend: &Bus, divisor: &Bus) -> (Bus, Bus) {
        assert_eq!(dividend.width(), divisor.width(), "division width mismatch");
        let width = dividend.width();
        assert!(width > 0, "empty bus");
        let zero = self.zero();
        // Remainder register, width+1 bits so the trial subtraction cannot
        // overflow.
        let mut rem = Bus::new(vec![zero; width + 1]);
        let divisor_ext = self.zero_extend(divisor, width + 1);
        let mut quotient = vec![zero; width];
        for i in (0..width).rev() {
            // rem = (rem << 1) | dividend[i]  (drop the top bit; it is
            // always zero after a restoring step).
            let mut shifted = vec![dividend.bit(i)];
            shifted.extend_from_slice(&rem.wires()[..width]);
            rem = Bus::new(shifted);
            // Trial subtract.
            let diff = self.sub_wrap(&rem, &divisor_ext);
            let borrow = self.lt_unsigned(&rem, &divisor_ext);
            let fits = self.not(borrow);
            quotient[i] = fits;
            rem = self.mux_bus(fits, &diff, &rem);
        }
        (Bus::new(quotient), rem.low(width))
    }

    /// Unsigned integer square root by the non-restoring digit recurrence:
    /// returns the `⌈width/2⌉`-bit root `⌊√x⌋`.
    ///
    /// Cost ≈ `width²` ANDs.
    ///
    /// # Panics
    ///
    /// Panics on an empty bus.
    pub fn isqrt(&mut self, x: &Bus) -> Bus {
        assert!(x.width() > 0, "empty bus");
        let zero = self.zero();
        let one = self.constant(true);
        // Pad to an even width.
        let width = x.width().div_ceil(2) * 2;
        let x = self.zero_extend(x, width);
        let out_bits = width / 2;
        // Remainder can reach 2·(root<<1|1); root has out_bits bits, so
        // out_bits + 2 extra headroom is safe.
        let rem_width = out_bits + 2 + 2;
        let mut rem = Bus::new(vec![zero; rem_width]);
        let mut root: Vec<WireId> = Vec::new(); // MSB-first accumulation
        for step in 0..out_bits {
            // Bring down the next two bits (MSB pair first).
            let hi = x.bit(width - 2 * step - 1);
            let lo = x.bit(width - 2 * step - 2);
            let mut shifted = vec![lo, hi];
            shifted.extend_from_slice(&rem.wires()[..rem_width - 2]);
            rem = Bus::new(shifted);
            // trial = (root << 2) | 01
            let mut trial = vec![one, zero];
            for &bit in root.iter().rev() {
                trial.push(bit);
            }
            trial.resize(rem_width, zero);
            let trial = Bus::new(trial);
            let diff = self.sub_wrap(&rem, &trial);
            let borrow = self.lt_unsigned(&rem, &trial);
            let fits = self.not(borrow);
            rem = self.mux_bus(fits, &diff, &rem);
            root.push(fits);
        }
        // root is MSB-first; emit LSB-first.
        root.reverse();
        Bus::new(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{decode_signed, decode_unsigned, encode_signed, encode_unsigned};

    fn eval_unary_signed(f: impl Fn(&mut Builder, &Bus) -> Bus, width: usize, x: i64) -> i64 {
        let mut b = Builder::new();
        let bx = b.garbler_input_bus(width);
        let out = f(&mut b, &bx);
        let netlist = b.build(out.wires().to_vec());
        decode_signed(&netlist.evaluate(&encode_signed(x, width), &[]))
    }

    #[test]
    fn relu_matches_max_with_zero() {
        for x in [-128i64, -5, -1, 0, 1, 99, 127] {
            assert_eq!(
                eval_unary_signed(|b, v| b.relu(v), 8, x),
                x.max(0),
                "x = {x}"
            );
        }
    }

    #[test]
    fn abs_matches_signed_abs() {
        for x in [-127i64, -5, 0, 5, 127] {
            assert_eq!(eval_unary_signed(|b, v| b.abs(v), 8, x), x.abs());
        }
        // The wrap corner.
        assert_eq!(eval_unary_signed(|b, v| b.abs(v), 8, -128), -128);
    }

    #[test]
    fn signed_compare_and_minmax() {
        for a in [-8i64, -1, 0, 3, 7] {
            for b in [-8i64, -2, 0, 3, 6] {
                let mut bld = Builder::new();
                let ba = bld.garbler_input_bus(4);
                let bb = bld.evaluator_input_bus(4);
                let lt = bld.lt_signed(&ba, &bb);
                let mx = bld.max_signed(&ba, &bb);
                let mn = bld.min_signed(&ba, &bb);
                let mut outs = vec![lt];
                outs.extend(mx.wires());
                outs.extend(mn.wires());
                let netlist = bld.build(outs);
                let got = netlist.evaluate(&encode_signed(a, 4), &encode_signed(b, 4));
                assert_eq!(got[0], a < b, "lt({a},{b})");
                assert_eq!(decode_signed(&got[1..5]), a.max(b), "max({a},{b})");
                assert_eq!(decode_signed(&got[5..9]), a.min(b), "min({a},{b})");
            }
        }
    }

    fn run_div(width: usize, a: u64, b: u64) -> (u64, u64) {
        let mut bld = Builder::new();
        let ba = bld.garbler_input_bus(width);
        let bb = bld.evaluator_input_bus(width);
        let (q, r) = bld.div_unsigned(&ba, &bb);
        let mut outs = q.wires().to_vec();
        outs.extend(r.wires());
        let netlist = bld.build(outs);
        let out = netlist.evaluate(&encode_unsigned(a, width), &encode_unsigned(b, width));
        (
            decode_unsigned(&out[..width]),
            decode_unsigned(&out[width..]),
        )
    }

    #[test]
    fn division_exhaustive_4bit() {
        for a in 0..16u64 {
            for b in 1..16u64 {
                let (q, r) = run_div(4, a, b);
                assert_eq!((q, r), (a / b, a % b), "{a}/{b}");
            }
        }
    }

    #[test]
    fn division_8bit_samples() {
        for (a, b) in [(255u64, 1u64), (255, 255), (200, 7), (1, 200), (128, 2)] {
            let (q, r) = run_div(8, a, b);
            assert_eq!((q, r), (a / b, a % b), "{a}/{b}");
        }
    }

    #[test]
    fn division_by_zero_convention() {
        let (q, r) = run_div(4, 9, 0);
        assert_eq!(q, 15, "all-ones quotient");
        assert_eq!(r, 9, "remainder = dividend");
    }

    fn run_isqrt(width: usize, x: u64) -> u64 {
        let mut bld = Builder::new();
        let bx = bld.garbler_input_bus(width);
        let root = bld.isqrt(&bx);
        let netlist = bld.build(root.wires().to_vec());
        decode_unsigned(&netlist.evaluate(&encode_unsigned(x, width), &[]))
    }

    #[test]
    fn isqrt_exhaustive_8bit() {
        for x in 0..256u64 {
            assert_eq!(run_isqrt(8, x), (x as f64).sqrt() as u64, "x = {x}");
        }
    }

    #[test]
    fn isqrt_odd_width() {
        for x in [0u64, 1, 2, 80, 127] {
            assert_eq!(run_isqrt(7, x), (x as f64).sqrt() as u64, "x = {x}");
        }
    }

    #[test]
    fn isqrt_16bit_samples() {
        for x in [0u64, 1, 255, 256, 10_000, 65_535] {
            assert_eq!(run_isqrt(16, x), (x as f64).sqrt() as u64, "x = {x}");
        }
    }

    #[test]
    fn division_cost_is_quadratic() {
        let cost = |width: usize| {
            let mut bld = Builder::new();
            let ba = bld.garbler_input_bus(width);
            let bb = bld.evaluator_input_bus(width);
            let (q, r) = bld.div_unsigned(&ba, &bb);
            let mut outs = q.wires().to_vec();
            outs.extend(r.wires());
            bld.build(outs).stats().and_gates
        };
        let c8 = cost(8);
        let c16 = cost(16);
        let ratio = c16 as f64 / c8 as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
        // The paper costs division ≈ 2× a MAC at the same width; sanity
        // check that our division is the same order as two multiplications.
        assert!(c8 < 4 * 8 * 8 * 2, "division unexpectedly expensive: {c8}");
    }
}

impl Builder {
    /// Population count: number of set bits, as a `⌈log2(width+1)⌉`-bit bus.
    /// Built as a balanced adder tree over single-bit operands.
    ///
    /// # Panics
    ///
    /// Panics on an empty bus.
    pub fn popcount(&mut self, x: &Bus) -> Bus {
        assert!(x.width() > 0, "empty bus");
        let mut operands: Vec<Bus> = x.iter().map(|&w| Bus::new(vec![w])).collect();
        while operands.len() > 1 {
            let mut next = Vec::with_capacity(operands.len().div_ceil(2));
            let mut iter = operands.into_iter();
            while let Some(lhs) = iter.next() {
                match iter.next() {
                    Some(rhs) => next.push(self.add_expand(&lhs, &rhs)),
                    None => next.push(lhs),
                }
            }
            operands = next;
        }
        operands.pop().expect("at least one operand")
    }

    /// Hamming distance between two equal-width buses — the data-mining
    /// similarity kernel (free XORs + one popcount).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or empty buses.
    pub fn hamming_distance(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.width(), b.width(), "hamming width mismatch");
        let diff: Bus = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| self.xor(x, y))
            .collect();
        self.popcount(&diff)
    }

    /// Index of the signed maximum among `candidates` (ties resolve to the
    /// lower index) as a `⌈log2(n)⌉`-bit bus — the classifier head of a
    /// private-inference pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or widths differ.
    pub fn argmax_signed(&mut self, candidates: &[Bus]) -> Bus {
        assert!(!candidates.is_empty(), "argmax needs candidates");
        let index_width = (usize::BITS - (candidates.len() - 1).leading_zeros()).max(1) as usize;
        let zero = self.zero();
        let mut best_val = candidates[0].clone();
        let mut best_idx = Bus::new(vec![zero; index_width]);
        for (i, candidate) in candidates.iter().enumerate().skip(1) {
            assert_eq!(candidate.width(), best_val.width(), "argmax width mismatch");
            // candidate > best  ⇔  best < candidate.
            let better = self.lt_signed(&best_val, candidate);
            best_val = self.mux_bus(better, candidate, &best_val);
            let idx_bits: Bus = (0..index_width)
                .map(|bit| self.constant((i >> bit) & 1 == 1))
                .collect();
            best_idx = self.mux_bus(better, &idx_bits, &best_idx);
        }
        best_idx
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::encoding::{decode_unsigned, encode_signed, encode_unsigned};

    #[test]
    fn popcount_exhaustive_6bit() {
        for x in 0..64u64 {
            let mut b = Builder::new();
            let bx = b.garbler_input_bus(6);
            let pc = b.popcount(&bx);
            let netlist = b.build(pc.wires().to_vec());
            let out = netlist.evaluate(&encode_unsigned(x, 6), &[]);
            assert_eq!(decode_unsigned(&out), x.count_ones() as u64, "x = {x}");
        }
    }

    #[test]
    fn hamming_matches_xor_popcount() {
        for (a, c) in [(0b1010u64, 0b0101u64), (0xff, 0x00), (0x3c, 0x3c), (1, 0)] {
            let mut b = Builder::new();
            let ba = b.garbler_input_bus(8);
            let bc = b.evaluator_input_bus(8);
            let h = b.hamming_distance(&ba, &bc);
            let netlist = b.build(h.wires().to_vec());
            let out = netlist.evaluate(&encode_unsigned(a, 8), &encode_unsigned(c, 8));
            assert_eq!(decode_unsigned(&out), (a ^ c).count_ones() as u64);
        }
    }

    #[test]
    fn argmax_picks_signed_maximum() {
        let cases: [Vec<i64>; 4] = [
            vec![3, -5, 7, 1],
            vec![-1, -2, -3],
            vec![5, 5, 4], // tie resolves to the lower index
            vec![-128, 127],
        ];
        for values in cases {
            let mut b = Builder::new();
            let buses: Vec<Bus> = values.iter().map(|_| b.garbler_input_bus(8)).collect();
            let idx = b.argmax_signed(&buses);
            let netlist = b.build(idx.wires().to_vec());
            let bits: Vec<bool> = values.iter().flat_map(|&v| encode_signed(v, 8)).collect();
            let out = netlist.evaluate(&bits, &[]);
            let want = values
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(i, _)| i as u64)
                .expect("non-empty");
            assert_eq!(decode_unsigned(&out), want, "values {values:?}");
        }
    }

    #[test]
    fn argmax_single_candidate_is_zero() {
        let mut b = Builder::new();
        let bus = b.garbler_input_bus(4);
        let idx = b.argmax_signed(&[bus]);
        let netlist = b.build(idx.wires().to_vec());
        assert_eq!(
            decode_unsigned(&netlist.evaluate(&encode_signed(-3, 4), &[])),
            0
        );
    }
}
