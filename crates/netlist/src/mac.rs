//! The MAC (multiply-accumulate) unit — MAXelerator's entire datapath.
//!
//! One MAC round computes `acc' = acc + a·x` where `a` is the garbler's
//! (server's) matrix element, `x` the evaluator's (client's) vector element,
//! and `acc` the running accumulator carried between sequential-GC rounds.
//!
//! Signed inputs follow §4.3 of the paper: "two multiplexer-2's complement
//! pairs are placed at both input and output of the multiplier" — the
//! magnitudes are multiplied by the unsigned tree and the product is
//! conditionally negated when the input signs differ.

use crate::builder::Builder;
use crate::ir::Netlist;
use crate::mult::MultiplierKind;

/// Signedness of the MAC operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Operands are unsigned integers.
    Unsigned,
    /// Operands are two's-complement signed (fixed-point) values.
    Signed,
}

/// Wire-index ranges of the MAC netlist's ports, for wiring the sequential
/// GC outer loop.
///
/// All ranges are positional indices into the corresponding input/output
/// lists of the [`Netlist`], not raw wire ids:
/// * `a` — garbler inputs `0..bit_width`,
/// * `acc_in` — garbler inputs `bit_width..bit_width+acc_width` **in round
///   zero only**; in later rounds the sequential garbler feeds the previous
///   round's `acc_out` labels straight through,
/// * `x` — evaluator inputs `0..bit_width`,
/// * `acc_out` — all `acc_width` outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacPorts {
    /// Operand bit-width `b`.
    pub bit_width: usize,
    /// Accumulator width.
    pub acc_width: usize,
    /// Number of garbler input bits (`a` then `acc_in`).
    pub garbler_bits: usize,
    /// Number of evaluator input bits (`x`).
    pub evaluator_bits: usize,
}

/// A MAC netlist plus its port map.
///
/// # Example
///
/// ```
/// use max_netlist::{MacCircuit, MultiplierKind, Sign};
///
/// let mac = MacCircuit::build(8, 24, Sign::Signed, MultiplierKind::Tree);
/// // acc' = -3 + (-5 · 7)
/// let out = mac.evaluate_signed(-5, -3, 7);
/// assert_eq!(out, -38);
/// ```
#[derive(Clone, Debug)]
pub struct MacCircuit {
    netlist: Netlist,
    ports: MacPorts,
    sign: Sign,
}

impl MacCircuit {
    /// Builds a MAC circuit with operand width `bit_width` and accumulator
    /// width `acc_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bit_width == 0` or `acc_width < 2 * bit_width`.
    pub fn build(
        bit_width: usize,
        acc_width: usize,
        sign: Sign,
        multiplier: MultiplierKind,
    ) -> Self {
        assert!(bit_width > 0, "bit width must be positive");
        assert!(
            acc_width >= 2 * bit_width,
            "accumulator must hold a full product: acc_width {acc_width} < 2*{bit_width}"
        );
        let mut b = Builder::new();
        let a = b.garbler_input_bus(bit_width);
        let acc_in = b.garbler_input_bus(acc_width);
        let x = b.evaluator_input_bus(bit_width);

        let product = match sign {
            Sign::Unsigned => {
                let prod = b.mul(multiplier, &a, &x);
                b.zero_extend(&prod, acc_width)
            }
            Sign::Signed => {
                // Input mux-2's-complement pairs.
                let sign_a = a.msb();
                let sign_x = x.msb();
                let mag_a = b.cond_negate(sign_a, &a);
                let mag_x = b.cond_negate(sign_x, &x);
                // |a| ≤ 2^(b-1) fits unsigned in b bits, so the unsigned
                // tree is exact.
                let prod = b.mul(multiplier, &mag_a, &mag_x);
                // Output pair: negate when signs differ.
                let sign_p = b.xor(sign_a, sign_x);
                let signed_prod = b.cond_negate(sign_p, &prod);
                b.sign_extend(&signed_prod, acc_width)
            }
        };
        let acc_out = b.add_wrap(&acc_in, &product);
        let netlist = b.build(acc_out.wires().to_vec());
        let ports = MacPorts {
            bit_width,
            acc_width,
            garbler_bits: bit_width + acc_width,
            evaluator_bits: bit_width,
        };
        MacCircuit {
            netlist,
            ports,
            sign,
        }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The port map.
    pub fn ports(&self) -> &MacPorts {
        &self.ports
    }

    /// Signedness the circuit was built for.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Packs plaintext garbler inputs (`a`, `acc`) into the input bit order.
    ///
    /// # Panics
    ///
    /// Panics if the values do not fit the configured widths.
    pub fn garbler_bits(&self, a: i64, acc: i64) -> Vec<bool> {
        let mut bits = match self.sign {
            Sign::Signed => crate::encoding::encode_signed(a, self.ports.bit_width),
            Sign::Unsigned => crate::encoding::encode_unsigned(a as u64, self.ports.bit_width),
        };
        bits.extend(match self.sign {
            Sign::Signed => crate::encoding::encode_signed(acc, self.ports.acc_width),
            Sign::Unsigned => crate::encoding::encode_unsigned(acc as u64, self.ports.acc_width),
        });
        bits
    }

    /// Packs the plaintext evaluator input `x` into the input bit order.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not fit the configured width.
    pub fn evaluator_bits(&self, x: i64) -> Vec<bool> {
        match self.sign {
            Sign::Signed => crate::encoding::encode_signed(x, self.ports.bit_width),
            Sign::Unsigned => crate::encoding::encode_unsigned(x as u64, self.ports.bit_width),
        }
    }

    /// Plaintext reference: `acc + a·x` for signed circuits.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is unsigned or inputs do not fit.
    pub fn evaluate_signed(&self, a: i64, acc: i64, x: i64) -> i64 {
        assert_eq!(self.sign, Sign::Signed, "circuit is unsigned");
        let out = self
            .netlist
            .evaluate(&self.garbler_bits(a, acc), &self.evaluator_bits(x));
        crate::encoding::decode_signed(&out)
    }

    /// Plaintext reference: `acc + a·x` for unsigned circuits.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is signed or inputs do not fit.
    pub fn evaluate_unsigned(&self, a: u64, acc: u64, x: u64) -> u64 {
        assert_eq!(self.sign, Sign::Unsigned, "circuit is signed");
        let out = self.netlist.evaluate(
            &self.garbler_bits(a as i64, acc as i64),
            &self.evaluator_bits(x as i64),
        );
        crate::encoding::decode_unsigned(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_mac_small_exhaustive() {
        let mac = MacCircuit::build(4, 8, Sign::Unsigned, MultiplierKind::Tree);
        for a in 0..16u64 {
            for x in 0..16u64 {
                for acc in [0u64, 1, 15, 30] {
                    assert_eq!(
                        mac.evaluate_unsigned(a, acc, x),
                        (acc + a * x) % 256,
                        "a={a} x={x} acc={acc}"
                    );
                }
            }
        }
    }

    #[test]
    fn signed_mac_corners() {
        let mac = MacCircuit::build(8, 24, Sign::Signed, MultiplierKind::Tree);
        for (a, x, acc) in [
            (0i64, 0i64, 0i64),
            (-128, -128, 0),
            (-128, 127, 1000),
            (127, 127, -1000),
            (-1, 1, 0),
            (1, -1, -1),
            (-128, 0, 5),
            (0, -128, -5),
        ] {
            assert_eq!(mac.evaluate_signed(a, acc, x), acc + a * x, "a={a} x={x}");
        }
    }

    #[test]
    fn signed_mac_small_exhaustive() {
        let mac = MacCircuit::build(3, 8, Sign::Signed, MultiplierKind::Tree);
        for a in -4i64..4 {
            for x in -4i64..4 {
                for acc in [-20i64, -1, 0, 1, 20] {
                    assert_eq!(
                        mac.evaluate_signed(a, acc, x),
                        acc + a * x,
                        "a={a} x={x} acc={acc}"
                    );
                }
            }
        }
    }

    #[test]
    fn serial_and_tree_macs_agree() {
        let tree = MacCircuit::build(8, 16, Sign::Signed, MultiplierKind::Tree);
        let serial = MacCircuit::build(8, 16, Sign::Signed, MultiplierKind::Serial);
        for (a, x, acc) in [(7i64, -9i64, 100i64), (-100, 100, -5000), (64, 64, 0)] {
            assert_eq!(
                tree.evaluate_signed(a, acc, x),
                serial.evaluate_signed(a, acc, x)
            );
        }
    }

    #[test]
    fn accumulator_wraps_modulo_width() {
        let mac = MacCircuit::build(4, 8, Sign::Signed, MultiplierKind::Tree);
        // 100 + 7*7 = 149 > 127: wraps to 149 - 256 = -107 in 8 bits.
        assert_eq!(mac.evaluate_signed(7, 100, 7), 149 - 256);
    }

    #[test]
    fn port_counts_match_netlist() {
        let mac = MacCircuit::build(8, 24, Sign::Signed, MultiplierKind::Tree);
        assert_eq!(
            mac.netlist().garbler_inputs().len(),
            mac.ports().garbler_bits
        );
        assert_eq!(
            mac.netlist().evaluator_inputs().len(),
            mac.ports().evaluator_bits
        );
        assert_eq!(mac.netlist().outputs().len(), mac.ports().acc_width);
    }

    #[test]
    fn and_count_reported() {
        // Document the gate budget the scheduler must place: b=8 signed tree
        // MAC. Exact count is asserted to catch accidental regressions in
        // the circuit library (update deliberately if the library changes).
        let mac = MacCircuit::build(8, 24, Sign::Signed, MultiplierKind::Tree);
        let stats = mac.netlist().stats();
        assert!(stats.and_gates > 0);
        assert!(
            stats.and_gates < 3 * 8 * (8 / 2 + (8 / 2 + 8) / 3),
            "AND count {} exceeds the paper's table-slot budget",
            stats.and_gates
        );
    }

    #[test]
    #[should_panic(expected = "accumulator must hold a full product")]
    fn narrow_accumulator_rejected() {
        MacCircuit::build(8, 15, Sign::Signed, MultiplierKind::Tree);
    }

    #[test]
    #[should_panic(expected = "circuit is unsigned")]
    fn signed_eval_on_unsigned_circuit_panics() {
        MacCircuit::build(4, 8, Sign::Unsigned, MultiplierKind::Tree).evaluate_signed(1, 1, 1);
    }
}
