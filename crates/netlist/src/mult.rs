//! Unsigned multipliers: the serial shift–add structure (TinyGarble's
//! baseline) and the tree structure of Figure 2 that MAXelerator
//! parallelizes.

use crate::builder::{Builder, Bus};

/// Which multiplier structure to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MultiplierKind {
    /// Shift–add chain: minimal wiring, serial AND-dependency chain. This is
    /// the structure the paper attributes to TinyGarble's library ("follows
    /// a serial nature that does not allow parallelism").
    Serial,
    /// Balanced adder tree over partial-product rows (Figure 2): logarithmic
    /// AND-depth, the shape MAXelerator's FSM schedules across cores.
    Tree,
}

impl Builder {
    /// Unsigned multiply `a × x` producing `a.width() + x.width()` bits.
    ///
    /// # Panics
    ///
    /// Panics if either bus is empty.
    pub fn mul(&mut self, kind: MultiplierKind, a: &Bus, x: &Bus) -> Bus {
        assert!(
            a.width() > 0 && x.width() > 0,
            "cannot multiply empty buses"
        );
        match kind {
            MultiplierKind::Serial => self.mul_serial(a, x),
            MultiplierKind::Tree => self.mul_tree(a, x),
        }
    }

    /// Serial shift–add multiplier: `acc += (a[i] ? x : 0) << i` for each bit
    /// of `a` in turn. AND-depth is `O(a.width · x.width)`-ish along the
    /// ripple chains — no parallelism to exploit.
    fn mul_serial(&mut self, a: &Bus, x: &Bus) -> Bus {
        let out_width = a.width() + x.width();
        let zero = self.zero();
        // acc starts as the first partial product, zero-extended.
        let first = self.and_bus(a.bit(0), x);
        let mut acc = self.zero_extend(&first, out_width);
        for i in 1..a.width() {
            let row = self.and_bus(a.bit(i), x);
            let shifted = row.shifted_left(i, zero);
            let padded = self.zero_extend(&shifted, out_width);
            acc = self.add_wrap(&acc, &padded);
        }
        acc
    }

    /// Tree multiplier (Figure 2): form all partial-product rows, then sum
    /// them with a balanced binary adder tree. The shifts are free rewiring
    /// (in hardware: delay registers), and the tree halves the number of
    /// operands every level.
    fn mul_tree(&mut self, a: &Bus, x: &Bus) -> Bus {
        let out_width = a.width() + x.width();
        let zero = self.zero();
        // Level 0: one shifted row per bit of a.
        let mut operands: Vec<Bus> = (0..a.width())
            .map(|i| {
                let row = self.and_bus(a.bit(i), x);
                row.shifted_left(i, zero)
            })
            .collect();
        // Reduce pairwise until a single operand remains.
        while operands.len() > 1 {
            let mut next = Vec::with_capacity(operands.len().div_ceil(2));
            let mut iter = operands.into_iter();
            while let Some(lhs) = iter.next() {
                match iter.next() {
                    Some(rhs) => next.push(self.add_expand(&lhs, &rhs)),
                    None => next.push(lhs),
                }
            }
            operands = next;
        }
        let product = operands.pop().expect("at least one operand");
        // The exact product fits in out_width bits; trim any expand slack.
        let trimmed = product.low(product.width().min(out_width));
        self.zero_extend(&trimmed, out_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{decode_unsigned, encode_unsigned};

    fn run_mul(kind: MultiplierKind, width: usize, a: u64, x: u64) -> u64 {
        let mut b = Builder::new();
        let ba = b.garbler_input_bus(width);
        let bx = b.evaluator_input_bus(width);
        let prod = b.mul(kind, &ba, &bx);
        assert_eq!(prod.width(), 2 * width);
        let netlist = b.build(prod.wires().to_vec());
        decode_unsigned(&netlist.evaluate(&encode_unsigned(a, width), &encode_unsigned(x, width)))
    }

    #[test]
    fn serial_multiplier_exhaustive_4bit() {
        for a in 0..16u64 {
            for x in 0..16u64 {
                assert_eq!(run_mul(MultiplierKind::Serial, 4, a, x), a * x);
            }
        }
    }

    #[test]
    fn tree_multiplier_exhaustive_4bit() {
        for a in 0..16u64 {
            for x in 0..16u64 {
                assert_eq!(run_mul(MultiplierKind::Tree, 4, a, x), a * x);
            }
        }
    }

    #[test]
    fn multipliers_agree_at_8bit_corners() {
        for (a, x) in [
            (0u64, 0u64),
            (255, 255),
            (255, 1),
            (1, 255),
            (128, 2),
            (85, 3),
        ] {
            assert_eq!(
                run_mul(MultiplierKind::Serial, 8, a, x),
                run_mul(MultiplierKind::Tree, 8, a, x)
            );
        }
    }

    #[test]
    fn multiplier_structure_stats() {
        // With ripple-carry adders both structures share the same AND-depth
        // (2b-1: the final 2b-bit carry chain dominates). The tree's win —
        // which the MAXelerator scheduler exploits — is that its adder
        // operands are independent rows, so the work packs onto parallel GC
        // cores; that property is asserted by the scheduler's utilization
        // tests in the `maxelerator` crate. Here we pin the gate-level
        // facts so circuit-library regressions are caught.
        for width in [8usize, 16, 32] {
            let stats = |kind| {
                let mut b = Builder::new();
                let ba = b.garbler_input_bus(width);
                let bx = b.evaluator_input_bus(width);
                let prod = b.mul(kind, &ba, &bx);
                b.build(prod.wires().to_vec()).stats()
            };
            let tree = stats(MultiplierKind::Tree);
            let serial = stats(MultiplierKind::Serial);
            assert_eq!(tree.and_depth, 2 * width - 1, "tree depth at b={width}");
            assert_eq!(serial.and_depth, 2 * width - 1, "serial depth at b={width}");
            // Both are Θ(b²) ANDs; the tree pays a small premium for the
            // expanding adder widths.
            assert!(tree.and_gates >= serial.and_gates);
            assert!(tree.and_gates <= serial.and_gates + 2 * width * 2);
        }
    }

    #[test]
    fn and_count_grows_quadratically() {
        let count = |width: usize| {
            let mut b = Builder::new();
            let ba = b.garbler_input_bus(width);
            let bx = b.evaluator_input_bus(width);
            let prod = b.mul(MultiplierKind::Tree, &ba, &bx);
            b.build(prod.wires().to_vec()).stats().and_gates
        };
        let c8 = count(8);
        let c16 = count(16);
        // Quadratic-ish: ratio between 3x and 5x when width doubles.
        let ratio = c16 as f64 / c8 as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn single_bit_operands() {
        for a in 0..2u64 {
            for x in 0..2 {
                assert_eq!(run_mul(MultiplierKind::Tree, 1, a, x), a * x);
                assert_eq!(run_mul(MultiplierKind::Serial, 1, a, x), a * x);
            }
        }
    }
}
