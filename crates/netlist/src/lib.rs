//! Boolean circuit IR and GC-optimized arithmetic circuit library.
//!
//! Garbled-circuit cost is dominated by non-XOR gates (Free-XOR makes XOR
//! free), so every builder in this crate minimizes AND-gate count:
//!
//! * full adder with **one** AND gate per bit (the TinyGarble-optimized
//!   construction the paper adopts),
//! * conditional two's complement with one AND per bit,
//! * 2:1 multiplexer with one AND per bit,
//! * serial (shift–add) multiplier — the TinyGarble baseline structure,
//! * **tree multiplier** — the parallel structure of Figure 2 of the paper,
//!   which MAXelerator's FSM schedules across its GC cores,
//! * the signed/unsigned **MAC** (multiply-accumulate) unit that is
//!   MAXelerator's entire datapath.
//!
//! Circuits are built with [`Builder`], produce an immutable [`Netlist`]
//! whose gates are in topological order, and can be evaluated in plaintext
//! with [`Netlist::evaluate`] — the reference semantics every garbling
//! backend in this repository is tested against.
//!
//! # Example
//!
//! ```
//! use max_netlist::{Builder, encode_unsigned, decode_unsigned};
//!
//! let mut b = Builder::new();
//! let x = b.garbler_input_bus(8);
//! let y = b.evaluator_input_bus(8);
//! let sum = b.add_expand(&x, &y);
//! let netlist = b.build(sum.wires().to_vec());
//!
//! let out = netlist.evaluate(&encode_unsigned(200, 8), &encode_unsigned(100, 8));
//! assert_eq!(decode_unsigned(&out), 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
pub mod bristol;
mod builder;
mod encoding;
mod ir;
mod mac;
mod mult;
mod ops;
mod opt;

pub use builder::{Builder, Bus};
pub use encoding::{
    decode_signed, decode_unsigned, encode_signed, encode_unsigned, signed_fits, unsigned_fits,
};
pub use ir::{Gate, GateKind, Netlist, NetlistStats, WireId};
pub use mac::{MacCircuit, MacPorts, Sign};
pub use mult::MultiplierKind;
pub use opt::OptStats;
