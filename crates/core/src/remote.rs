//! Session-driven two-party protocol over any [`Transport`].
//!
//! The in-process [`connect`](crate::connect)/[`secure_matvec`](crate::secure_matvec)
//! pair assumes both parties live in one address space. This module is the
//! wire-facing equivalent: a [`RemoteClient`] (the evaluator) speaks a small
//! framed protocol to a serving garbler — over the in-memory
//! [`Duplex`](max_gc::channel::Duplex) or loopback/real TCP, identically —
//! and recovers exact MAC results through the full OT-extension stack.
//!
//! ## Protocol
//!
//! ```text
//! client                                server
//!   | -- HELLO(version, bit_width) ------> |   handshake
//!   | <-- ACCEPT(session, ot_seed, token, |
//!   |            rows, cols, config) ----- |   (or REJECT(reason))
//!   |                                      |
//!   | -- JOB(columns) -------------------> |   enqueue on the unit pool
//!   | <-- READY(job_id) ------------------ |   (or BUSY(retry_after_ms))
//!   |    per output element:               |
//!   | -- EXT(OT corrections) -----------> |
//!   | <-- CIPHER(OT ciphertext blocks) --- |
//!   | <-- ROUNDS (all cols rounds, 1 frame)|
//!   | <-- STATS(fabric cycles) ----------- |   job done
//!   |            ... more jobs ...         |
//!   | -- PING(nonce) --------------------> |   keep-alive between jobs
//!   | <-- PONG(nonce) -------------------- |
//!   | -- BYE ----------------------------> |   graceful close
//! ```
//!
//! **Resumption.** A client that loses its connection mid-job reconnects
//! and sends `RESUME(session, token, job, columns, elements_done)` instead
//! of HELLO. The server re-derives the garbled job from the original seed,
//! restores its OT-sender snapshot at the element boundary, and replies
//! `READY(job)`; the exchange continues from `elements_done`. Both parties
//! roll back to the start of the first incomplete element, so the stitched
//! transcript is bit-identical to an uninterrupted run (the property the
//! chaos e2e tests pin down). `resume_token` is an unguessable per-session
//! secret from ACCEPT — possession proves the resumer is the original
//! client. Servers must mint it from fresh OS entropy, never from the
//! seed chain: [`derive_seed`] is an invertible bijection and `ot_seed`
//! (also seed-derived) is published on the wire, so a seed-derived token
//! would be forgeable by any client. `max-serve` draws tokens from the OS;
//! the in-crate test servers derive them for reproducibility and make no
//! authentication claim.
//!
//! **Tracing.** Since v4 every HELLO/RESUME carries a [`TraceContext`]
//! (128-bit trace id + root span id) minted by the client from OS entropy
//! — the same provenance as resume tokens — and STATS echoes the trace id
//! back. The ids are correlation handles for observability (stitching
//! client-side and server-side span snapshots into one per-job timeline);
//! they are sent in the clear, derive no key material, and never perturb
//! the OT/garbling byte stream. Deterministic transcript tests connect
//! with [`TraceContext::none`] so HELLO frames stay bit-comparable.
//!
//! **Metrics.** An admin `METRICS` frame (v4) may be sent instead of — or
//! between — jobs; the server answers with a JSON snapshot of its live
//! counters/percentiles without touching the job state machine, so
//! operators can poll tail latency from a running server even while it is
//! draining.
//!
//! **Prepared models (v5).** A client may register a weight matrix under a
//! caller-chosen id (`MODEL_PUT`), inspect its precompute stock
//! (`MODEL_INFO`), or drop it (`MODEL_EVICT`); the server answers each with
//! a `MODEL_STAT` snapshot (or `REJECT(MODEL)`). A `JOB` may then name a
//! model id, and the server serves it from pre-garbled streams built during
//! idle time — the paper's §3 offline/online split: the online exchange
//! shrinks to OT plus replay of already-materialized frames. These frames
//! are garbler-side only: weights travel from the *model owner* to the
//! server in the clear (the garbler knows the matrix in this model, exactly
//! as in the in-process API), while evaluator inputs still enter solely as
//! OT choice bits. Every serve consumes a distinct generation of the
//! model's seed schedule, so labels are never reused across serves.
//!
//! Control frames are tagged raw frames; OT ciphertexts ride a
//! [`FrameKind::Blocks`] frame so the per-kind channel accounting matches
//! the in-process transcript split. The client's `x` never crosses the wire
//! — only OT correction bits do, exactly as in the paper's Figure 1.
//!
//! Seeds: the server derives one seed per session (see [`derive_seed`]) and
//! publishes `ot_seed` in ACCEPT; both sides run
//! [`iknp::setup_pair`]`(ot_seed)` and keep their half. This mirrors the
//! repository's in-process trusted-dealer base-OT shortcut — the base phase
//! is modeled, the extension is real.
//!
//! **Integrity (v6).** Every protocol frame is sealed with a CRC32 prefix
//! ([`max_gc::channel::seal_frame`]), so a bit flipped in transit dies at
//! framing as a typed [`TransportError::Checksum`](max_gc::channel::TransportError)
//! instead of reaching GC state. Above the per-frame check, both sides fold
//! each job's GC-critical bytes — EXT bodies, CIPHER frames, ROUNDS frames
//! — into a rolling [`TranscriptDigest`]; the client piggy-backs its
//! running value as a 16-byte EXT trailer and the server echoes its own in
//! STATS, so any divergence (a corrupted cache entry, journal bit rot, a
//! frame the CRC happened to miss) surfaces as `REJECT(INTEGRITY)` /
//! [`AcceleratorError::Integrity`] within one element. Both checks detect
//! **accidental** corruption only: the digest key is fixed and public, so
//! an active adversary can tamper and re-seal — the honest-but-curious
//! boundary of the stack is unchanged.

// Protocol paths must never panic on peer input; unwraps are confined to
// tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use bytes::{Buf, BufMut, Bytes, BytesMut};
use max_crypto::{Block, TranscriptDigest};
use max_gc::channel::{decode_blocks, encode_block_pairs, open_frame, seal_frame, FrameKind};
use max_gc::Transport;
use max_ot::iknp::{self, CipherMsg, ExtendMsg, OtExtReceiver, OtExtSender, KAPPA};
use max_telemetry::TraceContext;

use crate::accelerator::{Maxelerator, RoundMessage, ScheduledEvaluator};
use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;
use crate::server::MatvecTranscript;
use crate::wire::{decode_round_message, encode_round_message};

/// Version of the handshake + job protocol in this module.
///
/// v2 added RESUME/PING/PONG and the `resume_token` field of ACCEPT.
/// v3 coalesced the per-round ROUND frames of each output element into a
/// single ROUNDS burst frame (count + length-prefixed round bodies), so an
/// element's exchange is a fixed three frames regardless of model width.
/// v4 extended HELLO/RESUME with a client-minted [`TraceContext`] (echoed
/// in STATS) and added the admin METRICS request/reply pair — frame
/// *counts* are unchanged, only payloads grew, so resume offsets and
/// fault-injection cut arithmetic carry over from v3.
/// v5 added the prepared-model frames (MODEL_PUT / MODEL_STAT /
/// MODEL_INFO / MODEL_EVICT), a `REJECT(MODEL)` code, and an optional
/// model id on JOB. Job/element frame *counts* are again unchanged — a
/// model-backed job streams the same EXT → CIPHER → ROUNDS exchange — so
/// resume offsets and fault-injection cut arithmetic still carry over.
/// v6 added end-to-end integrity: every frame is sealed with a CRC32
/// prefix ([`max_gc::channel::seal_frame`]), both sides fold the GC-critical
/// bytes (EXT bodies, CIPHER frames, ROUNDS frames) into a rolling
/// [`TranscriptDigest`], each EXT carries the client's running digest as a
/// 16-byte trailer, STATS carries the server's, and a mismatch is answered
/// with `REJECT(INTEGRITY)`. Frame *counts* are once more unchanged (the
/// seal and the trailer ride inside existing frames), so resume offsets and
/// fault-injection cut arithmetic carry over from v3.
pub const PROTOCOL_VERSION: u16 = 6;

/// Largest METRICS reply body the decoder will allocate (1 MiB of JSON is
/// far beyond any honest snapshot; a hostile length dies here, not in the
/// allocator).
pub const MAX_METRICS_BYTES: usize = 1 << 20;

/// Largest OT batch (choice bits) a single EXT frame may declare.
///
/// An honest batch is `cols * bit_width` (≤ 8192 for the paper's largest
/// configuration); the cap leaves headroom for big models while keeping a
/// hostile count from driving allocation.
pub const MAX_OT_BATCH: usize = 1 << 20;

/// REJECT code: the client spoke an unsupported protocol version.
pub const REJECT_VERSION: u8 = 1;
/// REJECT code: the client asked for a bit-width this server is not running.
pub const REJECT_WIDTH: u8 = 2;
/// REJECT code: the server is draining and takes no new sessions.
pub const REJECT_DRAINING: u8 = 3;
/// REJECT code: the server holds no checkpoint matching a RESUME.
pub const REJECT_RESUME: u8 = 4;
/// REJECT code: the load-shedding breaker is open; try again later.
pub const REJECT_OVERLOAD: u8 = 5;
/// REJECT code: the named prepared model is unknown (never registered,
/// already evicted, or refused at registration).
pub const REJECT_MODEL: u8 = 6;
/// REJECT code: the peers' rolling transcript digests diverged (v6) — a
/// GC-critical byte was corrupted after framing. The job's checkpoints
/// past the last verified boundary are invalid.
pub const REJECT_INTEGRITY: u8 = 7;

/// Largest element count (`rows * cols`) a MODEL_PUT frame may declare.
///
/// 2^16 i64 weights is a 512 KiB payload — far above the paper's largest
/// tile-decomposed layers, far below [`max_gc::channel::MAX_FRAME_BYTES`];
/// a hostile count dies here, not in the allocator.
pub const MAX_MODEL_ELEMENTS: usize = 1 << 16;

/// Human-readable reason for a REJECT code.
pub fn reject_reason(code: u8) -> &'static str {
    match code {
        REJECT_VERSION => "protocol version mismatch",
        REJECT_WIDTH => "unsupported bit width",
        REJECT_DRAINING => "server draining",
        REJECT_RESUME => "resume state not found",
        REJECT_OVERLOAD => "server shedding load",
        REJECT_MODEL => "unknown prepared model",
        REJECT_INTEGRITY => "transcript integrity mismatch",
        _ => "unknown reason",
    }
}

const TAG_HELLO: u8 = 1;
const TAG_ACCEPT: u8 = 2;
const TAG_REJECT: u8 = 3;
const TAG_JOB: u8 = 4;
const TAG_BUSY: u8 = 5;
const TAG_READY: u8 = 6;
const TAG_STATS: u8 = 7;
const TAG_BYE: u8 = 8;
const TAG_EXT: u8 = 9;
// TAG 10 was the v2 per-round ROUND frame; v3 replaced it with ROUNDS.
const TAG_RESUME: u8 = 11;
const TAG_PING: u8 = 12;
const TAG_PONG: u8 = 13;
const TAG_ROUNDS: u8 = 14;
const TAG_METRICS: u8 = 15;
const TAG_METRICS_REPLY: u8 = 16;
const TAG_MODEL_PUT: u8 = 17;
const TAG_MODEL_STAT: u8 = 18;
const TAG_MODEL_INFO: u8 = 19;
const TAG_MODEL_EVICT: u8 = 20;

/// A prepared model's registry snapshot, as carried by `MODEL_STAT` (the
/// server's answer to every model frame).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModelStatus {
    /// The model's caller-chosen id.
    pub model_id: u64,
    /// Matrix rows (output elements per matvec).
    pub rows: u32,
    /// Matrix columns (client vector length).
    pub cols: u32,
    /// Pre-garbled single-use streams currently in stock.
    pub stock: u32,
    /// Bytes the stocked streams occupy in the registry cache.
    pub stock_bytes: u64,
    /// Jobs served from a warm prepared stream so far.
    pub served_prepared: u64,
    /// Jobs that fell back to inline garbling (stock empty).
    pub served_fallback: u64,
    /// Next unused generation of the model's seed schedule (each stream
    /// production or fallback consumes one — never reused).
    pub generation: u64,
}

impl ModelStatus {
    /// The shape handle a client needs to drive jobs against this model.
    pub fn handle(&self) -> ModelHandle {
        ModelHandle {
            model_id: self.model_id,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

/// Everything a client must know to run a job against a prepared model:
/// its id and its shape (the session's default model shape from ACCEPT
/// does not apply to model-backed jobs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelHandle {
    /// The model's registry id.
    pub model_id: u64,
    /// Matrix rows (output elements per matvec).
    pub rows: u32,
    /// Matrix columns (required client vector length).
    pub cols: u32,
}

/// A control frame of the session protocol (everything except the
/// lock-step EXT/CIPHER/ROUND data frames).
#[derive(Clone, Debug, PartialEq)]
pub enum ControlMsg {
    /// Client → server: open a session.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        version: u16,
        /// Requested operand bit-width.
        bit_width: u32,
        /// Client-minted trace context ([`TraceContext::none`] when
        /// untraced); the server tags its own spans with it and echoes the
        /// trace id in STATS.
        trace: TraceContext,
    },
    /// Server → client: session open, here is everything the evaluator
    /// needs (negotiated config is authoritative).
    Accept {
        /// Server-assigned session id.
        session_id: u64,
        /// Seed for the modeled base-OT phase ([`iknp::setup_pair`]).
        ot_seed: u64,
        /// Per-session secret; quoting it back in RESUME proves the
        /// resumer is the original client.
        resume_token: u64,
        /// Model rows (output elements per matvec).
        rows: u32,
        /// Model columns (client vector length).
        cols: u32,
        /// Negotiated operand bit-width.
        bit_width: u32,
        /// Negotiated accumulator width.
        acc_width: u32,
        /// Whether operands are signed.
        signed: bool,
        /// Fabric clock in MHz, as [`f64::to_bits`].
        freq_mhz_bits: u64,
    },
    /// Server → client: handshake refused.
    Reject {
        /// One of the `REJECT_*` codes.
        code: u8,
        /// Code-specific detail (e.g. the server's version or width).
        detail: u32,
    },
    /// Client → server: run a matvec/matmul job (`columns` passes).
    JobRequest {
        /// Number of client vectors (1 = matvec, n = matmul of n columns).
        columns: u32,
        /// Prepared model to run against (v5). `None` targets the
        /// session's default model from ACCEPT; `Some(id)` asks for the
        /// registered model — served from warm pre-garbled stock when
        /// available, inline-garbled otherwise, rejected with
        /// [`REJECT_MODEL`] when unknown.
        model_id: Option<u64>,
    },
    /// Server → client: queue full, try again after the hinted backoff.
    Busy {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u32,
        /// Queue depth observed at rejection time (for loadgen telemetry).
        queue_depth: u32,
    },
    /// Server → client: job dequeued onto a garbling unit; data frames
    /// follow.
    Ready {
        /// Server-assigned job id (unique within the session).
        job_id: u64,
    },
    /// Server → client: job finished; server-side accounting the client
    /// cannot measure itself.
    Stats {
        /// Fabric cycles the garbling units spent on this job.
        fabric_cycles: u64,
        /// Echo of the session's trace id (0 when the session is
        /// untraced) — the client's proof that server-side spans tagged
        /// with this id belong to its job.
        trace_id: u128,
        /// The server's rolling [`TranscriptDigest`] value over the job's
        /// GC-critical bytes (v6); the client compares it against its own
        /// before accepting the results.
        digest: [u8; 16],
    },
    /// Client → server: reconnect into an interrupted session and continue
    /// the in-flight job from the first incomplete element.
    Resume {
        /// The session being resumed (from ACCEPT).
        session_id: u64,
        /// The session's resume secret (from ACCEPT).
        resume_token: u64,
        /// The interrupted job.
        job_id: u64,
        /// Column count of the interrupted job (consistency check).
        columns: u32,
        /// Output elements the client has fully evaluated.
        elements_done: u32,
        /// The session's trace context, re-sent so the replacement
        /// connection's server spans join the same trace.
        trace: TraceContext,
    },
    /// Client → server: keep-alive between jobs; the server answers PONG
    /// without touching the job state machine.
    Ping {
        /// Echoed back verbatim in PONG.
        nonce: u64,
    },
    /// Server → client: answer to PING.
    Pong {
        /// The PING's nonce.
        nonce: u64,
    },
    /// Client → server (admin): request a live metrics snapshot. Valid as
    /// the first frame of a connection (no handshake needed) or between
    /// jobs; never touches the job state machine.
    MetricsRequest,
    /// Server → client: the metrics snapshot as a JSON document (schema
    /// `maxelerator-metrics-v1`).
    MetricsReply {
        /// UTF-8 JSON body, at most [`MAX_METRICS_BYTES`].
        body: String,
    },
    /// Client → server (v5): register `weights` (row-major, `rows * cols`
    /// elements) as a prepared model under `model_id`. Re-registering an
    /// existing id replaces it and rotates the model's seed epoch, so
    /// streams prepared for the old matrix can never serve the new one.
    ModelPut {
        /// Caller-chosen model id.
        model_id: u64,
        /// Matrix rows.
        rows: u32,
        /// Matrix columns.
        cols: u32,
        /// Row-major weights, `rows * cols` elements
        /// (≤ [`MAX_MODEL_ELEMENTS`]).
        weights: Vec<i64>,
    },
    /// Server → client (v5): registry snapshot for one model — the answer
    /// to MODEL_PUT, MODEL_INFO, and MODEL_EVICT (final stats).
    ModelStat {
        /// The snapshot.
        status: ModelStatus,
    },
    /// Client → server (v5): query a prepared model's stock and counters.
    ModelInfo {
        /// The model to query.
        model_id: u64,
    },
    /// Client → server (v5): drop a prepared model and its stock.
    ModelEvict {
        /// The model to evict.
        model_id: u64,
    },
    /// Client → server: done, close the session gracefully.
    Bye,
}

fn put_trace_id(buf: &mut BytesMut, trace_id: u128) {
    buf.put_u64((trace_id >> 64) as u64);
    buf.put_u64(trace_id as u64);
}

fn get_trace_id(frame: &mut Bytes) -> u128 {
    let hi = frame.get_u64();
    let lo = frame.get_u64();
    (u128::from(hi) << 64) | u128::from(lo)
}

fn put_trace(buf: &mut BytesMut, trace: TraceContext) {
    put_trace_id(buf, trace.trace_id);
    buf.put_u64(trace.span_id);
}

fn get_trace(frame: &mut Bytes) -> TraceContext {
    let trace_id = get_trace_id(frame);
    TraceContext::from_ids(trace_id, frame.get_u64())
}

impl ControlMsg {
    /// Encodes this control message as a raw frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(40);
        match *self {
            ControlMsg::Hello {
                version,
                bit_width,
                trace,
            } => {
                buf.put_u8(TAG_HELLO);
                buf.put_u16(version);
                buf.put_u32(bit_width);
                put_trace(&mut buf, trace);
            }
            ControlMsg::Accept {
                session_id,
                ot_seed,
                resume_token,
                rows,
                cols,
                bit_width,
                acc_width,
                signed,
                freq_mhz_bits,
            } => {
                buf.put_u8(TAG_ACCEPT);
                buf.put_u64(session_id);
                buf.put_u64(ot_seed);
                buf.put_u64(resume_token);
                buf.put_u32(rows);
                buf.put_u32(cols);
                buf.put_u32(bit_width);
                buf.put_u32(acc_width);
                buf.put_u8(u8::from(signed));
                buf.put_u64(freq_mhz_bits);
            }
            ControlMsg::Reject { code, detail } => {
                buf.put_u8(TAG_REJECT);
                buf.put_u8(code);
                buf.put_u32(detail);
            }
            ControlMsg::JobRequest { columns, model_id } => {
                buf.put_u8(TAG_JOB);
                buf.put_u32(columns);
                match model_id {
                    Some(id) => {
                        buf.put_u8(1);
                        buf.put_u64(id);
                    }
                    None => buf.put_u8(0),
                }
            }
            ControlMsg::Busy {
                retry_after_ms,
                queue_depth,
            } => {
                buf.put_u8(TAG_BUSY);
                buf.put_u32(retry_after_ms);
                buf.put_u32(queue_depth);
            }
            ControlMsg::Ready { job_id } => {
                buf.put_u8(TAG_READY);
                buf.put_u64(job_id);
            }
            ControlMsg::Stats {
                fabric_cycles,
                trace_id,
                digest,
            } => {
                buf.put_u8(TAG_STATS);
                buf.put_u64(fabric_cycles);
                put_trace_id(&mut buf, trace_id);
                buf.put_slice(&digest);
            }
            ControlMsg::Resume {
                session_id,
                resume_token,
                job_id,
                columns,
                elements_done,
                trace,
            } => {
                buf.put_u8(TAG_RESUME);
                buf.put_u64(session_id);
                buf.put_u64(resume_token);
                buf.put_u64(job_id);
                buf.put_u32(columns);
                buf.put_u32(elements_done);
                put_trace(&mut buf, trace);
            }
            ControlMsg::Ping { nonce } => {
                buf.put_u8(TAG_PING);
                buf.put_u64(nonce);
            }
            ControlMsg::Pong { nonce } => {
                buf.put_u8(TAG_PONG);
                buf.put_u64(nonce);
            }
            ControlMsg::MetricsRequest => buf.put_u8(TAG_METRICS),
            ControlMsg::MetricsReply { ref body } => {
                buf.put_u8(TAG_METRICS_REPLY);
                buf.put_u32(body.len() as u32);
                buf.put_slice(body.as_bytes());
            }
            ControlMsg::ModelPut {
                model_id,
                rows,
                cols,
                ref weights,
            } => {
                buf.put_u8(TAG_MODEL_PUT);
                buf.put_u64(model_id);
                buf.put_u32(rows);
                buf.put_u32(cols);
                for &w in weights {
                    // i64 in two's complement; the decoder mirrors the cast.
                    buf.put_u64(w as u64);
                }
            }
            ControlMsg::ModelStat { status } => {
                buf.put_u8(TAG_MODEL_STAT);
                buf.put_u64(status.model_id);
                buf.put_u32(status.rows);
                buf.put_u32(status.cols);
                buf.put_u32(status.stock);
                buf.put_u64(status.stock_bytes);
                buf.put_u64(status.served_prepared);
                buf.put_u64(status.served_fallback);
                buf.put_u64(status.generation);
            }
            ControlMsg::ModelInfo { model_id } => {
                buf.put_u8(TAG_MODEL_INFO);
                buf.put_u64(model_id);
            }
            ControlMsg::ModelEvict { model_id } => {
                buf.put_u8(TAG_MODEL_EVICT);
                buf.put_u64(model_id);
            }
            ControlMsg::Bye => buf.put_u8(TAG_BYE),
        }
        buf.freeze()
    }

    /// Decodes a control frame.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::Protocol`] for unknown tags or truncated
    /// payloads — peer bytes never panic the decoder.
    pub fn decode(mut frame: Bytes) -> Result<ControlMsg, AcceleratorError> {
        fn need(frame: &Bytes, bytes: usize, what: &'static str) -> Result<(), AcceleratorError> {
            if frame.remaining() < bytes {
                return Err(AcceleratorError::Protocol { what });
            }
            Ok(())
        }
        need(&frame, 1, "empty control frame")?;
        let tag = frame.get_u8();
        let msg = match tag {
            TAG_HELLO => {
                need(&frame, 30, "HELLO payload")?;
                ControlMsg::Hello {
                    version: frame.get_u16(),
                    bit_width: frame.get_u32(),
                    trace: get_trace(&mut frame),
                }
            }
            TAG_ACCEPT => {
                need(&frame, 45, "ACCEPT payload")?;
                ControlMsg::Accept {
                    session_id: frame.get_u64(),
                    ot_seed: frame.get_u64(),
                    resume_token: frame.get_u64(),
                    rows: frame.get_u32(),
                    cols: frame.get_u32(),
                    bit_width: frame.get_u32(),
                    acc_width: frame.get_u32(),
                    signed: frame.get_u8() != 0,
                    freq_mhz_bits: frame.get_u64(),
                }
            }
            TAG_REJECT => {
                need(&frame, 5, "REJECT payload")?;
                ControlMsg::Reject {
                    code: frame.get_u8(),
                    detail: frame.get_u32(),
                }
            }
            TAG_JOB => {
                need(&frame, 5, "JOB payload")?;
                let columns = frame.get_u32();
                let model_id = match frame.get_u8() {
                    0 => None,
                    1 => {
                        need(&frame, 8, "JOB model id")?;
                        Some(frame.get_u64())
                    }
                    _ => {
                        return Err(AcceleratorError::Protocol {
                            what: "JOB model flag",
                        })
                    }
                };
                ControlMsg::JobRequest { columns, model_id }
            }
            TAG_BUSY => {
                need(&frame, 8, "BUSY payload")?;
                ControlMsg::Busy {
                    retry_after_ms: frame.get_u32(),
                    queue_depth: frame.get_u32(),
                }
            }
            TAG_READY => {
                need(&frame, 8, "READY payload")?;
                ControlMsg::Ready {
                    job_id: frame.get_u64(),
                }
            }
            TAG_STATS => {
                need(&frame, 40, "STATS payload")?;
                let fabric_cycles = frame.get_u64();
                let trace_id = get_trace_id(&mut frame);
                let mut digest = [0u8; 16];
                frame.copy_to_slice(&mut digest);
                ControlMsg::Stats {
                    fabric_cycles,
                    trace_id,
                    digest,
                }
            }
            TAG_RESUME => {
                need(&frame, 56, "RESUME payload")?;
                ControlMsg::Resume {
                    session_id: frame.get_u64(),
                    resume_token: frame.get_u64(),
                    job_id: frame.get_u64(),
                    columns: frame.get_u32(),
                    elements_done: frame.get_u32(),
                    trace: get_trace(&mut frame),
                }
            }
            TAG_PING => {
                need(&frame, 8, "PING payload")?;
                ControlMsg::Ping {
                    nonce: frame.get_u64(),
                }
            }
            TAG_PONG => {
                need(&frame, 8, "PONG payload")?;
                ControlMsg::Pong {
                    nonce: frame.get_u64(),
                }
            }
            TAG_METRICS => ControlMsg::MetricsRequest,
            TAG_METRICS_REPLY => {
                need(&frame, 4, "METRICS reply header")?;
                let len = frame.get_u32() as usize;
                if len > MAX_METRICS_BYTES {
                    return Err(AcceleratorError::Protocol {
                        what: "METRICS reply too large",
                    });
                }
                need(&frame, len, "METRICS reply body")?;
                let body = String::from_utf8(frame.split_to(len).to_vec()).map_err(|_| {
                    AcceleratorError::Protocol {
                        what: "METRICS reply is not UTF-8",
                    }
                })?;
                ControlMsg::MetricsReply { body }
            }
            TAG_MODEL_PUT => {
                need(&frame, 16, "MODEL_PUT header")?;
                let model_id = frame.get_u64();
                let rows = frame.get_u32();
                let cols = frame.get_u32();
                let elements = (rows as usize).saturating_mul(cols as usize);
                if rows == 0 || cols == 0 || elements > MAX_MODEL_ELEMENTS {
                    return Err(AcceleratorError::Protocol {
                        what: "MODEL_PUT shape",
                    });
                }
                need(&frame, elements * 8, "MODEL_PUT weights")?;
                let weights = (0..elements).map(|_| frame.get_u64() as i64).collect();
                ControlMsg::ModelPut {
                    model_id,
                    rows,
                    cols,
                    weights,
                }
            }
            TAG_MODEL_STAT => {
                need(&frame, 52, "MODEL_STAT payload")?;
                ControlMsg::ModelStat {
                    status: ModelStatus {
                        model_id: frame.get_u64(),
                        rows: frame.get_u32(),
                        cols: frame.get_u32(),
                        stock: frame.get_u32(),
                        stock_bytes: frame.get_u64(),
                        served_prepared: frame.get_u64(),
                        served_fallback: frame.get_u64(),
                        generation: frame.get_u64(),
                    },
                }
            }
            TAG_MODEL_INFO => {
                need(&frame, 8, "MODEL_INFO payload")?;
                ControlMsg::ModelInfo {
                    model_id: frame.get_u64(),
                }
            }
            TAG_MODEL_EVICT => {
                need(&frame, 8, "MODEL_EVICT payload")?;
                ControlMsg::ModelEvict {
                    model_id: frame.get_u64(),
                }
            }
            TAG_BYE => ControlMsg::Bye,
            _ => {
                return Err(AcceleratorError::Protocol {
                    what: "unknown control tag",
                })
            }
        };
        if frame.remaining() != 0 {
            return Err(AcceleratorError::Protocol {
                what: "control frame trailing bytes",
            });
        }
        Ok(msg)
    }
}

/// Sends one control message, sealed with the v6 CRC32 frame prefix.
///
/// # Errors
///
/// Propagates transport failures.
pub fn send_control<T: Transport + ?Sized>(
    transport: &mut T,
    msg: &ControlMsg,
) -> Result<(), AcceleratorError> {
    transport.send_frame(FrameKind::Raw, seal_frame(msg.encode()))?;
    Ok(())
}

/// Receives, checksum-verifies, and decodes one control message.
///
/// # Errors
///
/// Propagates transport failures and malformed frames; a flipped bit
/// surfaces as [`max_gc::channel::TransportError::Checksum`].
pub fn recv_control<T: Transport + ?Sized>(
    transport: &mut T,
) -> Result<ControlMsg, AcceleratorError> {
    ControlMsg::decode(open_frame(transport.recv_frame()?)?)
}

/// Splitmix-style seed derivation: one base seed, many independent
/// per-session / per-job seeds.
pub fn derive_seed(base: u64, tweak: u64) -> u64 {
    let mut z = base ^ tweak.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn encode_ext(msg: &ExtendMsg) -> Bytes {
    let words = msg.columns.first().map_or(0, Vec::len);
    let mut buf = BytesMut::with_capacity(9 + KAPPA * words * 8);
    buf.put_u8(TAG_EXT);
    buf.put_u32(msg.count as u32);
    buf.put_u32(words as u32);
    for column in &msg.columns {
        for &word in column {
            buf.put_u64(word);
        }
    }
    buf.freeze()
}

/// Decodes an EXT frame into the extension message and the client's
/// 16-byte transcript-digest trailer (v6).
fn decode_ext(mut frame: Bytes) -> Result<(ExtendMsg, [u8; 16]), AcceleratorError> {
    if frame.remaining() < 1 {
        return Err(AcceleratorError::Protocol { what: "EXT header" });
    }
    if frame[0] == TAG_BYE && frame.remaining() == 1 {
        // A well-behaved client may close instead of sending a job's data.
        return Err(AcceleratorError::Disconnected);
    }
    if frame.remaining() < 9 {
        return Err(AcceleratorError::Protocol { what: "EXT header" });
    }
    let tag = frame.get_u8();
    if tag == TAG_BYE {
        return Err(AcceleratorError::Disconnected);
    }
    if tag != TAG_EXT {
        return Err(AcceleratorError::Protocol {
            what: "expected EXT frame",
        });
    }
    let count = frame.get_u32() as usize;
    let words = frame.get_u32() as usize;
    if count > MAX_OT_BATCH || words != count.div_ceil(64) {
        return Err(AcceleratorError::Protocol {
            what: "EXT batch size",
        });
    }
    if frame.remaining() != KAPPA * words * 8 + 16 {
        return Err(AcceleratorError::Protocol {
            what: "EXT payload length",
        });
    }
    let columns = (0..KAPPA)
        .map(|_| (0..words).map(|_| frame.get_u64()).collect())
        .collect();
    let mut mark = [0u8; 16];
    frame.copy_to_slice(&mut mark);
    Ok((ExtendMsg { columns, count }, mark))
}

/// Encodes one output element's full round sequence as a single ROUNDS
/// burst frame: tag, round count, then each round body length-prefixed.
///
/// Public since v5: the prepared-model registry materializes these frames
/// once at garble time and replays the identical bytes on every serve.
pub fn encode_round_burst(msgs: &[RoundMessage]) -> Bytes {
    let bodies: Vec<Bytes> = msgs.iter().map(encode_round_message).collect();
    let total: usize = bodies.iter().map(|b| 4 + b.len()).sum();
    let mut buf = BytesMut::with_capacity(5 + total);
    buf.put_u8(TAG_ROUNDS);
    buf.put_u32(msgs.len() as u32);
    for body in &bodies {
        buf.put_u32(body.len() as u32);
        buf.put_slice(&body[..]);
    }
    buf.freeze()
}

/// Decodes a ROUNDS burst frame, insisting on exactly `expect` rounds (the
/// client knows the model width from ACCEPT, so any other count is a
/// protocol violation rather than an allocation hint to honor).
///
/// # Errors
///
/// [`AcceleratorError::Protocol`] on any malformed or mismatched frame.
pub fn decode_round_burst(
    mut frame: Bytes,
    expect: usize,
) -> Result<Vec<RoundMessage>, AcceleratorError> {
    if frame.remaining() < 5 {
        return Err(AcceleratorError::Protocol {
            what: "ROUNDS header",
        });
    }
    if frame.get_u8() != TAG_ROUNDS {
        return Err(AcceleratorError::Protocol {
            what: "expected ROUNDS frame",
        });
    }
    let count = frame.get_u32() as usize;
    if count != expect {
        return Err(AcceleratorError::Protocol {
            what: "ROUNDS count does not match the model",
        });
    }
    let mut msgs = Vec::with_capacity(count);
    for _ in 0..count {
        if frame.remaining() < 4 {
            return Err(AcceleratorError::Protocol {
                what: "ROUNDS body header",
            });
        }
        let len = frame.get_u32() as usize;
        if frame.remaining() < len {
            return Err(AcceleratorError::Protocol {
                what: "ROUNDS body length",
            });
        }
        msgs.push(decode_round_message(frame.split_to(len))?);
    }
    if frame.remaining() != 0 {
        return Err(AcceleratorError::Protocol {
            what: "ROUNDS trailing bytes",
        });
    }
    Ok(msgs)
}

/// One garbled output element: its round messages and the OT label pairs
/// (bit-width pairs per round, concatenated in round order).
#[derive(Clone, Debug)]
pub struct GarbledRow {
    /// Round messages in round order.
    pub messages: Vec<RoundMessage>,
    /// OT pairs matching the client's choice bits for this row.
    pub pairs: Vec<(Block, Block)>,
}

/// A fully garbled job, ready to stream: the compute-heavy product of a
/// pool worker, handed back to the session thread for the wire exchange.
#[derive(Clone, Debug)]
pub struct GarbledJob {
    /// `columns * rows` garbled elements, pass-major.
    pub rows: Vec<GarbledRow>,
    /// Model rows per pass (output elements of one matvec).
    pub rows_per_pass: usize,
    /// Fabric cycles this job cost.
    pub fabric_cycles: u64,
    /// Wall-clock the fabric would need at the configured frequency.
    pub fabric_seconds: f64,
}

/// Garbles a complete matvec/matmul job on a fresh accelerator seeded with
/// `seed` — pure compute, no I/O, safe to run on any worker thread.
///
/// Each pass garbles every model row; element ids advance across passes so
/// labels stay fresh for every round of every column.
///
/// # Errors
///
/// Propagates [`AcceleratorError`] from the garbling schedule.
///
/// # Panics
///
/// Panics if the model is empty or `columns` is zero (serving code
/// validates both before enqueueing).
pub fn garble_matvec_job(
    config: &AcceleratorConfig,
    weights: &[Vec<i64>],
    seed: u64,
    columns: u32,
) -> Result<GarbledJob, AcceleratorError> {
    assert!(!weights.is_empty(), "job needs a non-empty model");
    assert!(columns > 0, "job needs at least one column");
    let _span = max_telemetry::span("remote.garble_job");
    let mut accel = Maxelerator::new(config.clone(), seed);
    let n_rows = weights.len();
    let mut rows = Vec::with_capacity(n_rows * columns as usize);
    for pass in 0..columns as usize {
        for (r, row) in weights.iter().enumerate() {
            accel.begin_element((pass * n_rows + r) as u32);
            let messages = accel.try_garble_job(row, true)?;
            let mut pairs = Vec::with_capacity(row.len() * config.bit_width);
            for msg in &messages {
                pairs.extend_from_slice(accel.ot_pairs(msg.round)?);
            }
            rows.push(GarbledRow { messages, pairs });
        }
    }
    let cycles = accel.report().cycles;
    Ok(GarbledJob {
        rows,
        rows_per_pass: n_rows,
        fabric_cycles: cycles,
        fabric_seconds: cycles as f64 / (config.freq_mhz * 1e6),
    })
}

/// One output element of a [`MaterializedJob`]: the OT label pairs the
/// sender still needs at serve time (the CIPHER frame depends on the
/// client's live EXT corrections, so it cannot be pre-encoded) plus the
/// element's ROUNDS burst frame, already rendered to wire bytes.
#[derive(Clone, Debug)]
pub struct MaterializedElement {
    /// OT pairs matching the client's choice bits for this element.
    pub pairs: Vec<(Block, Block)>,
    /// The element's pre-encoded ROUNDS burst frame.
    pub rounds_frame: Bytes,
    /// Sum of the element's round-message wire bytes (transcript stat).
    pub material_bytes: u64,
    /// Garbled tables across the element's rounds (transcript stat).
    pub tables: u64,
    /// Rounds in the element (the model's column count).
    pub rounds: u64,
}

/// A garbled job rendered to its wire form ahead of the exchange: what a
/// prepared-model stock stores and what every serve streams. Frames are
/// [`Bytes`] (cheap to clone, shared storage), so replaying a stream costs
/// OT plus memcpy — the paper's §3 online phase.
#[derive(Clone, Debug)]
pub struct MaterializedJob {
    /// `columns * rows` materialized elements, pass-major.
    pub elements: Vec<MaterializedElement>,
    /// Model rows per pass (output elements of one matvec).
    pub rows_per_pass: usize,
    /// Fabric cycles the offline garbling cost.
    pub fabric_cycles: u64,
    /// Wall-clock the fabric would need at the configured frequency.
    pub fabric_seconds: f64,
}

impl MaterializedJob {
    /// Bytes this job occupies at rest (pre-encoded frames + label pairs),
    /// the quantity a byte-budgeted cache accounts for.
    pub fn stored_bytes(&self) -> u64 {
        self.elements
            .iter()
            .map(|e| e.rounds_frame.len() as u64 + (e.pairs.len() * 32) as u64)
            .sum()
    }
}

/// The [`AcceleratorError::Integrity`] detail for a prepared stream whose
/// at-rest bytes no longer match the digest recorded when it was garbled —
/// the serving layer matches on this to route the failure into the
/// registry's rot accounting.
pub const STREAM_DIGEST_MISMATCH: &str = "prepared stream digest mismatch";

/// Digest of a materialized stream's GC-critical bytes — every element's
/// pre-encoded ROUNDS frame and OT label pairs, folded in serve order.
/// Computed once when the stream is garbled and re-verified before the
/// stream is served, so material that rots while cached (DRAM fault, disk
/// rot) is detected before it reaches a wire. Accidental-corruption
/// detection only: anything that can rewrite the cache can rewrite the
/// digest beside it.
pub fn stream_digest(job: &MaterializedJob) -> [u8; 16] {
    let mut digest = TranscriptDigest::new();
    let mut pair_bytes = Vec::new();
    for elem in &job.elements {
        digest.fold(&elem.rounds_frame);
        pair_bytes.clear();
        pair_bytes.reserve(elem.pairs.len() * 32);
        for (zero, one) in &elem.pairs {
            pair_bytes.extend_from_slice(&zero.to_bytes());
            pair_bytes.extend_from_slice(&one.to_bytes());
        }
        digest.fold(&pair_bytes);
    }
    digest.value()
}

/// Renders a garbled job to its wire form: encodes each element's ROUNDS
/// burst once and keeps the OT pairs. Byte-for-byte, streaming the result
/// is identical to streaming the [`GarbledJob`] directly —
/// [`stream_matvec_job_from`] is implemented on top of this.
pub fn materialize_job(job: &GarbledJob) -> MaterializedJob {
    let elements = job
        .rows
        .iter()
        .map(|row| MaterializedElement {
            pairs: row.pairs.clone(),
            rounds_frame: encode_round_burst(&row.messages),
            material_bytes: row.messages.iter().map(|m| m.wire_bytes() as u64).sum(),
            tables: row.messages.iter().map(|m| m.tables.len() as u64).sum(),
            rounds: row.messages.len() as u64,
        })
        .collect();
    MaterializedJob {
        elements,
        rows_per_pass: job.rows_per_pass,
        fabric_cycles: job.fabric_cycles,
        fabric_seconds: job.fabric_seconds,
    }
}

/// Streams a garbled job to the client: READY, then per element the
/// EXT → CIPHER → ROUND... exchange, then STATS. Runs on the session
/// thread (the server side of [`RemoteClient::secure_matvec`]).
///
/// # Errors
///
/// Propagates transport failures and protocol violations; on any error the
/// session should be torn down (the OT state is no longer aligned) — or
/// checkpointed for RESUME, see [`stream_matvec_job_from`].
pub fn stream_matvec_job<T: Transport + ?Sized>(
    transport: &mut T,
    job: &GarbledJob,
    ot_sender: &mut OtExtSender,
    job_id: u64,
    trace: TraceContext,
) -> Result<MatvecTranscript, AcceleratorError> {
    let mut digest = TranscriptDigest::new();
    stream_matvec_job_from(
        transport,
        job,
        ot_sender,
        &mut digest,
        job_id,
        trace,
        0,
        |_, _, _| {},
    )
}

/// [`stream_matvec_job`] generalized for resumption: starts the exchange
/// at `start_element` (elements before it were already streamed on an
/// earlier connection) and calls `on_element(next_element, ot_sender,
/// digest)` once per element, after the OT and digest state advance but
/// *before* the element's CIPHER/ROUNDS frames go out — the hook where a
/// serving layer snapshots (and durably journals) the OT sender and the
/// transcript digest for round checkpoints. The write-before-send ordering
/// guarantees a journal is never behind the client's observed progress,
/// whatever instant the process dies.
///
/// The caller must hand in an `ot_sender` and `digest` whose states match
/// `start_element` (for a resume: the snapshots taken at that boundary —
/// a fresh [`TranscriptDigest`] when starting at element zero).
///
/// # Errors
///
/// See [`stream_matvec_job`].
#[allow(clippy::too_many_arguments)]
pub fn stream_matvec_job_from<T: Transport + ?Sized>(
    transport: &mut T,
    job: &GarbledJob,
    ot_sender: &mut OtExtSender,
    digest: &mut TranscriptDigest,
    job_id: u64,
    trace: TraceContext,
    start_element: usize,
    on_element: impl FnMut(usize, &OtExtSender, &TranscriptDigest),
) -> Result<MatvecTranscript, AcceleratorError> {
    stream_materialized_job_from(
        transport,
        &materialize_job(job),
        ot_sender,
        digest,
        job_id,
        trace,
        start_element,
        None,
        on_element,
    )
}

/// The wire exchange of [`stream_matvec_job_from`], driven from an
/// already-[`materialize_job`]d stream — the prepared-model online path.
/// The bytes on the wire are identical whichever entry point is used; only
/// the moment the ROUNDS frames were rendered differs (offline precompute
/// vs just-in-time).
///
/// `expected_digest` carries the [`stream_digest`] recorded when a cached
/// stream was garbled. It is re-verified here, *after* READY goes out but
/// *before* any material frame does: the rehash scales with the stream
/// while the admission window must not, so it is pipelined past READY
/// (overlapping the client's first OT extension) — yet a rotted stream
/// still never puts a byte of material on the wire. A mismatch answers the
/// client's first EXT with `REJECT(integrity)` and fails typed with
/// [`STREAM_DIGEST_MISMATCH`].
///
/// # Errors
///
/// See [`stream_matvec_job`].
#[allow(clippy::too_many_arguments)]
pub fn stream_materialized_job_from<T: Transport + ?Sized>(
    transport: &mut T,
    job: &MaterializedJob,
    ot_sender: &mut OtExtSender,
    digest: &mut TranscriptDigest,
    job_id: u64,
    trace: TraceContext,
    start_element: usize,
    expected_digest: Option<[u8; 16]>,
    mut on_element: impl FnMut(usize, &OtExtSender, &TranscriptDigest),
) -> Result<MatvecTranscript, AcceleratorError> {
    let _span = max_telemetry::span("remote.stream_job");
    send_control(transport, &ControlMsg::Ready { job_id })?;
    if let Some(expected) = expected_digest {
        if stream_digest(job) != expected {
            send_control(
                transport,
                &ControlMsg::Reject {
                    code: REJECT_INTEGRITY,
                    detail: u32::MAX,
                },
            )?;
            return Err(AcceleratorError::Integrity {
                what: STREAM_DIGEST_MISMATCH,
            });
        }
    }
    let mut transcript = MatvecTranscript {
        elements: job.elements.len().saturating_sub(start_element),
        fabric_cycles: job.fabric_cycles,
        fabric_seconds: job.fabric_seconds,
        ..MatvecTranscript::default()
    };
    for (idx, elem) in job.elements.iter().enumerate().skip(start_element) {
        let ext_frame = open_frame(transport.recv_frame()?)?;
        let (ext, client_mark) = decode_ext(ext_frame.clone())?;
        if ext.count != elem.pairs.len() {
            return Err(AcceleratorError::Protocol {
                what: "EXT count does not match the job's OT pairs",
            });
        }
        // Fold the EXT body (sans its 16-byte trailer) and insist the
        // client's running digest matches ours before the OT state
        // advances: a divergence detected here leaves every snapshot at or
        // before this boundary verified, so RESUME stays sound.
        digest.fold(&ext_frame[..ext_frame.len() - 16]);
        if client_mark != digest.value() {
            send_control(
                transport,
                &ControlMsg::Reject {
                    code: REJECT_INTEGRITY,
                    detail: idx as u32,
                },
            )?;
            return Err(AcceleratorError::Integrity {
                what: "client transcript digest mismatch at EXT",
            });
        }
        transcript.ot_upload_bytes += ext.columns.iter().map(|c| c.len() as u64 * 8).sum::<u64>();
        let cipher = ot_sender.send(&ext, &elem.pairs);
        let cipher_frame = encode_block_pairs(&cipher.pairs);
        // The digest covers this element's CIPHER/ROUNDS bytes *before*
        // the checkpoint hook fires, so a snapshot at boundary `idx + 1`
        // matches the client's digest checkpoint at the same boundary.
        digest.fold(&cipher_frame);
        digest.fold(&elem.rounds_frame);
        // Checkpoint *before* delivering this element's CIPHER/ROUNDS frames:
        // a durable journal hooked in here then always covers at least as much
        // progress as the client has observed, so a crash between the journal
        // write and the sends can only leave the server one element *ahead* —
        // which the last-2 snapshot window resolves — never behind (which
        // would force a REJECT on resume).
        on_element(idx + 1, ot_sender, digest);
        transcript.ot_bytes += (cipher.pairs.len() * 32) as u64;
        transport.send_frame(FrameKind::Blocks, seal_frame(cipher_frame))?;
        transcript.material_bytes += elem.material_bytes;
        transcript.tables += elem.tables;
        transcript.rounds += elem.rounds;
        // One burst frame per element instead of one frame per round: the
        // per-frame overhead (and per-frame fault-injection surface) no
        // longer scales with model width.
        transport.send_frame(FrameKind::Raw, seal_frame(elem.rounds_frame.clone()))?;
    }
    send_control(
        transport,
        &ControlMsg::Stats {
            fabric_cycles: job.fabric_cycles,
            trace_id: trace.trace_id,
            digest: digest.value(),
        },
    )?;
    Ok(transcript)
}

/// Fetches the server's live metrics snapshot over a bare transport — no
/// handshake required, so it works even while the server is draining or
/// shedding load.
///
/// # Errors
///
/// Transport failures, or [`AcceleratorError::Protocol`] if the peer
/// answers with anything but a METRICS reply.
pub fn fetch_metrics<T: Transport + ?Sized>(transport: &mut T) -> Result<String, AcceleratorError> {
    send_control(transport, &ControlMsg::MetricsRequest)?;
    match recv_control(transport)? {
        ControlMsg::MetricsReply { body } => Ok(body),
        _ => Err(AcceleratorError::Protocol {
            what: "expected METRICS reply",
        }),
    }
}

/// Everything a client must keep to re-enter its session on a brand-new
/// connection: identity, the resume secret, the negotiated config, and the
/// live OT-receiver state.
///
/// `Clone` is cheap relative to a job and deliberate: a retry loop clones
/// the state per reconnect attempt so a failed attempt does not poison the
/// next one ([`OtExtReceiver`]'s `Clone` is an exact state snapshot).
#[derive(Clone)]
pub struct SessionState {
    session_id: u64,
    resume_token: u64,
    trace: TraceContext,
    config: AcceleratorConfig,
    rows: usize,
    cols: usize,
    ot_receiver: OtExtReceiver,
}

impl std::fmt::Debug for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The resume token is a bearer secret — keep it out of logs.
        f.debug_struct("SessionState")
            .field("session_id", &self.session_id)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish_non_exhaustive()
    }
}

impl SessionState {
    /// Server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The negotiated configuration (authoritative, from ACCEPT).
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Model rows (length of a matvec result).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Model columns (required length of the client vector).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The trace context this session put on the wire at HELLO.
    pub fn trace(&self) -> TraceContext {
        self.trace
    }
}

/// An in-flight (possibly interrupted) job on the client side.
///
/// Progress advances one output element at a time; the embedded
/// OT-receiver/transcript checkpoints always sit on the last completed
/// element boundary, so after a mid-element failure
/// [`RemoteClient::resume_job`] can roll the session back and replay the
/// element bit-identically on a fresh connection.
pub struct JobProgress {
    job_id: u64,
    x_columns: Vec<Vec<i64>>,
    y: Vec<Vec<i64>>,
    /// Output rows per pass — the session default's rows, or the prepared
    /// model's for a model-backed job (their shapes are independent).
    rows: usize,
    total_elements: usize,
    elements_done: usize,
    receiver_checkpoint: OtExtReceiver,
    transcript: MatvecTranscript,
    transcript_checkpoint: MatvecTranscript,
    digest: TranscriptDigest,
    digest_checkpoint: TranscriptDigest,
    done: bool,
}

impl std::fmt::Debug for JobProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `x_columns` is the client's private input — keep it out of logs.
        f.debug_struct("JobProgress")
            .field("job_id", &self.job_id)
            .field("elements_done", &self.elements_done)
            .field("total_elements", &self.total_elements)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl JobProgress {
    /// Server-assigned job id.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Output elements fully evaluated so far.
    pub fn elements_done(&self) -> usize {
        self.elements_done
    }

    /// Total output elements of the job (`columns * rows`).
    pub fn total_elements(&self) -> usize {
        self.total_elements
    }

    /// Whether the job ran to completion (STATS received).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Consumes a finished job into its per-column results and merged
    /// transcript.
    ///
    /// # Panics
    ///
    /// Panics if the job is not [`done`](JobProgress::is_done) — an
    /// interrupted job must be driven to completion via
    /// [`RemoteClient::resume_job`] + [`RemoteClient::run_job`] first.
    pub fn into_result(self) -> (Vec<Vec<i64>>, MatvecTranscript) {
        assert!(self.done, "job not finished; resume it first");
        (self.y, self.transcript)
    }
}

/// The evaluator side of a served session: handshake once, then run any
/// number of secure matvec/matmul jobs over the transport.
pub struct RemoteClient<T: Transport> {
    transport: T,
    state: SessionState,
}

impl<T: Transport> std::fmt::Debug for RemoteClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteClient")
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl<T: Transport> RemoteClient<T> {
    /// Opens a session: HELLO with the desired bit-width, then builds the
    /// evaluator from the server's authoritative ACCEPT config and runs the
    /// (modeled) base-OT phase from the published seed.
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::Rejected`] if the server refuses the handshake;
    /// transport/protocol errors otherwise.
    pub fn connect(transport: T, bit_width: usize) -> Result<RemoteClient<T>, AcceleratorError> {
        Self::connect_with_trace(transport, bit_width, TraceContext::mint())
    }

    /// [`connect`](RemoteClient::connect) with an explicit trace context
    /// instead of a freshly minted one.
    ///
    /// Pass [`TraceContext::none`] (or any fixed context) when HELLO
    /// frames must be bit-comparable across runs — the transcript-parity
    /// and chaos bit-identity tests do; pass a shared minted context when
    /// several dial attempts should join one trace — `ResilientClient`
    /// does.
    ///
    /// # Errors
    ///
    /// See [`RemoteClient::connect`].
    pub fn connect_with_trace(
        mut transport: T,
        bit_width: usize,
        trace: TraceContext,
    ) -> Result<RemoteClient<T>, AcceleratorError> {
        send_control(
            &mut transport,
            &ControlMsg::Hello {
                version: PROTOCOL_VERSION,
                bit_width: bit_width as u32,
                trace,
            },
        )?;
        match recv_control(&mut transport)? {
            ControlMsg::Accept {
                session_id,
                ot_seed,
                resume_token,
                rows,
                cols,
                bit_width,
                acc_width,
                signed,
                freq_mhz_bits,
            } => {
                if bit_width < 4 || !(bit_width as usize).is_multiple_of(2) {
                    return Err(AcceleratorError::Protocol {
                        what: "ACCEPT bit width",
                    });
                }
                let mut config = AcceleratorConfig::new(bit_width as usize);
                if (acc_width as usize) < 2 * config.bit_width || acc_width > 64 {
                    return Err(AcceleratorError::Protocol {
                        what: "ACCEPT acc width",
                    });
                }
                config = config.with_acc_width(acc_width as usize);
                let freq = f64::from_bits(freq_mhz_bits);
                if !(freq.is_finite() && freq > 0.0) {
                    return Err(AcceleratorError::Protocol {
                        what: "ACCEPT frequency",
                    });
                }
                config = config.with_freq_mhz(freq);
                if !signed {
                    config = config.unsigned();
                }
                let (_sender, ot_receiver) = iknp::setup_pair(ot_seed);
                Ok(RemoteClient {
                    transport,
                    state: SessionState {
                        session_id,
                        resume_token,
                        trace,
                        config,
                        rows: rows as usize,
                        cols: cols as usize,
                        ot_receiver,
                    },
                })
            }
            ControlMsg::Reject { code, .. } => Err(AcceleratorError::Rejected {
                reason: reject_reason(code),
            }),
            _ => Err(AcceleratorError::Protocol {
                what: "expected ACCEPT or REJECT",
            }),
        }
    }

    /// Re-binds a saved [`SessionState`] to a fresh connection, without any
    /// handshake traffic. Follow with [`RemoteClient::resume_job`] to
    /// continue an interrupted job, or [`RemoteClient::start_job`] is
    /// invalid here — a reattached session must resume first (the server
    /// only honors RESUME as the first frame of a reconnect).
    pub fn reattach(transport: T, state: SessionState) -> RemoteClient<T> {
        RemoteClient { transport, state }
    }

    /// Splits the client back into its transport and portable session
    /// state (e.g. to persist the state across a planned reconnect).
    pub fn into_parts(self) -> (T, SessionState) {
        (self.transport, self.state)
    }

    /// Server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.state.session_id
    }

    /// The negotiated configuration (authoritative, from ACCEPT).
    pub fn config(&self) -> &AcceleratorConfig {
        &self.state.config
    }

    /// Model rows (length of a matvec result).
    pub fn rows(&self) -> usize {
        self.state.rows
    }

    /// Model columns (required length of the client vector).
    pub fn cols(&self) -> usize {
        self.state.cols
    }

    /// Borrow of the underlying transport (e.g. for channel statistics).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The trace context this session carries (from HELLO).
    pub fn trace(&self) -> TraceContext {
        self.state.trace
    }

    /// Fetches the server's live metrics snapshot (admin METRICS frame).
    ///
    /// Valid between jobs only, like [`ping`](RemoteClient::ping).
    ///
    /// # Errors
    ///
    /// See [`fetch_metrics`].
    pub fn metrics(&mut self) -> Result<String, AcceleratorError> {
        fetch_metrics(&mut self.transport)
    }

    /// Registers `weights` as a prepared model under `model_id` (v5): the
    /// server decomposes it into tiles and pre-garbles single-use streams
    /// for it during idle time, so later
    /// [`start_model_job`](RemoteClient::start_model_job)s serve from warm
    /// stock. Re-registering an id replaces the matrix and rotates its
    /// seed epoch. Valid between jobs only.
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::Rejected`] if the server refuses the matrix
    /// (e.g. weights outside the negotiated bit-width) — the session
    /// stays usable; transport/protocol errors otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, ragged, or larger than
    /// [`MAX_MODEL_ELEMENTS`] (caller errors, mirroring
    /// [`crate::secure_matvec`]'s input contract).
    pub fn put_model(
        &mut self,
        model_id: u64,
        weights: &[Vec<i64>],
    ) -> Result<ModelStatus, AcceleratorError> {
        assert!(!weights.is_empty(), "model needs at least one row");
        let cols = weights[0].len();
        assert!(cols > 0, "model needs at least one column");
        for row in weights {
            assert_eq!(row.len(), cols, "model rows must be rectangular");
        }
        assert!(
            weights.len() * cols <= MAX_MODEL_ELEMENTS,
            "model exceeds MAX_MODEL_ELEMENTS"
        );
        let flat: Vec<i64> = weights.iter().flatten().copied().collect();
        send_control(
            &mut self.transport,
            &ControlMsg::ModelPut {
                model_id,
                rows: weights.len() as u32,
                cols: cols as u32,
                weights: flat,
            },
        )?;
        self.recv_model_stat()
    }

    /// Queries a prepared model's stock and serve counters (v5). Valid
    /// between jobs only.
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::Rejected`] (`unknown prepared model`) if the id
    /// is not registered; transport/protocol errors otherwise.
    pub fn model_info(&mut self, model_id: u64) -> Result<ModelStatus, AcceleratorError> {
        send_control(&mut self.transport, &ControlMsg::ModelInfo { model_id })?;
        self.recv_model_stat()
    }

    /// Drops a prepared model and its stock (v5), returning its final
    /// counters. Valid between jobs only.
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::Rejected`] (`unknown prepared model`) if the id
    /// is not registered; transport/protocol errors otherwise.
    pub fn evict_model(&mut self, model_id: u64) -> Result<ModelStatus, AcceleratorError> {
        send_control(&mut self.transport, &ControlMsg::ModelEvict { model_id })?;
        self.recv_model_stat()
    }

    fn recv_model_stat(&mut self) -> Result<ModelStatus, AcceleratorError> {
        match recv_control(&mut self.transport)? {
            ControlMsg::ModelStat { status } => Ok(status),
            ControlMsg::Reject { code, .. } => Err(AcceleratorError::Rejected {
                reason: reject_reason(code),
            }),
            _ => Err(AcceleratorError::Protocol {
                what: "expected MODEL_STAT or REJECT",
            }),
        }
    }

    /// Runs a matmul `Y = W·X` against a prepared model, like
    /// [`secure_matmul`](RemoteClient::secure_matmul) but shaped by the
    /// model's handle instead of the session default.
    ///
    /// # Errors
    ///
    /// See [`start_model_job`](RemoteClient::start_model_job).
    ///
    /// # Panics
    ///
    /// Panics if `x_columns` is empty or any column length differs from
    /// the handle's `cols`.
    pub fn secure_matmul_model(
        &mut self,
        model: ModelHandle,
        x_columns: &[Vec<i64>],
    ) -> Result<(Vec<Vec<i64>>, MatvecTranscript), AcceleratorError> {
        let _span = max_telemetry::span("remote.client_job");
        let mut progress = self.start_model_job(model, x_columns)?;
        self.run_job(&mut progress)?;
        Ok(progress.into_result())
    }

    /// Runs one privacy-preserving matvec `y = W·x` against the server.
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::Busy`] if the server's queue rejected the job
    /// (the session stays usable — retry after the hint); any other error
    /// means the session is dead (or resumable, see
    /// [`RemoteClient::resume_job`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` length differs from [`RemoteClient::cols`] (caller
    /// error, matching [`crate::secure_matvec`]).
    pub fn secure_matvec(
        &mut self,
        x: &[i64],
    ) -> Result<(Vec<i64>, MatvecTranscript), AcceleratorError> {
        let (mut columns, transcript) = self.secure_matmul(std::slice::from_ref(&x.to_vec()))?;
        let y = columns.pop().ok_or(AcceleratorError::Protocol {
            what: "job returned no columns",
        })?;
        Ok((y, transcript))
    }

    /// Runs a matmul `Y = W·X`, column by column in one job.
    ///
    /// Returns the per-column results (`x_columns.len()` vectors of
    /// [`RemoteClient::rows`] elements each) and the merged transcript.
    /// Equivalent to [`start_job`](RemoteClient::start_job) +
    /// [`run_job`](RemoteClient::run_job) for callers that do not track
    /// resumable progress themselves.
    ///
    /// # Errors
    ///
    /// See [`RemoteClient::secure_matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `x_columns` is empty or any column length differs from
    /// [`RemoteClient::cols`].
    pub fn secure_matmul(
        &mut self,
        x_columns: &[Vec<i64>],
    ) -> Result<(Vec<Vec<i64>>, MatvecTranscript), AcceleratorError> {
        let _span = max_telemetry::span("remote.client_job");
        let mut progress = self.start_job(x_columns)?;
        self.run_job(&mut progress)?;
        Ok(progress.into_result())
    }

    /// Submits a job and waits for the server to schedule it.
    ///
    /// On READY, returns a [`JobProgress`] whose checkpoints sit at element
    /// zero; drive it with [`RemoteClient::run_job`].
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::Busy`] if the queue rejected the job — the
    /// session stays usable, retry after the hint. Transport/protocol
    /// errors otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `x_columns` is empty or any column length differs from
    /// [`RemoteClient::cols`].
    pub fn start_job(&mut self, x_columns: &[Vec<i64>]) -> Result<JobProgress, AcceleratorError> {
        let rows = self.state.rows;
        let cols = self.state.cols;
        self.start_job_inner(x_columns, rows, cols, None)
    }

    /// [`start_job`](RemoteClient::start_job) against a prepared model
    /// (v5): the job's shape comes from the model's [`ModelHandle`] (from
    /// [`put_model`](RemoteClient::put_model) or
    /// [`model_info`](RemoteClient::model_info)), not the session default.
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::Rejected`] (`unknown prepared model`) if the
    /// server no longer holds the model — the session stays usable;
    /// otherwise see [`start_job`](RemoteClient::start_job).
    ///
    /// # Panics
    ///
    /// Panics if `x_columns` is empty or any column length differs from
    /// the handle's `cols`.
    pub fn start_model_job(
        &mut self,
        model: ModelHandle,
        x_columns: &[Vec<i64>],
    ) -> Result<JobProgress, AcceleratorError> {
        self.start_job_inner(
            x_columns,
            model.rows as usize,
            model.cols as usize,
            Some(model.model_id),
        )
    }

    fn start_job_inner(
        &mut self,
        x_columns: &[Vec<i64>],
        rows: usize,
        cols: usize,
        model_id: Option<u64>,
    ) -> Result<JobProgress, AcceleratorError> {
        assert!(!x_columns.is_empty(), "need at least one column");
        for column in x_columns {
            assert_eq!(column.len(), cols, "vector length mismatch");
        }
        // The wire format carries column and element counts as u32; reject
        // oversized jobs here so RESUME can never silently truncate.
        let columns = u32::try_from(x_columns.len()).map_err(|_| AcceleratorError::Protocol {
            what: "column count exceeds the wire format's u32 range",
        })?;
        if u32::try_from(x_columns.len() * rows).is_err() {
            return Err(AcceleratorError::Protocol {
                what: "job element count exceeds the wire format's u32 range",
            });
        }
        send_control(
            &mut self.transport,
            &ControlMsg::JobRequest { columns, model_id },
        )?;
        match recv_control(&mut self.transport)? {
            ControlMsg::Ready { job_id } => Ok(JobProgress {
                job_id,
                x_columns: x_columns.to_vec(),
                y: vec![Vec::with_capacity(rows); x_columns.len()],
                rows,
                total_elements: x_columns.len() * rows,
                elements_done: 0,
                receiver_checkpoint: self.state.ot_receiver.clone(),
                transcript: MatvecTranscript::default(),
                transcript_checkpoint: MatvecTranscript::default(),
                digest: TranscriptDigest::new(),
                digest_checkpoint: TranscriptDigest::new(),
                done: false,
            }),
            ControlMsg::Busy { retry_after_ms, .. } => {
                Err(AcceleratorError::Busy { retry_after_ms })
            }
            ControlMsg::Reject { code, .. } => Err(AcceleratorError::Rejected {
                reason: reject_reason(code),
            }),
            _ => Err(AcceleratorError::Protocol {
                what: "expected READY or BUSY",
            }),
        }
    }

    /// Re-enters an interrupted job on a freshly
    /// [`reattach`](RemoteClient::reattach)ed connection.
    ///
    /// Rolls the local OT receiver and transcript back to the last
    /// completed element boundary, sends RESUME, and waits for the server's
    /// READY. On success, continue with [`RemoteClient::run_job`] — the
    /// remaining exchange is bit-identical to what the uninterrupted run
    /// would have produced.
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::Rejected`] if the server holds no matching
    /// checkpoint (restart the job from scratch on a fresh session);
    /// [`AcceleratorError::Busy`] if the queue cannot re-admit the job yet;
    /// transport/protocol errors otherwise.
    pub fn resume_job(&mut self, progress: &mut JobProgress) -> Result<(), AcceleratorError> {
        // Both fit u32 — start_job refuses oversized jobs — but never
        // truncate silently: a wrapped count would probe the wrong snapshot.
        let columns =
            u32::try_from(progress.x_columns.len()).map_err(|_| AcceleratorError::Protocol {
                what: "column count exceeds the wire format's u32 range",
            })?;
        let elements_done =
            u32::try_from(progress.elements_done).map_err(|_| AcceleratorError::Protocol {
                what: "job element count exceeds the wire format's u32 range",
            })?;
        self.state.ot_receiver = progress.receiver_checkpoint.clone();
        progress.transcript = progress.transcript_checkpoint;
        progress.digest = progress.digest_checkpoint.clone();
        send_control(
            &mut self.transport,
            &ControlMsg::Resume {
                session_id: self.state.session_id,
                resume_token: self.state.resume_token,
                job_id: progress.job_id,
                columns,
                elements_done,
                trace: self.state.trace,
            },
        )?;
        match recv_control(&mut self.transport)? {
            ControlMsg::Ready { job_id } if job_id == progress.job_id => {
                max_telemetry::counter_add("remote.jobs_resumed", 1);
                Ok(())
            }
            ControlMsg::Ready { .. } => Err(AcceleratorError::Protocol {
                what: "READY for a different job",
            }),
            ControlMsg::Busy { retry_after_ms, .. } => {
                Err(AcceleratorError::Busy { retry_after_ms })
            }
            ControlMsg::Reject { code, .. } => Err(AcceleratorError::Rejected {
                reason: reject_reason(code),
            }),
            _ => Err(AcceleratorError::Protocol {
                what: "expected READY, BUSY, or REJECT",
            }),
        }
    }

    /// Drives a READY job to completion, element by element, from wherever
    /// its progress currently stands.
    ///
    /// Before each element — and once more after the last element, before
    /// waiting for STATS — the OT receiver and transcript are checkpointed
    /// into `progress`, so on any error the caller can reconnect,
    /// [`resume_job`](RemoteClient::resume_job), and call `run_job` again
    /// without losing completed elements.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors; `progress` stays consistent for a resume.
    pub fn run_job(&mut self, progress: &mut JobProgress) -> Result<(), AcceleratorError> {
        let b = self.state.config.bit_width;
        let rows = progress.rows;
        let mut evaluator = ScheduledEvaluator::new(&self.state.config);
        for e in progress.elements_done..progress.total_elements {
            progress.receiver_checkpoint = self.state.ot_receiver.clone();
            progress.transcript_checkpoint = progress.transcript;
            progress.digest_checkpoint = progress.digest.clone();
            let pass = e / rows;
            let column = &progress.x_columns[pass];
            evaluator.begin_element(e as u32);
            let mut choices = Vec::with_capacity(column.len() * b);
            for &xl in column {
                choices.extend(self.state.config.encode_x(xl));
            }
            let (ext, keys) = self.state.ot_receiver.prepare(&choices);
            progress.transcript.ot_upload_bytes +=
                ext.columns.iter().map(|c| c.len() as u64 * 8).sum::<u64>();
            // Fold the EXT body into the running digest and append its
            // value as the frame's trailer — the server verifies it before
            // advancing its OT state (v6).
            let ext_body = encode_ext(&ext);
            progress.digest.fold(&ext_body);
            let mut ext_frame = BytesMut::with_capacity(ext_body.len() + 16);
            ext_frame.put_slice(&ext_body);
            ext_frame.put_slice(&progress.digest.value());
            self.transport
                .send_frame(FrameKind::Bits, seal_frame(ext_frame.freeze()))?;
            let cipher_frame = open_frame(self.transport.recv_frame()?)?;
            // A server that spotted a digest divergence answers the EXT
            // with a sealed REJECT instead of CIPHER blocks. The shapes
            // cannot collide: an honest CIPHER frame is 4 + 32·pairs bytes
            // and starts with the count's zero high byte, never with
            // TAG_REJECT at 6 bytes total.
            if cipher_frame.len() == 6 && cipher_frame[0] == TAG_REJECT {
                if let Ok(ControlMsg::Reject { code, .. }) =
                    ControlMsg::decode(cipher_frame.clone())
                {
                    if code == REJECT_INTEGRITY {
                        return Err(AcceleratorError::Integrity {
                            what: "server rejected the client transcript digest",
                        });
                    }
                    return Err(AcceleratorError::Rejected {
                        reason: reject_reason(code),
                    });
                }
            }
            progress.digest.fold(&cipher_frame);
            let flat = decode_blocks(cipher_frame)?;
            if flat.len() != choices.len() * 2 {
                return Err(AcceleratorError::Protocol {
                    what: "CIPHER pair count",
                });
            }
            progress.transcript.ot_bytes += (flat.len() * 16) as u64;
            let cipher = CipherMsg {
                pairs: flat.chunks_exact(2).map(|p| (p[0], p[1])).collect(),
            };
            let labels = self.state.ot_receiver.receive(&cipher, &keys, &choices);
            let rounds_frame = open_frame(self.transport.recv_frame()?)?;
            progress.digest.fold(&rounds_frame);
            let msgs = decode_round_burst(rounds_frame, column.len())?;
            let mut decoded = None;
            for (i, msg) in msgs.iter().enumerate() {
                progress.transcript.material_bytes += msg.wire_bytes() as u64;
                progress.transcript.tables += msg.tables.len() as u64;
                progress.transcript.rounds += 1;
                decoded = evaluator.evaluate_round(msg, &labels[i * b..(i + 1) * b])?;
            }
            progress.y[pass].push(decoded.ok_or(AcceleratorError::Protocol {
                what: "final round carried no decode bits",
            })?);
            progress.transcript.elements += 1;
            progress.elements_done += 1;
        }
        // Refresh the checkpoints at the final element boundary before
        // waiting for STATS: a cut here resumes with
        // `elements_done == total_elements`, and a stale checkpoint would
        // silently desync the session's OT state by one element (the
        // server's snapshot window does include the final boundary).
        progress.receiver_checkpoint = self.state.ot_receiver.clone();
        progress.transcript_checkpoint = progress.transcript;
        progress.digest_checkpoint = progress.digest.clone();
        match recv_control(&mut self.transport)? {
            ControlMsg::Stats {
                fabric_cycles,
                trace_id,
                digest,
            } => {
                // A traced session insists on its own id back: a nonzero
                // mismatch means the server attributed this job's spans to
                // some other trace, which would silently corrupt stitched
                // timelines. An untraced echo (0) is always acceptable.
                if trace_id != 0 && trace_id != self.state.trace.trace_id {
                    return Err(AcceleratorError::Protocol {
                        what: "STATS trace id does not match the session",
                    });
                }
                // The server's digest over the whole job must equal ours:
                // this is the client's end-to-end proof that every
                // GC-critical byte it evaluated is the byte the server
                // garbled (against accidental corruption — see module docs).
                if digest != progress.digest.value() {
                    return Err(AcceleratorError::Integrity {
                        what: "server transcript digest mismatch at STATS",
                    });
                }
                progress.transcript.fabric_cycles = fabric_cycles;
                progress.transcript.fabric_seconds =
                    fabric_cycles as f64 / (self.state.config.freq_mhz * 1e6);
            }
            _ => {
                return Err(AcceleratorError::Protocol {
                    what: "expected STATS",
                })
            }
        }
        progress.done = true;
        Ok(())
    }

    /// Sends a keep-alive PING and waits for the matching PONG.
    ///
    /// Valid between jobs only (never mid-exchange); the server answers
    /// without touching the job state machine.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`AcceleratorError::Protocol`] on a missing or
    /// mismatched PONG.
    pub fn ping(&mut self, nonce: u64) -> Result<(), AcceleratorError> {
        send_control(&mut self.transport, &ControlMsg::Ping { nonce })?;
        match recv_control(&mut self.transport)? {
            ControlMsg::Pong { nonce: echoed } if echoed == nonce => Ok(()),
            ControlMsg::Pong { .. } => Err(AcceleratorError::Protocol {
                what: "PONG nonce mismatch",
            }),
            _ => Err(AcceleratorError::Protocol {
                what: "expected PONG",
            }),
        }
    }

    /// Gracefully closes the session (best effort) and returns the
    /// transport for inspection.
    pub fn goodbye(mut self) -> T {
        let _ = send_control(&mut self.transport, &ControlMsg::Bye);
        self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use max_gc::channel::Duplex;

    /// Minimal single-session server loop over any transport, used by the
    /// tests here and mirrored (with scheduling) by `max-serve`.
    fn serve_one_session<T: Transport>(
        mut transport: T,
        config: &AcceleratorConfig,
        weights: &[Vec<i64>],
        base_seed: u64,
        session_id: u64,
    ) -> Result<(), AcceleratorError> {
        let hello = match recv_control(&mut transport)? {
            ControlMsg::Hello {
                version,
                bit_width,
                trace,
            } => (version, bit_width, trace),
            _ => {
                return Err(AcceleratorError::Protocol {
                    what: "expected HELLO",
                })
            }
        };
        if hello.0 != PROTOCOL_VERSION {
            send_control(
                &mut transport,
                &ControlMsg::Reject {
                    code: REJECT_VERSION,
                    detail: u32::from(PROTOCOL_VERSION),
                },
            )?;
            return Ok(());
        }
        if hello.1 as usize != config.bit_width {
            send_control(
                &mut transport,
                &ControlMsg::Reject {
                    code: REJECT_WIDTH,
                    detail: config.bit_width as u32,
                },
            )?;
            return Ok(());
        }
        let session_seed = derive_seed(base_seed, session_id);
        let ot_seed = derive_seed(session_seed, 0x07);
        send_control(
            &mut transport,
            &ControlMsg::Accept {
                session_id,
                ot_seed,
                resume_token: derive_seed(session_seed, 0x7e57),
                rows: weights.len() as u32,
                cols: weights.first().map_or(0, Vec::len) as u32,
                bit_width: config.bit_width as u32,
                acc_width: config.acc_width as u32,
                signed: config.signed,
                freq_mhz_bits: config.freq_mhz.to_bits(),
            },
        )?;
        let (mut ot_sender, _receiver) = iknp::setup_pair(ot_seed);
        let mut job_id = 0u64;
        loop {
            match recv_control(&mut transport) {
                Ok(ControlMsg::JobRequest {
                    columns,
                    model_id: None,
                }) => {
                    let job = garble_matvec_job(
                        config,
                        weights,
                        derive_seed(session_seed, 0x100 + job_id),
                        columns,
                    )?;
                    stream_matvec_job(&mut transport, &job, &mut ot_sender, job_id, hello.2)?;
                    job_id += 1;
                }
                Ok(ControlMsg::Ping { nonce }) => {
                    send_control(&mut transport, &ControlMsg::Pong { nonce })?;
                }
                Ok(ControlMsg::Bye) | Err(AcceleratorError::Disconnected) => return Ok(()),
                Ok(_) => {
                    return Err(AcceleratorError::Protocol {
                        what: "expected JOB or BYE",
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn plain_matvec(w: &[Vec<i64>], x: &[i64]) -> Vec<i64> {
        w.iter()
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    #[test]
    fn remote_matvec_over_duplex_matches_plaintext() {
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![1i64, -2, 3], vec![-4, 5, 6], vec![7, 0, -8]];
        let x = vec![9i64, -10, 11];
        let expected = plain_matvec(&w, &x);
        let (server_end, client_end) = Duplex::pair();
        let server = {
            let config = config.clone();
            let w = w.clone();
            std::thread::spawn(move || serve_one_session(server_end, &config, &w, 42, 0))
        };
        let mut client = RemoteClient::connect(client_end, 8).unwrap();
        assert_eq!(client.rows(), 3);
        assert_eq!(client.cols(), 3);
        let (y, t) = client.secure_matvec(&x).unwrap();
        assert_eq!(y, expected);
        assert_eq!(t.elements, 3);
        assert_eq!(t.rounds, 9);
        assert!(t.tables > 0);
        assert!(t.material_bytes > 0);
        assert!(t.ot_bytes > 0);
        assert!(t.ot_upload_bytes > 0);
        assert!(t.fabric_cycles > 0);
        // Keep-alive between jobs answers with the same nonce.
        client.ping(0xfeed_f00d).unwrap();
        // Second job on the same session still decodes correctly.
        let (y2, _) = client.secure_matvec(&[1, 1, 1]).unwrap();
        assert_eq!(y2, plain_matvec(&w, &[1, 1, 1]));
        client.goodbye();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn remote_matmul_over_duplex_matches_plaintext() {
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![2i64, -3], vec![4, 5]];
        let cols = vec![vec![1i64, 2], vec![-7, 8], vec![0, -1]];
        let (server_end, client_end) = Duplex::pair();
        let server = {
            let config = config.clone();
            let w = w.clone();
            std::thread::spawn(move || serve_one_session(server_end, &config, &w, 7, 3))
        };
        let mut client = RemoteClient::connect(client_end, 8).unwrap();
        let (y, t) = client.secure_matmul(&cols).unwrap();
        for (j, column) in cols.iter().enumerate() {
            assert_eq!(y[j], plain_matvec(&w, column), "column {j}");
        }
        assert_eq!(t.elements, 6);
        client.goodbye();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![1i64]];
        let (server_end, mut client_end) = Duplex::pair();
        let server = {
            let config = config.clone();
            std::thread::spawn(move || serve_one_session(server_end, &config, &w, 1, 0))
        };
        // Speak a bogus future version by hand.
        send_control(
            &mut client_end,
            &ControlMsg::Hello {
                version: 999,
                bit_width: 8,
                trace: TraceContext::none(),
            },
        )
        .unwrap();
        match recv_control(&mut client_end).unwrap() {
            ControlMsg::Reject { code, detail } => {
                assert_eq!(code, REJECT_VERSION);
                assert_eq!(detail, u32::from(PROTOCOL_VERSION));
                assert_eq!(reject_reason(code), "protocol version mismatch");
            }
            other => panic!("expected REJECT, got {other:?}"),
        }
        server.join().unwrap().unwrap();
        let _ = server_end;
    }

    #[test]
    fn width_mismatch_surfaces_as_rejected_error() {
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![1i64]];
        let (server_end, client_end) = Duplex::pair();
        let server = std::thread::spawn(move || serve_one_session(server_end, &config, &w, 1, 0));
        let err = RemoteClient::connect(client_end, 16).unwrap_err();
        assert_eq!(
            err,
            AcceleratorError::Rejected {
                reason: "unsupported bit width"
            }
        );
        server.join().unwrap().unwrap();
    }

    #[test]
    fn mid_job_disconnect_is_a_typed_error_server_side() {
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![1i64, 2]];
        let (server_end, client_end) = Duplex::pair();
        let server = {
            let config = config.clone();
            std::thread::spawn(move || serve_one_session(server_end, &config, &w, 9, 0))
        };
        let mut client = RemoteClient::connect(client_end, 8).unwrap();
        // Request a job, then vanish before sending EXT.
        send_control(
            &mut client.transport,
            &ControlMsg::JobRequest {
                columns: 1,
                model_id: None,
            },
        )
        .unwrap();
        match recv_control(&mut client.transport).unwrap() {
            ControlMsg::Ready { .. } => {}
            other => panic!("expected READY, got {other:?}"),
        }
        drop(client);
        assert_eq!(server.join().unwrap(), Err(AcceleratorError::Disconnected));
    }

    #[test]
    fn control_frames_round_trip() {
        let msgs = [
            ControlMsg::Hello {
                version: PROTOCOL_VERSION,
                bit_width: 16,
                trace: TraceContext::from_ids(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210, 0x1dea),
            },
            ControlMsg::Accept {
                session_id: 7,
                ot_seed: 0xdead_beef,
                resume_token: 0x5eed_cafe,
                rows: 3,
                cols: 4,
                bit_width: 16,
                acc_width: 40,
                signed: true,
                freq_mhz_bits: 200.0f64.to_bits(),
            },
            ControlMsg::Reject {
                code: REJECT_DRAINING,
                detail: 0,
            },
            ControlMsg::Resume {
                session_id: 7,
                resume_token: 0x5eed_cafe,
                job_id: 2,
                columns: 4,
                elements_done: 9,
                trace: TraceContext::from_ids(u128::MAX, u64::MAX),
            },
            ControlMsg::Ping { nonce: 0xabad_1dea },
            ControlMsg::Pong { nonce: 0xabad_1dea },
            ControlMsg::JobRequest {
                columns: 2,
                model_id: None,
            },
            ControlMsg::JobRequest {
                columns: 1,
                model_id: Some(0x0de1),
            },
            ControlMsg::ModelPut {
                model_id: 3,
                rows: 2,
                cols: 3,
                weights: vec![1, -2, 3, -4, 5, -6],
            },
            ControlMsg::ModelStat {
                status: ModelStatus {
                    model_id: 3,
                    rows: 2,
                    cols: 3,
                    stock: 4,
                    stock_bytes: 8192,
                    served_prepared: 7,
                    served_fallback: 1,
                    generation: 12,
                },
            },
            ControlMsg::ModelInfo { model_id: 3 },
            ControlMsg::ModelEvict { model_id: u64::MAX },
            ControlMsg::Busy {
                retry_after_ms: 15,
                queue_depth: 9,
            },
            ControlMsg::Ready { job_id: 11 },
            ControlMsg::Stats {
                fabric_cycles: 12345,
                trace_id: 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210,
                digest: *b"0123456789abcdef",
            },
            ControlMsg::MetricsRequest,
            ControlMsg::MetricsReply {
                body: "{\"schema\":\"maxelerator-metrics-v1\"}".to_string(),
            },
            ControlMsg::MetricsReply {
                body: String::new(),
            },
            ControlMsg::Bye,
        ];
        for msg in &msgs {
            assert_eq!(&ControlMsg::decode(msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn malformed_control_frames_are_typed_errors() {
        let empty = BytesMut::with_capacity(0);
        assert!(matches!(
            ControlMsg::decode(empty.freeze()),
            Err(AcceleratorError::Protocol { .. })
        ));
        let mut unknown = BytesMut::with_capacity(1);
        unknown.put_u8(200);
        assert!(matches!(
            ControlMsg::decode(unknown.freeze()),
            Err(AcceleratorError::Protocol { .. })
        ));
        let mut truncated = BytesMut::with_capacity(2);
        truncated.put_u8(TAG_HELLO);
        truncated.put_u8(1);
        assert!(matches!(
            ControlMsg::decode(truncated.freeze()),
            Err(AcceleratorError::Protocol { .. })
        ));
        let mut trailing = ControlMsg::Bye.encode().to_vec();
        trailing.push(0);
        assert!(matches!(
            ControlMsg::decode(Bytes::from(trailing)),
            Err(AcceleratorError::Protocol { .. })
        ));
        // A v3-sized HELLO (6-byte payload, no trace) is truncated under v4.
        let mut v3_hello = BytesMut::with_capacity(7);
        v3_hello.put_u8(TAG_HELLO);
        v3_hello.put_u16(3);
        v3_hello.put_u32(8);
        assert!(matches!(
            ControlMsg::decode(v3_hello.freeze()),
            Err(AcceleratorError::Protocol {
                what: "HELLO payload"
            })
        ));
    }

    #[test]
    fn hostile_metrics_replies_are_typed_errors() {
        // Declared length beyond the cap dies before allocation.
        let mut big = BytesMut::with_capacity(5);
        big.put_u8(TAG_METRICS_REPLY);
        big.put_u32((MAX_METRICS_BYTES + 1) as u32);
        assert!(matches!(
            ControlMsg::decode(big.freeze()),
            Err(AcceleratorError::Protocol {
                what: "METRICS reply too large"
            })
        ));
        // Declared length longer than the frame.
        let mut short = BytesMut::with_capacity(8);
        short.put_u8(TAG_METRICS_REPLY);
        short.put_u32(5);
        short.put_slice(b"ab");
        assert!(matches!(
            ControlMsg::decode(short.freeze()),
            Err(AcceleratorError::Protocol {
                what: "METRICS reply body"
            })
        ));
        // Body that is not UTF-8.
        let mut bad = BytesMut::with_capacity(8);
        bad.put_u8(TAG_METRICS_REPLY);
        bad.put_u32(2);
        bad.put_slice(&[0xff, 0xfe]);
        assert!(matches!(
            ControlMsg::decode(bad.freeze()),
            Err(AcceleratorError::Protocol {
                what: "METRICS reply is not UTF-8"
            })
        ));
        // Trailing bytes after the declared body.
        let mut trailing = BytesMut::with_capacity(8);
        trailing.put_u8(TAG_METRICS_REPLY);
        trailing.put_u32(1);
        trailing.put_slice(b"xy");
        assert!(matches!(
            ControlMsg::decode(trailing.freeze()),
            Err(AcceleratorError::Protocol {
                what: "control frame trailing bytes"
            })
        ));
    }

    #[test]
    fn hostile_model_frames_are_typed_errors() {
        // Declared shape beyond the element cap dies before allocation.
        let mut big = BytesMut::with_capacity(17);
        big.put_u8(TAG_MODEL_PUT);
        big.put_u64(1);
        big.put_u32(u32::MAX);
        big.put_u32(u32::MAX);
        assert!(matches!(
            ControlMsg::decode(big.freeze()),
            Err(AcceleratorError::Protocol {
                what: "MODEL_PUT shape"
            })
        ));
        // Zero-row and zero-column matrices are refused outright.
        for (rows, cols) in [(0u32, 3u32), (3, 0)] {
            let mut empty = BytesMut::with_capacity(17);
            empty.put_u8(TAG_MODEL_PUT);
            empty.put_u64(1);
            empty.put_u32(rows);
            empty.put_u32(cols);
            assert!(matches!(
                ControlMsg::decode(empty.freeze()),
                Err(AcceleratorError::Protocol {
                    what: "MODEL_PUT shape"
                })
            ));
        }
        // Declared shape longer than the payload.
        let mut short = BytesMut::with_capacity(25);
        short.put_u8(TAG_MODEL_PUT);
        short.put_u64(1);
        short.put_u32(2);
        short.put_u32(2);
        short.put_u64(5);
        assert!(matches!(
            ControlMsg::decode(short.freeze()),
            Err(AcceleratorError::Protocol {
                what: "MODEL_PUT weights"
            })
        ));
        // A JOB with an undefined model flag is refused.
        let mut bad_flag = BytesMut::with_capacity(6);
        bad_flag.put_u8(TAG_JOB);
        bad_flag.put_u32(1);
        bad_flag.put_u8(2);
        assert!(matches!(
            ControlMsg::decode(bad_flag.freeze()),
            Err(AcceleratorError::Protocol {
                what: "JOB model flag"
            })
        ));
        // A JOB claiming a model id but truncating it.
        let mut cut = BytesMut::with_capacity(6);
        cut.put_u8(TAG_JOB);
        cut.put_u32(1);
        cut.put_u8(1);
        assert!(matches!(
            ControlMsg::decode(cut.freeze()),
            Err(AcceleratorError::Protocol {
                what: "JOB model id"
            })
        ));
    }

    #[test]
    fn materialized_stream_is_byte_identical_to_direct_garbling() {
        // The prepared-model online path replays pre-rendered frames; they
        // must match what just-in-time encoding would put on the wire.
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![3i64, -1, 4], vec![1, 5, -9]];
        let job = garble_matvec_job(&config, &w, 0xf00d, 2).unwrap();
        let mat = materialize_job(&job);
        assert_eq!(mat.elements.len(), job.rows.len());
        assert_eq!(mat.rows_per_pass, job.rows_per_pass);
        assert_eq!(mat.fabric_cycles, job.fabric_cycles);
        assert!(mat.stored_bytes() > 0);
        for (row, elem) in job.rows.iter().zip(&mat.elements) {
            assert_eq!(elem.rounds_frame, encode_round_burst(&row.messages));
            assert_eq!(elem.pairs, row.pairs);
            assert_eq!(elem.rounds, row.messages.len() as u64);
        }
    }

    #[test]
    fn hello_bytes_are_deterministic_only_for_fixed_traces() {
        let hello = |trace: TraceContext| {
            ControlMsg::Hello {
                version: PROTOCOL_VERSION,
                bit_width: 8,
                trace,
            }
            .encode()
        };
        // Fixed contexts (the transcript-parity posture) are bit-stable.
        assert_eq!(hello(TraceContext::none()), hello(TraceContext::none()));
        let pinned = TraceContext::from_ids(42, 7);
        assert_eq!(hello(pinned), hello(pinned));
        // Minted contexts differ — each dial is its own trace.
        assert_ne!(hello(TraceContext::mint()), hello(TraceContext::mint()));
    }

    #[test]
    fn hostile_ext_frames_are_typed_errors() {
        // Oversized batch.
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(TAG_EXT);
        buf.put_u32((MAX_OT_BATCH + 1) as u32);
        buf.put_u32(((MAX_OT_BATCH + 1).div_ceil(64)) as u32);
        assert!(matches!(
            decode_ext(buf.freeze()),
            Err(AcceleratorError::Protocol {
                what: "EXT batch size"
            })
        ));
        // Word count inconsistent with the declared batch.
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(TAG_EXT);
        buf.put_u32(64);
        buf.put_u32(2);
        assert!(matches!(
            decode_ext(buf.freeze()),
            Err(AcceleratorError::Protocol {
                what: "EXT batch size"
            })
        ));
        // Payload shorter than KAPPA columns.
        let mut buf = BytesMut::with_capacity(24);
        buf.put_u8(TAG_EXT);
        buf.put_u32(64);
        buf.put_u32(1);
        buf.put_u64(0);
        assert!(matches!(
            decode_ext(buf.freeze()),
            Err(AcceleratorError::Protocol {
                what: "EXT payload length"
            })
        ));
    }

    #[test]
    fn transport_error_converts_into_accelerator_error() {
        use max_gc::channel::TransportError;
        assert_eq!(
            AcceleratorError::from(TransportError::Disconnected),
            AcceleratorError::Disconnected
        );
        let err = AcceleratorError::from(TransportError::FrameTooLarge { len: 10, max: 4 });
        assert_eq!(
            err,
            AcceleratorError::Transport(TransportError::FrameTooLarge { len: 10, max: 4 })
        );
        // The source chain reaches the transport error.
        use std::error::Error;
        assert!(err.source().is_some());
    }
}
