//! The FSM schedule: which GC core garbles which AND gate in which cycle.
//!
//! This replaces the conventional netlist-walking execution of software GC
//! frameworks (§3: "The FSM replaces the netlist in the conventional GC").
//! The compiler here performs pipelined list scheduling of the MAC netlist's
//! AND gates onto the parallel cores:
//!
//! * XOR/NOT gates are free (computed combinationally alongside) and only
//!   contribute dependency edges;
//! * an AND gate may run at cycle `t` if every AND in its fan-in cone ran at
//!   a cycle `< t` (its label reaches the core through wiring / the Figure-2
//!   delay registers);
//! * consecutive MAC rounds overlap: round `r+1`'s gates may start while
//!   round `r` drains, subject to the loop-carried accumulator dependency
//!   (round `r+1` reads `acc_in[i]` only after every AND feeding round `r`'s
//!   `acc_out[i]` finished).
//!
//! The resulting schedule *measures* the initiation interval (cycles per
//! MAC in steady state), pipeline latency, utilization and idle-core counts
//! that §4.3 of the paper derives analytically.

use std::collections::BinaryHeap;

use max_netlist::{GateKind, Netlist};
use serde::{Deserialize, Serialize};

/// Gate-selection policy of the list scheduler — ablated by the
/// `ablation_policy` bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Oldest round first, then longest critical path (the default; what
    /// the paper's hand schedule approximates).
    #[default]
    CriticalPath,
    /// Oldest round first, then netlist order (no height information).
    Fifo,
    /// Critical path only, rounds competing freely.
    HeightOnly,
}

/// Which pipeline segment of the paper's datapath an AND gate belongs to
/// (§4.1 MUX_ADD vs §4.2 TREE — used for the Figure 3 occupancy dump).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Segment 1: partial products, input sign handling, first adder level.
    MuxAdd,
    /// Segment 2: adder tree, accumulator, output sign handling.
    Tree,
}

/// One scheduled slot: gate `gate` of round `round` runs on `core` at
/// absolute cycle `cycle`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotAssignment {
    /// Absolute clock cycle.
    pub cycle: u64,
    /// Core index.
    pub core: usize,
    /// Sequential-GC round.
    pub round: u32,
    /// Index into `netlist.gates()` (always an AND gate).
    pub gate: u32,
}

/// Aggregate schedule quality metrics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Total cycles to finish all rounds.
    pub cycles: u64,
    /// AND gates (garbled tables) per round.
    pub ands_per_round: usize,
    /// Rounds scheduled.
    pub rounds: usize,
    /// Measured steady-state initiation interval (cycles between successive
    /// round completions, averaged over the second half of the run).
    pub steady_state_ii: f64,
    /// Cycle at which round 0 completed (pipeline-fill latency).
    pub first_round_latency: u64,
    /// Fraction of core-cycles doing useful garbling.
    pub utilization: f64,
    /// Maximum number of idle cores over the steady-state window.
    pub max_idle_cores_steady: usize,
}

/// A compiled pipelined schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    cores: usize,
    assignments: Vec<SlotAssignment>,
    round_completion: Vec<u64>,
    stats: ScheduleStats,
    segments: Vec<Segment>,
}

/// Dependency graph over the AND gates of one round.
struct GateGraph {
    /// Netlist gate index of each AND, in topological order.
    and_gates: Vec<u32>,
    /// Intra-round AND-predecessors (indices into `and_gates`).
    preds: Vec<Vec<u32>>,
    /// Accumulator-input positions each AND transitively reads.
    acc_preds: Vec<Vec<u32>>,
    /// Per output position: ANDs in its fan-in cone.
    out_and_preds: Vec<Vec<u32>>,
    /// Per output position: accumulator-input positions in its cone.
    out_acc_preds: Vec<Vec<u32>>,
    /// Critical-path height (in AND gates) of each AND.
    height: Vec<u32>,
    /// Segment classification of each AND.
    segments: Vec<Segment>,
}

fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl GateGraph {
    fn build(netlist: &Netlist, state_range: std::ops::Range<usize>) -> Self {
        let wire_count = netlist.wire_count();
        // Per-wire fan-in cones through free gates: (AND set, acc-pos set).
        let mut wire_ands: Vec<Vec<u32>> = vec![Vec::new(); wire_count];
        let mut wire_accs: Vec<Vec<u32>> = vec![Vec::new(); wire_count];
        for (pos, wire) in netlist.garbler_inputs().iter().enumerate() {
            if state_range.contains(&pos) {
                wire_accs[wire.index()] = vec![(pos - state_range.start) as u32];
            }
        }

        let mut and_gates = Vec::new();
        let mut preds = Vec::new();
        let mut acc_preds = Vec::new();
        for (gate_idx, gate) in netlist.gates().iter().enumerate() {
            let a = gate.a.index();
            let b = gate.b.index();
            match gate.kind {
                GateKind::And => {
                    let and_idx = and_gates.len() as u32;
                    preds.push(union_sorted(&wire_ands[a], &wire_ands[b]));
                    acc_preds.push(union_sorted(&wire_accs[a], &wire_accs[b]));
                    and_gates.push(gate_idx as u32);
                    wire_ands[gate.out.index()] = vec![and_idx];
                    wire_accs[gate.out.index()] = Vec::new();
                }
                GateKind::Xor => {
                    wire_ands[gate.out.index()] = union_sorted(&wire_ands[a], &wire_ands[b]);
                    wire_accs[gate.out.index()] = union_sorted(&wire_accs[a], &wire_accs[b]);
                }
                GateKind::Not => {
                    wire_ands[gate.out.index()] = wire_ands[a].clone();
                    wire_accs[gate.out.index()] = wire_accs[a].clone();
                }
            }
        }

        let out_and_preds: Vec<Vec<u32>> = netlist
            .outputs()
            .iter()
            .map(|w| wire_ands[w.index()].clone())
            .collect();
        let out_acc_preds: Vec<Vec<u32>> = netlist
            .outputs()
            .iter()
            .map(|w| wire_accs[w.index()].clone())
            .collect();

        // Heights (longest AND chain to any output), via reverse DP over the
        // topologically ordered AND list.
        let n = and_gates.len();
        let mut height = vec![1u32; n];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (g, ps) in preds.iter().enumerate() {
            for &p in ps {
                dependents[p as usize].push(g as u32);
            }
        }
        for g in (0..n).rev() {
            let succ_max = dependents[g].iter().map(|&d| height[d as usize]).max();
            height[g] = 1 + succ_max.unwrap_or(0);
        }

        // Segment classification: AND-level ≤ 2 (partial products, sign
        // handling, first adder bits) is the MUX_ADD segment.
        let mut level = vec![1u32; n];
        for g in 0..n {
            let pred_max = preds[g].iter().map(|&p| level[p as usize]).max();
            level[g] = 1 + pred_max.unwrap_or(0);
        }
        let segments = level
            .iter()
            .map(|&l| {
                if l <= 2 {
                    Segment::MuxAdd
                } else {
                    Segment::Tree
                }
            })
            .collect();

        GateGraph {
            and_gates,
            preds,
            acc_preds,
            out_and_preds,
            out_acc_preds,
            height,
            segments,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct ReadyGate {
    priority: u64,
    node: u32,
}

impl Ord for ReadyGate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for ReadyGate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Schedule {
    /// Compiles a pipelined schedule of `rounds` consecutive MAC rounds onto
    /// `cores` GC cores.
    ///
    /// `state_range` is the positional range of the carried accumulator in
    /// the garbler inputs (see [`crate::AcceleratorConfig::state_range`]).
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `rounds` is zero, or the state range is
    /// inconsistent with the netlist.
    pub fn compile(
        netlist: &Netlist,
        cores: usize,
        rounds: usize,
        state_range: std::ops::Range<usize>,
    ) -> Self {
        Self::compile_with_policy(
            netlist,
            cores,
            rounds,
            state_range,
            SchedulePolicy::default(),
        )
    }

    /// [`Schedule::compile`] with an explicit gate-selection policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Schedule::compile`].
    pub fn compile_with_policy(
        netlist: &Netlist,
        cores: usize,
        rounds: usize,
        state_range: std::ops::Range<usize>,
        policy: SchedulePolicy,
    ) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(rounds > 0, "need at least one round");
        assert!(
            state_range.end <= netlist.garbler_inputs().len(),
            "state range out of bounds"
        );
        assert_eq!(
            state_range.len(),
            netlist.outputs().len(),
            "state width must equal output width"
        );
        let graph = GateGraph::build(netlist, state_range);
        let n_ands = graph.and_gates.len();
        let n_outs = graph.out_and_preds.len();
        assert!(n_ands > 0, "netlist has no AND gates to schedule");

        // Node numbering: rounds × (ANDs then STATEs).
        let per_round = n_ands + n_outs;
        let total = rounds * per_round;
        let and_node = |r: usize, g: usize| (r * per_round + g) as u32;
        let state_node = |r: usize, o: usize| (r * per_round + n_ands + o) as u32;
        let is_and = |node: u32| (node as usize % per_round) < n_ands;
        let round_of = |node: u32| node as usize / per_round;
        let local_of = |node: u32| node as usize % per_round;

        // pending dep counts and reverse adjacency.
        let mut pending = vec![0u32; total];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); total];
        for r in 0..rounds {
            for g in 0..n_ands {
                let node = and_node(r, g);
                for &p in &graph.preds[g] {
                    pending[node as usize] += 1;
                    dependents[and_node(r, p as usize) as usize].push(node);
                }
                if r > 0 {
                    for &pos in &graph.acc_preds[g] {
                        pending[node as usize] += 1;
                        dependents[state_node(r - 1, pos as usize) as usize].push(node);
                    }
                }
            }
            for o in 0..n_outs {
                let node = state_node(r, o);
                for &p in &graph.out_and_preds[o] {
                    pending[node as usize] += 1;
                    dependents[and_node(r, p as usize) as usize].push(node);
                }
                if r > 0 {
                    for &pos in &graph.out_acc_preds[o] {
                        pending[node as usize] += 1;
                        dependents[state_node(r - 1, pos as usize) as usize].push(node);
                    }
                }
            }
        }

        // max completion of deps seen so far, per node.
        let mut dep_completion = vec![0u64; total];
        let priority = |node: u32| -> u64 {
            let r = round_of(node) as u64;
            let h = graph.height[local_of(node)] as u64;
            let g = local_of(node) as u64;
            match policy {
                SchedulePolicy::CriticalPath => ((rounds as u64 - r) << 24) | h,
                // FIFO: earlier rounds first, then earlier netlist position
                // (invert the gate index so BinaryHeap's max-pop sees it).
                SchedulePolicy::Fifo => ((rounds as u64 - r) << 24) | (0xff_ffff - g),
                SchedulePolicy::HeightOnly => h,
            }
        };

        let mut future: Vec<Vec<u32>> = vec![Vec::new()];
        let push_future = |future: &mut Vec<Vec<u32>>, cycle: u64, node: u32| {
            let idx = cycle as usize;
            if future.len() <= idx {
                future.resize(idx + 1, Vec::new());
            }
            future[idx].push(node);
        };

        // STATE resolution cascades within a cycle.
        let mut assignments: Vec<SlotAssignment> = Vec::with_capacity(rounds * n_ands);
        let mut round_completion = vec![0u64; rounds];
        let mut busy_per_cycle: Vec<usize> = Vec::new();

        // Seed: nodes with no pending deps.
        let mut heap: BinaryHeap<ReadyGate> = BinaryHeap::new();
        let mut initially_done_states: Vec<u32> = Vec::new();
        for node in 0..total as u32 {
            if pending[node as usize] == 0 {
                if is_and(node) {
                    push_future(&mut future, 0, node);
                } else {
                    // A state with no deps completes "before" cycle 0.
                    initially_done_states.push(node);
                }
            }
        }

        let mut scheduled = 0usize;
        let mut cycle = 0u64;

        // Helper performed inline below for state cascades.
        macro_rules! complete_node {
            ($node:expr, $completion:expr, $queue:expr) => {{
                let node: u32 = $node;
                let completion: u64 = $completion;
                for &dep in &dependents[node as usize] {
                    let slot = &mut dep_completion[dep as usize];
                    if *slot < completion {
                        *slot = completion;
                    }
                    pending[dep as usize] -= 1;
                    if pending[dep as usize] == 0 {
                        $queue.push(dep);
                    }
                }
            }};
        }

        // Resolve the zero-dep states (cascade).
        {
            let mut queue: Vec<u32> = initially_done_states;
            while let Some(node) = queue.pop() {
                if is_and(node) {
                    push_future(&mut future, dep_completion[node as usize], node);
                } else {
                    let completion = dep_completion[node as usize];
                    round_completion[round_of(node)] =
                        round_completion[round_of(node)].max(completion);
                    complete_node!(node, completion, queue);
                }
            }
        }

        while scheduled < rounds * n_ands {
            if (cycle as usize) < future.len() {
                let batch = std::mem::take(&mut future[cycle as usize]);
                for node in batch {
                    heap.push(ReadyGate {
                        priority: priority(node),
                        node,
                    });
                }
            }
            let mut busy = 0usize;
            let mut state_queue: Vec<u32> = Vec::new();
            while busy < cores {
                let Some(ReadyGate { node, .. }) = heap.pop() else {
                    break;
                };
                let r = round_of(node);
                let g = local_of(node);
                assignments.push(SlotAssignment {
                    cycle,
                    core: busy,
                    round: r as u32,
                    gate: graph.and_gates[g],
                });
                scheduled += 1;
                busy += 1;
                round_completion[r] = round_completion[r].max(cycle + 1);
                // AND completes at `cycle`; dependents may start at cycle+1.
                for &dep in &dependents[node as usize] {
                    let slot = &mut dep_completion[dep as usize];
                    if *slot < cycle + 1 {
                        *slot = cycle + 1;
                    }
                    pending[dep as usize] -= 1;
                    if pending[dep as usize] == 0 {
                        if is_and(dep) {
                            push_future(&mut future, cycle + 1, dep);
                        } else {
                            state_queue.push(dep);
                        }
                    }
                }
            }
            // Cascade completed STATE nodes (zero-latency).
            while let Some(node) = state_queue.pop() {
                let completion = dep_completion[node as usize];
                round_completion[round_of(node)] = round_completion[round_of(node)].max(completion);
                let mut sub: Vec<u32> = Vec::new();
                complete_node!(node, completion, sub);
                for dep in sub {
                    if is_and(dep) {
                        push_future(&mut future, dep_completion[dep as usize], dep);
                    } else {
                        state_queue.push(dep);
                    }
                }
            }
            busy_per_cycle.push(busy);
            cycle += 1;
        }

        let cycles = cycle;
        // Steady-state II: average gap between round completions over the
        // second half of the run.
        let steady_state_ii = if rounds >= 4 {
            let half = rounds / 2;
            (round_completion[rounds - 1] - round_completion[half - 1]) as f64
                / (rounds - half) as f64
        } else {
            cycles as f64 / rounds as f64
        };
        // Idle-core stats over the steady window (skip pipeline fill/drain).
        let steady_start = round_completion.first().copied().unwrap_or(0) as usize;
        let steady_end = if rounds >= 2 {
            round_completion[rounds - 2] as usize
        } else {
            cycles as usize
        };
        let max_idle_cores_steady = busy_per_cycle
            .iter()
            .take(steady_end)
            .skip(steady_start.min(steady_end))
            .map(|&b| cores - b)
            .max()
            .unwrap_or(0);
        let utilization = (rounds * n_ands) as f64 / (cycles * cores as u64) as f64;

        let stats = ScheduleStats {
            cycles,
            ands_per_round: n_ands,
            rounds,
            steady_state_ii,
            first_round_latency: round_completion[0],
            utilization,
            max_idle_cores_steady,
        };
        let segments = graph.segments;
        Schedule {
            cores,
            assignments,
            round_completion,
            stats,
            segments,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Slot assignments in execution order (cycle-major, then core).
    pub fn assignments(&self) -> &[SlotAssignment] {
        &self.assignments
    }

    /// Cycle at which each round completed.
    pub fn round_completion(&self) -> &[u64] {
        &self.round_completion
    }

    /// Aggregate metrics.
    pub fn stats(&self) -> &ScheduleStats {
        &self.stats
    }

    /// Segment of the `i`-th AND gate of a round (indexed by the order ANDs
    /// appear in the netlist).
    pub fn segment_of_and(&self, and_index: usize) -> Segment {
        self.segments[and_index]
    }

    /// Per-cycle core occupancy over `[from, to)` — the Figure 3 view.
    pub fn occupancy(&self, from: u64, to: u64) -> Vec<Vec<Option<SlotAssignment>>> {
        let mut grid = vec![vec![None; self.cores]; (to - from) as usize];
        for a in &self.assignments {
            if a.cycle >= from && a.cycle < to {
                grid[(a.cycle - from) as usize][a.core] = Some(*a);
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::timing::TimingModel;

    fn compile_for(b: usize, rounds: usize) -> Schedule {
        let config = AcceleratorConfig::new(b);
        let mac = config.mac_circuit();
        let cores = TimingModel::paper(b).cores();
        Schedule::compile(mac.netlist(), cores, rounds, config.state_range())
    }

    #[test]
    fn every_and_gate_scheduled_exactly_once() {
        let config = AcceleratorConfig::new(8);
        let mac = config.mac_circuit();
        let rounds = 5;
        let sched = compile_for(8, rounds);
        let n_ands = mac.netlist().stats().and_gates;
        assert_eq!(sched.assignments().len(), rounds * n_ands);
        let mut seen = std::collections::HashSet::new();
        for a in sched.assignments() {
            assert!(seen.insert((a.round, a.gate)), "duplicate {a:?}");
        }
    }

    #[test]
    fn no_core_double_booked() {
        let sched = compile_for(8, 8);
        let mut seen = std::collections::HashSet::new();
        for a in sched.assignments() {
            assert!(seen.insert((a.cycle, a.core)), "double booking {a:?}");
        }
    }

    #[test]
    fn dependencies_respected() {
        // Re-derive wire availability from the schedule and verify every
        // gate's inputs are ready when it runs.
        let config = AcceleratorConfig::new(8);
        let mac = config.mac_circuit();
        let netlist = mac.netlist();
        let rounds = 4;
        let sched = compile_for(8, rounds);
        // when[(round, gate)] = cycle
        let mut when = std::collections::HashMap::new();
        for a in sched.assignments() {
            when.insert((a.round, a.gate), a.cycle);
        }
        // Wire ready times per round, resolved iteratively.
        for r in 0..rounds as u32 {
            let mut ready = vec![0u64; netlist.wire_count()];
            // Accumulator inputs carry from the previous round's outputs.
            if r > 0 {
                // Upper-bounded by that round's completion; precise check on
                // gates below uses per-wire times, so recompute them.
                // (Handled by the outer loop ordering: previous iteration
                // stored its output readiness in `prev_out`.)
            }
            let prev_out = if r > 0 {
                Some(round_output_ready(netlist, &when, r - 1, &config))
            } else {
                None
            };
            if let Some(prev) = &prev_out {
                for (pos, wire) in netlist.garbler_inputs().iter().enumerate() {
                    if config.state_range().contains(&pos) {
                        ready[wire.index()] = prev[pos - config.state_range().start];
                    }
                }
            }
            for gate in netlist.gates() {
                let in_ready = ready[gate.a.index()].max(ready[gate.b.index()]);
                match gate.kind {
                    max_netlist::GateKind::And => {
                        let gate_idx = netlist
                            .gates()
                            .iter()
                            .position(|g| std::ptr::eq(g, gate))
                            .unwrap() as u32;
                        let cycle = when[&(r, gate_idx)];
                        assert!(
                            cycle >= in_ready,
                            "round {r} gate {gate_idx} at {cycle} before inputs ready {in_ready}"
                        );
                        ready[gate.out.index()] = cycle + 1;
                    }
                    _ => ready[gate.out.index()] = in_ready,
                }
            }
        }

        fn round_output_ready(
            netlist: &max_netlist::Netlist,
            when: &std::collections::HashMap<(u32, u32), u64>,
            r: u32,
            config: &AcceleratorConfig,
        ) -> Vec<u64> {
            let mut ready = vec![0u64; netlist.wire_count()];
            if r > 0 {
                let prev = round_output_ready(netlist, when, r - 1, config);
                for (pos, wire) in netlist.garbler_inputs().iter().enumerate() {
                    if config.state_range().contains(&pos) {
                        ready[wire.index()] = prev[pos - config.state_range().start];
                    }
                }
            }
            for (gate_idx, gate) in netlist.gates().iter().enumerate() {
                let in_ready = ready[gate.a.index()].max(ready[gate.b.index()]);
                ready[gate.out.index()] = match gate.kind {
                    max_netlist::GateKind::And => when[&(r, gate_idx as u32)] + 1,
                    _ => in_ready,
                };
            }
            netlist.outputs().iter().map(|w| ready[w.index()]).collect()
        }
    }

    #[test]
    fn pipelining_beats_serial_rounds() {
        let sched1 = compile_for(8, 1);
        let sched16 = compile_for(8, 16);
        let serial_estimate = sched1.stats().cycles * 16;
        assert!(
            sched16.stats().cycles < serial_estimate,
            "pipelined {} !< serial {}",
            sched16.stats().cycles,
            serial_estimate
        );
    }

    #[test]
    fn steady_state_ii_near_paper_formula() {
        // The paper's formula: 3·b cycles per MAC. Our measured II must be
        // within 25% (our circuit library's AND count differs slightly from
        // the paper's hand-built datapath).
        for b in [8usize, 16] {
            let sched = compile_for(b, 12);
            let paper = (3 * b) as f64;
            let measured = sched.stats().steady_state_ii;
            assert!(
                (measured - paper).abs() / paper < 0.25,
                "b = {b}: measured II {measured} vs paper {paper}"
            );
        }
    }

    #[test]
    fn utilization_is_high() {
        let sched = compile_for(8, 16);
        assert!(
            sched.stats().utilization > 0.85,
            "utilization {}",
            sched.stats().utilization
        );
    }

    #[test]
    fn occupancy_grid_matches_assignments() {
        let sched = compile_for(8, 2);
        let grid = sched.occupancy(0, sched.stats().cycles);
        let filled: usize = grid
            .iter()
            .flat_map(|row| row.iter())
            .filter(|s| s.is_some())
            .count();
        assert_eq!(filled, sched.assignments().len());
    }

    #[test]
    fn segments_cover_both_kinds() {
        let config = AcceleratorConfig::new(8);
        let mac = config.mac_circuit();
        let sched = compile_for(8, 1);
        let n_ands = mac.netlist().stats().and_gates;
        let mux = (0..n_ands)
            .filter(|&i| sched.segment_of_and(i) == Segment::MuxAdd)
            .count();
        let tree = n_ands - mux;
        assert!(mux > 0 && tree > 0, "mux {mux} tree {tree}");
    }

    #[test]
    fn round_completions_monotone() {
        let sched = compile_for(8, 10);
        let comps = sched.round_completion();
        for pair in comps.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let config = AcceleratorConfig::new(8);
        let mac = config.mac_circuit();
        Schedule::compile(mac.netlist(), 0, 1, config.state_range());
    }
}
