//! Multiple MAC units on one device, running **concurrently**: each unit
//! garbles its share of the rows on its own thread (§6: "the throughput can
//! be increased linearly by adding more GC cores") and streams the round
//! messages to the host CPU through the `max_gc::channel` layer, so
//! garbling overlaps host-side OT and evaluation instead of barriering per
//! row.
//!
//! Functional output is **bit-identical** to the single-unit
//! [`crate::CloudServer`]: every element's label stream derives from
//! `(base_seed, elem)` alone (see [`Maxelerator::begin_element`]), so the
//! thread/unit assignment cannot leak into the transcript. The host
//! consumes rows in row order, which also keeps the OT-extension state
//! transitions identical to the sequential server's.
//!
//! Timing is reported two ways: the *modeled* fabric cycles (makespan =
//! busiest unit) and the *measured* wall-clock of the host pipeline, so the
//! linear-scaling claim can be checked against real thread-level speedup.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use max_crypto::Block;
use max_gc::channel::Duplex;
use max_ot::iknp::{self, OtExtSender};

use crate::accelerator::{Maxelerator, RoundMessage, ScheduledEvaluator};
use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;
use crate::server::{ClientSession, MatvecTranscript};
use crate::wire::{decode_round_message, encode_round_message};

/// OT label pairs for one row, one inner `Vec` per round.
pub type RowOtPairs = Vec<Vec<(Block, Block)>>;

/// A bank of independent MAC units sharing one device.
///
/// All units derive per-element label streams from the **same** base seed,
/// which is what makes the parallel transcript equal to the single-unit
/// one.
pub struct MultiUnitServer {
    units: Vec<Maxelerator>,
    weights: Vec<Vec<i64>>,
    config: AcceleratorConfig,
    /// Present when built via [`connect_multi`]; powers the full OT path.
    ot_sender: Option<OtExtSender>,
}

impl std::fmt::Debug for MultiUnitServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiUnitServer")
            .field("units", &self.units.len())
            .field("rows", &self.weights.len())
            .finish_non_exhaustive()
    }
}

/// Timing summary of a multi-unit matvec: modeled fabric cycles plus the
/// measured wall-clock of the actual threaded run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MultiUnitTiming {
    /// Units used.
    pub units: usize,
    /// Fabric cycles of the busiest unit (= the parallel makespan).
    pub makespan_cycles: u64,
    /// Sum of all units' fabric cycles (= the single-unit equivalent).
    pub total_cycles: u64,
    /// Measured wall-clock of the busiest garbling thread.
    pub measured_makespan: Duration,
    /// Sum of all garbling threads' busy time (= single-thread equivalent).
    pub measured_busy_total: Duration,
    /// Measured end-to-end wall-clock of the streamed pipeline (garbling
    /// overlapped with host-side OT/evaluation).
    pub measured_wall: Duration,
    /// Bytes of garbled material streamed unit → host over the channel
    /// layer.
    pub streamed_bytes: u64,
}

impl MultiUnitTiming {
    /// Modeled parallel speedup over one unit.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 1.0;
        }
        self.total_cycles as f64 / self.makespan_cycles as f64
    }

    /// Measured thread-level speedup: total garbling CPU time over the
    /// busiest thread's wall-clock.
    pub fn measured_speedup(&self) -> f64 {
        if self.measured_makespan.is_zero() {
            return 1.0;
        }
        self.measured_busy_total.as_secs_f64() / self.measured_makespan.as_secs_f64()
    }

    /// Publishes this timing into `recorder` as `multi_unit.*` counters —
    /// the single source of truth the benches and `perf_report` read back
    /// via [`MultiUnitTiming::from_snapshot`]. Meant to be called once per
    /// recorder (counters accumulate).
    pub fn record_into(&self, recorder: &max_telemetry::Recorder) {
        recorder.add("multi_unit.units", self.units as u64);
        recorder.add("multi_unit.makespan_cycles", self.makespan_cycles);
        recorder.add("multi_unit.total_cycles", self.total_cycles);
        recorder.add(
            "multi_unit.measured_makespan_ns",
            self.measured_makespan.as_nanos() as u64,
        );
        recorder.add(
            "multi_unit.measured_busy_total_ns",
            self.measured_busy_total.as_nanos() as u64,
        );
        recorder.add(
            "multi_unit.measured_wall_ns",
            self.measured_wall.as_nanos() as u64,
        );
        recorder.add("multi_unit.streamed_bytes", self.streamed_bytes);
    }

    /// Rebuilds a timing from the `multi_unit.*` counters of `snapshot`;
    /// `None` when no multi-unit run was recorded.
    pub fn from_snapshot(snapshot: &max_telemetry::Snapshot) -> Option<Self> {
        let units = snapshot.counter("multi_unit.units");
        if units == 0 {
            return None;
        }
        Some(MultiUnitTiming {
            units: units as usize,
            makespan_cycles: snapshot.counter("multi_unit.makespan_cycles"),
            total_cycles: snapshot.counter("multi_unit.total_cycles"),
            measured_makespan: Duration::from_nanos(
                snapshot.counter("multi_unit.measured_makespan_ns"),
            ),
            measured_busy_total: Duration::from_nanos(
                snapshot.counter("multi_unit.measured_busy_total_ns"),
            ),
            measured_wall: Duration::from_nanos(snapshot.counter("multi_unit.measured_wall_ns")),
            streamed_bytes: snapshot.counter("multi_unit.streamed_bytes"),
        })
    }
}

/// Per-unit result of one garbling thread, drained after the scope joins.
type UnitStats = (usize, Duration, u64);

impl MultiUnitServer {
    /// Creates `units` MAC units serving model matrix `weights`. An empty
    /// matrix is accepted (the matvec is then the empty vector).
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero, the matrix is ragged, or a non-empty
    /// matrix has zero columns.
    pub fn new(
        config: &AcceleratorConfig,
        weights: Vec<Vec<i64>>,
        units: usize,
        seed: u64,
    ) -> Self {
        assert!(units > 0, "need at least one unit");
        let cols = weights.first().map_or(0, Vec::len);
        assert!(
            weights.is_empty() || cols > 0,
            "model matrix must have columns"
        );
        for row in &weights {
            assert_eq!(row.len(), cols, "ragged model matrix");
        }
        MultiUnitServer {
            units: (0..units)
                .map(|_| Maxelerator::new(config.clone(), seed))
                .collect(),
            weights,
            config: config.clone(),
            ot_sender: None,
        }
    }

    /// Number of units.
    pub fn units(&self) -> usize {
        self.units.len()
    }

    /// Number of model rows (output elements).
    pub fn rows(&self) -> usize {
        self.weights.len()
    }

    /// Vector length the client must supply (zero for an empty model).
    pub fn cols(&self) -> usize {
        self.weights.first().map_or(0, Vec::len)
    }

    /// Runs the threaded garbling pipeline: every unit garbles rows
    /// `u, u + n, u + 2n, …` on its own thread and streams each round's
    /// encoded [`RoundMessage`] over a [`Duplex`] channel; `on_row` runs on
    /// the host thread, in row order, overlapped with the still-garbling
    /// units. OT pairs travel on a server-internal side channel (they never
    /// leave the garbler's trust domain).
    fn stream_rows<F>(&mut self, mut on_row: F) -> Result<MultiUnitTiming, AcceleratorError>
    where
        F: FnMut(
            usize,
            Vec<RoundMessage>,
            Vec<Vec<(Block, Block)>>,
        ) -> Result<(), AcceleratorError>,
    {
        let started = Instant::now();
        let n_units = self.units.len();
        let rows = self.weights.len();
        if rows == 0 {
            return Ok(MultiUnitTiming {
                units: n_units,
                measured_wall: started.elapsed(),
                ..MultiUnitTiming::default()
            });
        }

        let mut unit_ends = Vec::with_capacity(n_units);
        let mut host_ends = Vec::with_capacity(n_units);
        let mut pair_txs = Vec::with_capacity(n_units);
        let mut pair_rxs = Vec::with_capacity(n_units);
        for _ in 0..n_units {
            let (unit_end, host_end) = Duplex::pair();
            unit_ends.push(unit_end);
            host_ends.push(host_end);
            let (tx, rx) = mpsc::channel::<Vec<Vec<(Block, Block)>>>();
            pair_txs.push(tx);
            pair_rxs.push(rx);
        }
        let (stats_tx, stats_rx) = mpsc::channel::<UnitStats>();

        let weights = &self.weights;
        let host_result: Result<(), AcceleratorError> = std::thread::scope(|scope| {
            for ((u, unit), (mut wire, pair_tx)) in self
                .units
                .iter_mut()
                .enumerate()
                .zip(unit_ends.into_iter().zip(pair_txs))
            {
                let stats_tx = stats_tx.clone();
                scope.spawn(move || {
                    // Busy interval of this unit on the shared timeline;
                    // closed when the guard drops at thread exit.
                    let _lane = max_telemetry::timeline("multi_unit.units", u as u32);
                    let mut span = max_telemetry::span("unit_garble");
                    let thread_started = Instant::now();
                    let cycles_before = unit.report().cycles;
                    for row_idx in (u..rows).step_by(n_units) {
                        unit.begin_element(row_idx as u32);
                        let msgs = unit.garble_job(&weights[row_idx], true);
                        let pairs: Vec<Vec<(Block, Block)>> = msgs
                            .iter()
                            .map(|m| unit.ot_pairs(m.round).expect("just garbled").to_vec())
                            .collect();
                        for msg in &msgs {
                            wire.send_bytes(encode_round_message(msg));
                        }
                        // Receiver only drops early if the host errored out.
                        let _ = pair_tx.send(pairs);
                    }
                    let unit_cycles = unit.report().cycles - cycles_before;
                    let elapsed = thread_started.elapsed();
                    span.add_cycles(unit_cycles);
                    max_telemetry::histogram_record(
                        "multi_unit.unit_busy_ns",
                        elapsed.as_nanos() as u64,
                    );
                    let _ = stats_tx.send((u, elapsed, unit_cycles));
                });
            }
            drop(stats_tx);

            // Host side: consume rows strictly in row order (each unit's
            // stream is FIFO and its rows ascend, so the owner's next frame
            // bundle is exactly the next row we need). Early rows are
            // evaluated while later rows are still being garbled.
            let rounds_per_row = weights[0].len();
            for row_idx in 0..rows {
                let owner = row_idx % n_units;
                let mut msgs = Vec::with_capacity(rounds_per_row);
                for _ in 0..rounds_per_row {
                    let frame = host_ends[owner]
                        .recv_bytes()
                        .map_err(|_| AcceleratorError::Disconnected)?;
                    msgs.push(decode_round_message(frame)?);
                }
                let pairs = pair_rxs[owner]
                    .recv()
                    .map_err(|_| AcceleratorError::Disconnected)?;
                on_row(row_idx, msgs, pairs)?;
            }
            Ok(())
        });

        let mut busy = vec![Duration::ZERO; n_units];
        let mut cycles = vec![0u64; n_units];
        for (u, elapsed, unit_cycles) in stats_rx.iter() {
            busy[u] = elapsed;
            cycles[u] = unit_cycles;
        }
        host_result?;

        Ok(MultiUnitTiming {
            units: n_units,
            makespan_cycles: cycles.iter().copied().max().unwrap_or(0),
            total_cycles: cycles.iter().sum(),
            measured_makespan: busy.iter().copied().max().unwrap_or(Duration::ZERO),
            measured_busy_total: busy.iter().sum(),
            measured_wall: started.elapsed(),
            streamed_bytes: host_ends.iter().map(|e| e.received().bytes()).sum(),
        })
    }

    /// Garbles every row, row `i` on unit `i % units`, and returns the
    /// per-row messages with their OT pairs (trusted-delivery form for the
    /// in-process client) and the parallel timing. The units run on real
    /// threads; this form gathers everything before returning.
    pub fn garble_matvec(&mut self) -> (Vec<Vec<RoundMessage>>, Vec<RowOtPairs>, MultiUnitTiming) {
        let mut messages = Vec::with_capacity(self.weights.len());
        let mut pairs = Vec::with_capacity(self.weights.len());
        let timing = self
            .stream_rows(|_, msgs, row_pairs| {
                messages.push(msgs);
                pairs.push(row_pairs);
                Ok(())
            })
            .expect("in-process units stream well-formed frames");
        (messages, pairs, timing)
    }

    /// Full in-process secure matvec against a client, rows garbled across
    /// the unit bank and evaluated on the host thread while later rows are
    /// still being garbled (trusted label delivery; production uses
    /// [`connect_multi`] + [`secure_matvec_multi`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` length mismatches the model.
    pub fn secure_matvec(&mut self, x: &[i64]) -> (Vec<i64>, MultiUnitTiming) {
        assert_eq!(x.len(), self.cols(), "vector length mismatch");
        let config = self.config.clone();
        let mut client = ScheduledEvaluator::new(&config);
        let mut result = Vec::with_capacity(self.weights.len());
        let timing = self
            .stream_rows(|row_idx, msgs, row_pairs| {
                client.begin_element(row_idx as u32);
                let mut decoded = None;
                for (msg, round_pairs) in msgs.iter().zip(&row_pairs) {
                    let bits = config.encode_x(x[msg.round as usize]);
                    let labels: Vec<Block> = round_pairs
                        .iter()
                        .zip(&bits)
                        .map(|(&(m0, m1), &bit)| if bit { m1 } else { m0 })
                        .collect();
                    decoded = client.evaluate_round(msg, &labels)?;
                }
                result.push(decoded.expect("final round decodes"));
                Ok(())
            })
            .expect("in-process units stream well-formed frames");
        (result, timing)
    }
}

/// Creates a connected multi-unit server / client pair, mirroring
/// [`crate::connect`]: same OT base phase, same seeds, so the resulting
/// transcript is byte-identical to the single-unit server's.
///
/// # Panics
///
/// Panics if `units` is zero or the matrix is ragged.
pub fn connect_multi(
    config: &AcceleratorConfig,
    weights: Vec<Vec<i64>>,
    units: usize,
    seed: u64,
) -> (MultiUnitServer, ClientSession) {
    let mut server = MultiUnitServer::new(config, weights, units, seed);
    let (ot_sender, ot_receiver) = iknp::setup_pair(seed ^ 0x0055_aaff);
    server.ot_sender = Some(ot_sender);
    (
        server,
        ClientSession {
            evaluator: ScheduledEvaluator::new(config),
            config: config.clone(),
            ot_receiver,
        },
    )
}

/// Runs a complete privacy-preserving `y = W·x` through the threaded
/// multi-unit pipeline with the client's `x` delivered via the full
/// OT-extension stack — the parallel counterpart of
/// [`crate::secure_matvec`], producing byte-identical results, OT
/// ciphertexts and transcript byte counts.
///
/// # Errors
///
/// Returns a typed [`AcceleratorError`] if a streamed frame is malformed
/// or a unit disconnects mid-protocol.
///
/// # Panics
///
/// Panics if `server` was not built via [`connect_multi`] or `x` length
/// mismatches the model.
pub fn secure_matvec_multi(
    server: &mut MultiUnitServer,
    client: &mut ClientSession,
    x: &[i64],
) -> Result<(Vec<i64>, MatvecTranscript, MultiUnitTiming), AcceleratorError> {
    assert_eq!(x.len(), server.cols(), "vector length mismatch");
    let mut ot_sender = server
        .ot_sender
        .take()
        .expect("server must be built via connect_multi");
    let config = client.config.clone();
    let b = config.bit_width;
    let mut choices = Vec::with_capacity(x.len() * b);
    for &xl in x {
        choices.extend(config.encode_x(xl));
    }

    let mut transcript = MatvecTranscript::default();
    let mut result = Vec::with_capacity(server.rows());
    let evaluator = &mut client.evaluator;
    let ot_receiver = &mut client.ot_receiver;
    let timing = server.stream_rows(|row_idx, msgs, row_pairs| {
        evaluator.begin_element(row_idx as u32);
        // One OT-extension batch per row, exactly as the single-unit
        // server batches it, so the OT state transitions match.
        let pairs: Vec<(Block, Block)> = row_pairs.into_iter().flatten().collect();
        let (ext_msg, keys) = ot_receiver.prepare(&choices);
        let cipher = ot_sender.send(&ext_msg, &pairs);
        let labels: Vec<Block> = ot_receiver.receive(&cipher, &keys, &choices);
        transcript.ot_bytes += (cipher.pairs.len() * 32) as u64;
        transcript.ot_upload_bytes += ext_msg
            .columns
            .iter()
            .map(|c| c.len() as u64 * 8)
            .sum::<u64>();

        let mut decoded = None;
        for (i, msg) in msgs.iter().enumerate() {
            transcript.material_bytes += msg.wire_bytes() as u64;
            transcript.tables += msg.tables.len() as u64;
            decoded = evaluator.evaluate_round(msg, &labels[i * b..(i + 1) * b])?;
        }
        result.push(decoded.expect("final round decodes"));
        transcript.rounds += msgs.len() as u64;
        Ok(())
    });
    server.ot_sender = Some(ot_sender);
    let timing = timing?;

    transcript.elements = server.rows();
    transcript.fabric_cycles = timing.makespan_cycles;
    transcript.fabric_seconds = timing.makespan_cycles as f64 / (config.freq_mhz * 1e6);
    Ok((result, transcript, timing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{connect, secure_matvec};

    fn model(rows: usize, cols: usize) -> Vec<Vec<i64>> {
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r * 5 + c * 3) % 21) as i64 - 10)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn multi_unit_result_matches_plaintext() {
        let config = AcceleratorConfig::new(8);
        let w = model(4, 3);
        let x = vec![7i64, -8, 9];
        let expected: Vec<i64> = w
            .iter()
            .map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum())
            .collect();
        for units in [1usize, 2, 4] {
            let mut server = MultiUnitServer::new(&config, w.clone(), units, 99);
            let (got, timing) = server.secure_matvec(&x);
            assert_eq!(got, expected, "{units} units");
            assert_eq!(timing.units, units);
            assert!(timing.streamed_bytes > 0);
        }
    }

    #[test]
    fn parallel_makespan_shrinks_with_units() {
        let config = AcceleratorConfig::new(8);
        let w = model(8, 4);
        let x = vec![1i64, 2, 3, 4];
        let mut one = MultiUnitServer::new(&config, w.clone(), 1, 5);
        let mut four = MultiUnitServer::new(&config, w, 4, 5);
        let (_, t1) = one.secure_matvec(&x);
        let (_, t4) = four.secure_matvec(&x);
        assert!(
            t4.makespan_cycles * 3 < t1.makespan_cycles * 4,
            "4 units gave makespan {} vs {}",
            t4.makespan_cycles,
            t1.makespan_cycles
        );
        assert!(t4.speedup() > 2.5, "speedup {}", t4.speedup());
        assert!((t1.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn units_use_distinct_randomness() {
        let config = AcceleratorConfig::new(8);
        let mut server = MultiUnitServer::new(&config, model(2, 2), 2, 7);
        let (messages, _, _) = server.garble_matvec();
        // Rows on different units must not share tables even for identical
        // model values: each element has its own derived label stream.
        assert_ne!(messages[0][0].tables, messages[1][0].tables);
    }

    #[test]
    fn unit_count_does_not_change_garbled_bytes() {
        // The acceptance invariant at the message level: the exact same
        // RoundMessages (tables, labels, decode bits) come out no matter
        // how many threads garble them.
        let config = AcceleratorConfig::new(8);
        let w = model(5, 3);
        let mut one = MultiUnitServer::new(&config, w.clone(), 1, 42);
        let mut five = MultiUnitServer::new(&config, w, 5, 42);
        let (m1, p1, _) = one.garble_matvec();
        let (m5, p5, _) = five.garble_matvec();
        assert_eq!(m1, m5);
        assert_eq!(p1, p5);
    }

    #[test]
    fn full_protocol_transcript_matches_single_unit_server() {
        // N = 4 threads, full OT stack: outputs and every byte count must
        // equal the sequential CloudServer's.
        let config = AcceleratorConfig::new(8);
        let w = model(6, 4);
        let x = vec![3i64, -1, 0, 7];
        let (mut single, mut single_client) = connect(&config, w.clone(), 77);
        let (want, st) = secure_matvec(&mut single, &mut single_client, &x);

        let (mut multi, mut multi_client) = connect_multi(&config, w, 4, 77);
        let (got, mt, timing) = secure_matvec_multi(&mut multi, &mut multi_client, &x).unwrap();

        assert_eq!(got, want);
        assert_eq!(mt.elements, st.elements);
        assert_eq!(mt.rounds, st.rounds);
        assert_eq!(mt.tables, st.tables);
        assert_eq!(mt.material_bytes, st.material_bytes);
        assert_eq!(mt.ot_bytes, st.ot_bytes);
        assert_eq!(mt.ot_upload_bytes, st.ot_upload_bytes);
        assert_eq!(timing.units, 4);
        assert!(timing.measured_wall > Duration::ZERO);
        assert!(timing.measured_makespan > Duration::ZERO);
        assert!(timing.measured_busy_total >= timing.measured_makespan);
    }

    #[test]
    fn more_units_than_rows_is_fine() {
        let config = AcceleratorConfig::new(8);
        let w = model(2, 3);
        let x = vec![1i64, -2, 3];
        let expected: Vec<i64> = w
            .iter()
            .map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum())
            .collect();
        let mut server = MultiUnitServer::new(&config, w, 6, 11);
        let (got, timing) = server.secure_matvec(&x);
        assert_eq!(got, expected);
        assert_eq!(timing.units, 6);
    }

    #[test]
    fn empty_model_is_fine() {
        let config = AcceleratorConfig::new(8);
        let mut server = MultiUnitServer::new(&config, vec![], 3, 11);
        let (got, timing) = server.secure_matvec(&[]);
        assert!(got.is_empty());
        assert_eq!(timing.total_cycles, 0);
        assert_eq!(timing.streamed_bytes, 0);

        let (mut server, mut client) = connect_multi(&config, vec![], 2, 4);
        let (y, t, _) = secure_matvec_multi(&mut server, &mut client, &[]).unwrap();
        assert!(y.is_empty());
        assert_eq!(t.elements, 0);
    }
}
