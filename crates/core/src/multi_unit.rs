//! Multiple MAC units on one device, operationally: rows of a secure
//! matrix-vector product split across units that garble in parallel
//! (§6: "the throughput can be increased linearly by adding more GC
//! cores"). Functional output is identical to the single-unit server; the
//! wall-clock model takes the *maximum* of the units' fabric times instead
//! of the sum.

use max_crypto::Block;

use crate::accelerator::{Maxelerator, RoundMessage, ScheduledEvaluator};
use crate::config::AcceleratorConfig;

/// A bank of independent MAC units sharing one device.
pub struct MultiUnitServer {
    units: Vec<Maxelerator>,
    weights: Vec<Vec<i64>>,
    config: AcceleratorConfig,
}

impl std::fmt::Debug for MultiUnitServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiUnitServer")
            .field("units", &self.units.len())
            .field("rows", &self.weights.len())
            .finish_non_exhaustive()
    }
}

/// Timing summary of a multi-unit matvec.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MultiUnitTiming {
    /// Units used.
    pub units: usize,
    /// Fabric cycles of the busiest unit (= the parallel makespan).
    pub makespan_cycles: u64,
    /// Sum of all units' fabric cycles (= the single-unit equivalent).
    pub total_cycles: u64,
}

impl MultiUnitTiming {
    /// Parallel speedup achieved over one unit.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 1.0;
        }
        self.total_cycles as f64 / self.makespan_cycles as f64
    }
}

impl MultiUnitServer {
    /// Creates `units` MAC units (distinct label-generator seeds) serving
    /// model matrix `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero or the matrix is empty/ragged.
    pub fn new(
        config: &AcceleratorConfig,
        weights: Vec<Vec<i64>>,
        units: usize,
        seed: u64,
    ) -> Self {
        assert!(units > 0, "need at least one unit");
        assert!(!weights.is_empty(), "model matrix must be non-empty");
        let cols = weights[0].len();
        for row in &weights {
            assert_eq!(row.len(), cols, "ragged model matrix");
        }
        MultiUnitServer {
            units: (0..units)
                .map(|u| Maxelerator::new(config.clone(), seed ^ (0x1000 + u as u64)))
                .collect(),
            weights,
            config: config.clone(),
        }
    }

    /// Number of units.
    pub fn units(&self) -> usize {
        self.units.len()
    }

    /// Garbles every row, row `i` on unit `i % units`, and returns the
    /// per-row messages with their OT pairs (trusted-delivery form for the
    /// in-process client) and the parallel timing.
    pub fn garble_matvec(
        &mut self,
    ) -> (Vec<Vec<RoundMessage>>, Vec<Vec<Vec<(Block, Block)>>>, MultiUnitTiming) {
        let n_units = self.units.len();
        let mut messages = Vec::with_capacity(self.weights.len());
        let mut pairs = Vec::with_capacity(self.weights.len());
        let mut per_unit_cycles = vec![0u64; n_units];
        for (row_idx, row) in self.weights.clone().iter().enumerate() {
            let unit = &mut self.units[row_idx % n_units];
            unit.begin_element(row_idx as u32);
            let before = unit.report().cycles;
            let msgs = unit.garble_job(row, true);
            per_unit_cycles[row_idx % n_units] += unit.report().cycles - before;
            let row_pairs = msgs
                .iter()
                .map(|m| unit.ot_pairs(m.round).to_vec())
                .collect();
            messages.push(msgs);
            pairs.push(row_pairs);
        }
        let timing = MultiUnitTiming {
            units: n_units,
            makespan_cycles: per_unit_cycles.iter().copied().max().unwrap_or(0),
            total_cycles: per_unit_cycles.iter().sum(),
        };
        (messages, pairs, timing)
    }

    /// Full in-process secure matvec against a client, rows garbled across
    /// the unit bank.
    ///
    /// # Panics
    ///
    /// Panics if `x` length mismatches the model.
    pub fn secure_matvec(&mut self, x: &[i64]) -> (Vec<i64>, MultiUnitTiming) {
        assert_eq!(x.len(), self.weights[0].len(), "vector length mismatch");
        let (messages, pairs, timing) = self.garble_matvec();
        let mut client = ScheduledEvaluator::new(&self.config);
        let mut result = Vec::with_capacity(messages.len());
        for (row_idx, (msgs, row_pairs)) in messages.iter().zip(&pairs).enumerate() {
            client.begin_element(row_idx as u32);
            let mut decoded = None;
            for (msg, round_pairs) in msgs.iter().zip(row_pairs) {
                let bits = self.config.encode_x(x[msg.round as usize]);
                let labels: Vec<Block> = round_pairs
                    .iter()
                    .zip(&bits)
                    .map(|(&(m0, m1), &bit)| if bit { m1 } else { m0 })
                    .collect();
                decoded = client.evaluate_round(msg, &labels);
            }
            result.push(decoded.expect("final round decodes"));
        }
        (result, timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(rows: usize, cols: usize) -> Vec<Vec<i64>> {
        (0..rows)
            .map(|r| (0..cols).map(|c| ((r * 5 + c * 3) % 21) as i64 - 10).collect())
            .collect()
    }

    #[test]
    fn multi_unit_result_matches_plaintext() {
        let config = AcceleratorConfig::new(8);
        let w = model(4, 3);
        let x = vec![7i64, -8, 9];
        let expected: Vec<i64> = w
            .iter()
            .map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum())
            .collect();
        for units in [1usize, 2, 4] {
            let mut server = MultiUnitServer::new(&config, w.clone(), units, 99);
            let (got, timing) = server.secure_matvec(&x);
            assert_eq!(got, expected, "{units} units");
            assert_eq!(timing.units, units);
        }
    }

    #[test]
    fn parallel_makespan_shrinks_with_units() {
        let config = AcceleratorConfig::new(8);
        let w = model(8, 4);
        let x = vec![1i64, 2, 3, 4];
        let mut one = MultiUnitServer::new(&config, w.clone(), 1, 5);
        let mut four = MultiUnitServer::new(&config, w, 4, 5);
        let (_, t1) = one.secure_matvec(&x);
        let (_, t4) = four.secure_matvec(&x);
        assert!(
            t4.makespan_cycles * 3 < t1.makespan_cycles * 4,
            "4 units gave makespan {} vs {}",
            t4.makespan_cycles,
            t1.makespan_cycles
        );
        assert!(t4.speedup() > 2.5, "speedup {}", t4.speedup());
        assert!((t1.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn units_use_distinct_randomness() {
        let config = AcceleratorConfig::new(8);
        let mut server = MultiUnitServer::new(&config, model(2, 2), 2, 7);
        let (messages, _, _) = server.garble_matvec();
        // Rows on different units must not share tables even for identical
        // model values.
        assert_ne!(messages[0][0].tables, messages[1][0].tables);
    }
}
