//! Offline precomputation (§3): "the garbling operation does not require
//! any input from any party … MAXelerator keeps generating the garbled
//! tables independently and sends them to the host CPU … and when requested
//! by the client simply performs the garbling with one of the stored
//! garbled circuits. Note that even if the model does not change, new
//! labels are required for every garbling operation to ensure security."
//!
//! [`PrecomputeStore`] is that host-side buffer: the accelerator fills it
//! with ready-to-serve garbled jobs for a model row during idle time; a
//! client query pops one (single use — labels are never reused) and only
//! the OT runs online.

use max_crypto::Block;

use crate::accelerator::{Maxelerator, RoundMessage};
use crate::config::AcceleratorConfig;

/// One pre-garbled dot-product job: the public round messages plus the OT
/// pairs the host needs to answer the client's OT.
#[derive(Clone, Debug)]
pub struct PrecomputedJob {
    /// Per-round public messages (tables, labels, decode on the last).
    pub messages: Vec<RoundMessage>,
    /// OT pairs per round (host-side secret until the OT runs).
    pub ot_pairs: Vec<Vec<(Block, Block)>>,
}

/// Host-side store of pre-garbled jobs for one model row.
#[derive(Debug)]
pub struct PrecomputeStore {
    config: AcceleratorConfig,
    row: Vec<i64>,
    jobs: std::collections::VecDeque<PrecomputedJob>,
    served: u64,
    fabric_cycles_spent: u64,
}

impl PrecomputeStore {
    /// Creates an empty store for serving dot products against `row`.
    ///
    /// # Panics
    ///
    /// Panics if the row is empty.
    pub fn new(config: AcceleratorConfig, row: Vec<i64>) -> Self {
        assert!(!row.is_empty(), "model row must be non-empty");
        PrecomputeStore {
            config,
            row,
            jobs: std::collections::VecDeque::new(),
            served: 0,
            fabric_cycles_spent: 0,
        }
    }

    /// Jobs currently buffered.
    pub fn available(&self) -> usize {
        self.jobs.len()
    }

    /// Queries served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The configuration jobs are garbled under.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Fabric cycles spent garbling into this store (offline time).
    pub fn fabric_cycles_spent(&self) -> u64 {
        self.fabric_cycles_spent
    }

    /// Fills the store with `count` fresh jobs using `accelerator` (idle
    /// fabric time). Every job draws fresh labels — stored jobs are never
    /// identical.
    pub fn refill(&mut self, accelerator: &mut Maxelerator, count: usize) {
        for _ in 0..count {
            // Element ids continue the queue: the i-th job ever created is
            // served as element i.
            accelerator.begin_element(self.served as u32 + self.jobs.len() as u32);
            let before = accelerator.report().cycles;
            let messages = accelerator.garble_job(&self.row, true);
            self.fabric_cycles_spent += accelerator.report().cycles - before;
            let ot_pairs = messages
                .iter()
                .map(|m| {
                    accelerator
                        .ot_pairs(m.round)
                        .expect("round just garbled")
                        .to_vec()
                })
                .collect();
            self.jobs.push_back(PrecomputedJob { messages, ot_pairs });
        }
    }

    /// Serves one client query: pops a job (it is consumed — labels are
    /// single-use) or returns `None` if the store is empty and the query
    /// must wait for live garbling.
    pub fn serve(&mut self) -> Option<PrecomputedJob> {
        let job = self.jobs.pop_front()?;
        self.served += 1;
        Some(job)
    }
}

impl PrecomputedJob {
    /// Trusted-delivery helper mirroring
    /// [`Maxelerator::ot_pairs_for_client`]: the active labels for the
    /// client's bits in round `round_index`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range round or bit-count mismatch.
    pub fn labels_for(&self, round_index: usize, x_bits: &[bool]) -> Vec<Block> {
        let pairs = &self.ot_pairs[round_index];
        assert_eq!(pairs.len(), x_bits.len(), "x bit-count mismatch");
        pairs
            .iter()
            .zip(x_bits)
            .map(|(&(m0, m1), &bit)| if bit { m1 } else { m0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::ScheduledEvaluator;

    fn serve_and_evaluate(
        config: &AcceleratorConfig,
        job: &PrecomputedJob,
        elem: u32,
        x: &[i64],
    ) -> i64 {
        let mut client = ScheduledEvaluator::new(config);
        client.begin_element(elem);
        let mut result = None;
        for (i, msg) in job.messages.iter().enumerate() {
            let labels = job.labels_for(i, &config.encode_x(x[i]));
            result = client.evaluate_round(msg, &labels).unwrap();
        }
        result.expect("final round decodes")
    }

    #[test]
    fn precomputed_queries_decode_correctly() {
        let config = AcceleratorConfig::new(8);
        let row = vec![3i64, -4, 5];
        let mut accel = Maxelerator::new(config.clone(), 61);
        let mut store = PrecomputeStore::new(config.clone(), row.clone());
        store.refill(&mut accel, 3);
        assert_eq!(store.available(), 3);

        for (query, x) in [vec![1i64, 2, 3], vec![-5, 0, 7], vec![9, 9, -9]]
            .into_iter()
            .enumerate()
        {
            let elem = store.served() as u32;
            let job = store.serve().expect("job buffered");
            let expected: i64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
            assert_eq!(
                serve_and_evaluate(&config, &job, elem, &x),
                expected,
                "query {query}"
            );
        }
        assert_eq!(store.available(), 0);
        assert!(store.serve().is_none(), "store must deplete");
        assert!(store.fabric_cycles_spent() > 0);
    }

    #[test]
    fn stored_jobs_use_fresh_labels() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 62);
        let mut store = PrecomputeStore::new(config.clone(), vec![7, 7]);
        store.refill(&mut accel, 2);
        let a = store.serve().expect("first");
        let b = store.serve().expect("second");
        // Same model row, but different tables and labels (fresh randomness
        // per job — the §3 security requirement).
        assert_ne!(a.messages[0].tables, b.messages[0].tables);
        assert_ne!(a.ot_pairs, b.ot_pairs);
    }

    #[test]
    fn online_latency_is_ot_plus_evaluation_only() {
        // The served job needs zero additional fabric cycles: snapshot the
        // accelerator's clock, serve + evaluate, clock unchanged.
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 63);
        let mut store = PrecomputeStore::new(config.clone(), vec![2, 3, 4]);
        store.refill(&mut accel, 1);
        let cycles_before = accel.report().cycles;
        let job = store.serve().expect("buffered");
        let got = serve_and_evaluate(&config, &job, 0, &[1, 1, 1]);
        assert_eq!(got, 9);
        assert_eq!(
            accel.report().cycles,
            cycles_before,
            "no online fabric time"
        );
    }
}
