//! The Figure-1 system: a cloud server (garbler, with the accelerator and
//! the model matrix) serving a client (evaluator, with the input vector).
//!
//! The server's host CPU relays accelerator output and runs the OT with the
//! client — exactly the division of labour in §3: "MAXelerator creates the
//! garbled tables and sends them to the host CPU that later performs the
//! communication with the client including OT."

use max_crypto::Block;
use max_ot::iknp::{self, OtExtReceiver, OtExtSender};
use serde::{Deserialize, Serialize};

use crate::accelerator::{Maxelerator, RoundMessage, ScheduledEvaluator};
use crate::config::AcceleratorConfig;

/// Communication/computation accounting of one secure matrix-vector
/// product.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MatvecTranscript {
    /// Output elements computed.
    pub elements: usize,
    /// MAC rounds garbled.
    pub rounds: u64,
    /// Garbled tables transferred.
    pub tables: u64,
    /// Bytes of garbled material + input labels (server → client).
    pub material_bytes: u64,
    /// Bytes of OT ciphertexts (server → client).
    pub ot_bytes: u64,
    /// Bytes of OT corrections (client → server).
    pub ot_upload_bytes: u64,
    /// Fabric cycles spent garbling.
    pub fabric_cycles: u64,
    /// Wall-clock the fabric would need at the configured frequency.
    pub fabric_seconds: f64,
}

/// The cloud server: accelerator + model matrix + OT sender.
pub struct CloudServer {
    accelerator: Maxelerator,
    /// Model matrix, row-major.
    weights: Vec<Vec<i64>>,
    ot_sender: OtExtSender,
}

impl std::fmt::Debug for CloudServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudServer")
            .field("rows", &self.weights.len())
            .finish_non_exhaustive()
    }
}

/// The client: scheduled evaluator + OT receiver.
pub struct ClientSession {
    pub(crate) evaluator: ScheduledEvaluator,
    pub(crate) config: AcceleratorConfig,
    pub(crate) ot_receiver: OtExtReceiver,
}

impl std::fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientSession").finish_non_exhaustive()
    }
}

/// Creates a connected server/client pair (the OT base phase runs here).
///
/// An empty matrix is accepted: the resulting matvec is the empty vector.
///
/// # Panics
///
/// Panics if the matrix is ragged, a non-empty matrix has zero columns, or
/// its values do not fit the configured bit-width.
pub fn connect(
    config: &AcceleratorConfig,
    weights: Vec<Vec<i64>>,
    seed: u64,
) -> (CloudServer, ClientSession) {
    let cols = weights.first().map_or(0, Vec::len);
    assert!(
        weights.is_empty() || cols > 0,
        "model matrix must have columns"
    );
    for row in &weights {
        assert_eq!(row.len(), cols, "ragged model matrix");
    }
    let (ot_sender, ot_receiver) = iknp::setup_pair(seed ^ 0x0055_aaff);
    (
        CloudServer {
            accelerator: Maxelerator::new(config.clone(), seed),
            weights,
            ot_sender,
        },
        ClientSession {
            evaluator: ScheduledEvaluator::new(config),
            config: config.clone(),
            ot_receiver,
        },
    )
}

impl CloudServer {
    /// Number of model rows (output elements).
    pub fn rows(&self) -> usize {
        self.weights.len()
    }

    /// Vector length the client must supply (zero for an empty model).
    pub fn cols(&self) -> usize {
        self.weights.first().map_or(0, Vec::len)
    }

    /// Direct access to the accelerator's activity report.
    pub fn accelerator_report(&self) -> &crate::accelerator::AcceleratorReport {
        self.accelerator.report()
    }
}

/// Runs a complete privacy-preserving matrix-vector product `y = W·x`
/// between `server` and `client`, with the client's `x` delivered through
/// the full OT-extension stack.
///
/// Returns the decoded result (revealed to the client, per the protocol)
/// and the transcript accounting.
///
/// # Panics
///
/// Panics if `x` length differs from the server's column count or values do
/// not fit the configured bit-width.
pub fn secure_matvec(
    server: &mut CloudServer,
    client: &mut ClientSession,
    x: &[i64],
) -> (Vec<i64>, MatvecTranscript) {
    assert_eq!(x.len(), server.cols(), "vector length mismatch");
    let _matvec_span = max_telemetry::span("secure_matvec");
    let mut transcript = MatvecTranscript::default();
    let mut result = Vec::with_capacity(server.rows());

    let weights = server.weights.clone();
    for (row_idx, row) in weights.iter().enumerate() {
        server.accelerator.begin_element(row_idx as u32);
        client.evaluator.begin_element(row_idx as u32);
        let messages: Vec<RoundMessage> = {
            let mut span = max_telemetry::span("garble");
            let cycles_before = server.accelerator.report().cycles;
            let messages = server.accelerator.garble_job(row, true);
            span.add_cycles(server.accelerator.report().cycles - cycles_before);
            messages
        };

        // One OT-extension batch covers every round of this row: b choice
        // bits per round.
        let mut choices = Vec::with_capacity(x.len() * client.config.bit_width);
        for &xl in x {
            choices.extend(client.config.encode_x(xl));
        }
        let mut pairs = Vec::with_capacity(choices.len());
        for msg in &messages {
            pairs.extend_from_slice(
                server
                    .accelerator
                    .ot_pairs(msg.round)
                    .expect("round just garbled"),
            );
        }
        let labels: Vec<Block> = {
            let _span = max_telemetry::span("ot");
            let (ext_msg, keys) = client.ot_receiver.prepare(&choices);
            let cipher = server.ot_sender.send(&ext_msg, &pairs);
            let labels = client.ot_receiver.receive(&cipher, &keys, &choices);
            transcript.ot_bytes += (cipher.pairs.len() * 32) as u64;
            transcript.ot_upload_bytes += ext_msg
                .columns
                .iter()
                .map(|c| c.len() as u64 * 8)
                .sum::<u64>();
            labels
        };

        let _eval_span = max_telemetry::span("evaluate");
        let b = client.config.bit_width;
        let mut decoded = None;
        for (i, msg) in messages.iter().enumerate() {
            transcript.material_bytes += msg.wire_bytes() as u64;
            transcript.tables += msg.tables.len() as u64;
            decoded = client
                .evaluator
                .evaluate_round(msg, &labels[i * b..(i + 1) * b])
                .expect("in-process server messages are well-formed");
        }
        drop(_eval_span);
        result.push(decoded.expect("final round decodes"));
        transcript.rounds += messages.len() as u64;
    }

    transcript.elements = server.rows();
    let report = server.accelerator.report();
    transcript.fabric_cycles = report.cycles;
    transcript.fabric_seconds = report.cycles as f64 / (server.accelerator.config().freq_mhz * 1e6);
    (result, transcript)
}

/// Runs a complete privacy-preserving matrix product `Y = W·X` (Eq. 3 of
/// the paper) where the client\'s matrix `X` is supplied column by column.
///
/// Returns `Y` row-major (`rows x x_columns.len()`) and the merged
/// transcript. Internally each column is one [`secure_matvec`]; the paper\'s
/// cycle formula `3*M*N*P*b` is exactly this loop on one MAC unit.
///
/// # Panics
///
/// Panics if any column length differs from the server\'s column count.
pub fn secure_matmul(
    server: &mut CloudServer,
    client: &mut ClientSession,
    x_columns: &[Vec<i64>],
) -> (Vec<Vec<i64>>, MatvecTranscript) {
    assert!(!x_columns.is_empty(), "need at least one column");
    let mut result = vec![vec![0i64; x_columns.len()]; server.rows()];
    let mut total = MatvecTranscript::default();
    for (j, column) in x_columns.iter().enumerate() {
        let (y, t) = secure_matvec(server, client, column);
        for (i, value) in y.into_iter().enumerate() {
            result[i][j] = value;
        }
        total.elements += t.elements;
        total.rounds += t.rounds;
        total.tables += t.tables;
        total.material_bytes += t.material_bytes;
        total.ot_bytes += t.ot_bytes;
        total.ot_upload_bytes += t.ot_upload_bytes;
        total.fabric_cycles = t.fabric_cycles; // cumulative clock
        total.fabric_seconds = t.fabric_seconds;
    }
    (result, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use max_gc::GarbledTable;

    fn plain_matvec(w: &[Vec<i64>], x: &[i64]) -> Vec<i64> {
        w.iter()
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    #[test]
    fn secure_matvec_matches_plaintext() {
        let config = AcceleratorConfig::new(8);
        let w = vec![
            vec![1i64, -2, 3, 4],
            vec![-5, 6, -7, 8],
            vec![0, 0, 127, -128],
        ];
        let x = vec![9i64, -10, 11, 12];
        let expected = plain_matvec(&w, &x);
        let (mut server, mut client) = connect(&config, w, 99);
        let (got, transcript) = secure_matvec(&mut server, &mut client, &x);
        assert_eq!(got, expected);
        assert_eq!(transcript.elements, 3);
        assert_eq!(transcript.rounds, 12);
        assert!(transcript.tables > 0);
        assert!(transcript.material_bytes > transcript.tables * GarbledTable::WIRE_BYTES as u64);
        assert!(transcript.ot_bytes > 0);
        assert!(transcript.fabric_seconds > 0.0);
    }

    #[test]
    fn sixteen_bit_matvec() {
        let config = AcceleratorConfig::new(16);
        let w = vec![vec![1000i64, -2000], vec![30_000, 1]];
        let x = vec![-7i64, 250];
        let expected = plain_matvec(&w, &x);
        let (mut server, mut client) = connect(&config, w, 5);
        let (got, _) = secure_matvec(&mut server, &mut client, &x);
        assert_eq!(got, expected);
    }

    #[test]
    fn repeated_queries_reuse_ot_setup() {
        // Sequential GC + OT extension: the same session serves multiple
        // queries with fresh labels each time.
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![2i64, 3]];
        let (mut server, mut client) = connect(&config, w, 17);
        let (y1, _) = secure_matvec(&mut server, &mut client, &[10, 20]);
        let (y2, _) = secure_matvec(&mut server, &mut client, &[-1, 1]);
        assert_eq!(y1, vec![80]);
        assert_eq!(y2, vec![1]);
    }

    #[test]
    fn secure_matmul_matches_plaintext() {
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![1i64, -2, 3], vec![4, 5, -6]];
        let x_cols = vec![vec![1i64, 0, -1], vec![7, -8, 9]];
        let (mut server, mut client) = connect(&config, w.clone(), 123);
        let (y, t) = secure_matmul(&mut server, &mut client, &x_cols);
        for i in 0..2 {
            for j in 0..2 {
                let want: i64 = w[i].iter().zip(&x_cols[j]).map(|(a, b)| a * b).sum();
                assert_eq!(y[i][j], want, "({i},{j})");
            }
        }
        assert_eq!(t.elements, 4);
        assert_eq!(t.rounds, 12);
    }

    #[test]
    fn empty_model_yields_empty_result() {
        let config = AcceleratorConfig::new(8);
        let (mut server, mut client) = connect(&config, vec![], 3);
        let (y, t) = secure_matvec(&mut server, &mut client, &[]);
        assert!(y.is_empty());
        assert_eq!(t.elements, 0);
        assert_eq!(t.tables, 0);
        assert_eq!(t.material_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn wrong_vector_length_rejected() {
        let config = AcceleratorConfig::new(8);
        let (mut server, mut client) = connect(&config, vec![vec![1, 2]], 1);
        secure_matvec(&mut server, &mut client, &[1]);
    }

    #[test]
    #[should_panic(expected = "ragged model matrix")]
    fn ragged_matrix_rejected() {
        let config = AcceleratorConfig::new(8);
        connect(&config, vec![vec![1, 2], vec![3]], 1);
    }
}
