//! # MAXelerator
//!
//! Cycle-accurate reproduction of *MAXelerator: FPGA Accelerator for
//! Privacy Preserving Multiply-Accumulate (MAC) on Cloud Servers*
//! (Hussain, Rouhani, Ghasemzadeh, Koushanfar — DAC 2018).
//!
//! MAXelerator accelerates the **garbler** side of Yao's protocol for the
//! one operation that dominates privacy-preserving matrix ML: the MAC.
//! Its design points, all modeled here:
//!
//! * **FSM instead of netlist interpretation** — the MAC netlist is compiled
//!   into a static per-clock schedule ([`Schedule`]) that tells each GC core
//!   which AND gate to garble in which cycle, with label transfer by wiring
//!   and delay registers instead of memory synchronization.
//! * **Parallel GC cores** — `b/2 + ⌈(b/2+8)/3⌉` cores
//!   ([`TimingModel::cores`]), each garbling one table per clock with a
//!   fixed-key AES engine.
//! * **Sequential outer loop** — the same schedule re-runs every round with
//!   fresh labels, the accumulator labels carried between rounds
//!   ([`Maxelerator`]).
//! * **On-chip label generation** — a power-gated ring-oscillator RNG bank
//!   (`max-rng`).
//! * **BRAM + PCIe drainage** — tables stream to the host through the
//!   single-read-port memory and a bandwidth-modeled link (`max-fpga`).
//!
//! The simulated hardware emits **real garbled tables**: [`ScheduledEvaluator`]
//! (the client) decrypts them and must recover exact MAC results, which is
//! the strongest correctness check this reproduction has — and it passes for
//! random matrices at every supported bit-width.
//!
//! # Quick start
//!
//! ```
//! use maxelerator::{AcceleratorConfig, Maxelerator, ScheduledEvaluator};
//!
//! let config = AcceleratorConfig::new(8);
//! let mut accel = Maxelerator::new(config.clone(), 42);
//! let mut client = ScheduledEvaluator::new(&config);
//!
//! // Server's row a, client's vector x: compute <a, x> privately.
//! let a = [3i64, -4, 5];
//! let x = [2i64, 6, -1];
//! let mut result = None;
//! for (l, (&al, &xl)) in a.iter().zip(&x).enumerate() {
//!     let round = accel.garble_round(al, l == a.len() - 1);
//!     let labels = accel.ot_pairs_for_client(&config.encode_x(xl));
//!     result = client.evaluate_round(&round, &labels).expect("well-formed round");
//! }
//! assert_eq!(result.unwrap(), 3 * 2 + (-4) * 6 + 5 * (-1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod config;
mod error;
mod multi_unit;
pub mod remote;
pub mod resilient;
mod resources;
mod scaling;
mod schedule;
mod server;
mod timing;
mod wire;

pub use accelerator::{AcceleratorReport, Maxelerator, RoundMessage, ScheduledEvaluator};
pub use config::AcceleratorConfig;
pub use error::AcceleratorError;
pub use multi_unit::{connect_multi, secure_matvec_multi, MultiUnitServer, MultiUnitTiming};
pub use remote::{
    JobProgress, MaterializedJob, ModelHandle, ModelStatus, RemoteClient, SessionState,
    PROTOCOL_VERSION,
};
pub use resilient::{ResilienceStats, ResilientClient, RetryPolicy};
pub use resources::{mac_unit_resources, resource_breakdown, ComponentUsage};
pub use scaling::{client_capacity_ratio, pack_device, xcvu095_scaling, DeviceScaling};
pub use schedule::{Schedule, SchedulePolicy, ScheduleStats, Segment, SlotAssignment};
pub use server::{
    connect, secure_matmul, secure_matvec, ClientSession, CloudServer, MatvecTranscript,
};
pub use timing::TimingModel;
pub use wire::{decode_round_message, encode_round_message};
