//! The paper's analytical performance model (§4.3, Table 2).
//!
//! These are the formulas the paper publishes; the cycle-accurate simulator
//! ([`crate::Maxelerator`]) produces *measured* counts that the tests
//! compare against this model.

use serde::{Deserialize, Serialize};

/// Analytical timing model of one MAC unit at bit-width `b`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Operand bit-width `b`.
    pub bit_width: usize,
    /// Fabric clock in MHz.
    pub freq_mhz: f64,
}

impl TimingModel {
    /// Model at the paper's 200 MHz clock.
    pub fn paper(bit_width: usize) -> Self {
        TimingModel {
            bit_width,
            freq_mhz: 200.0,
        }
    }

    /// §4.3: number of GC cores, `b/2 + ⌈(b/2 + 8)/3⌉`.
    pub fn cores(&self) -> usize {
        let b = self.bit_width;
        b / 2 + (b / 2 + 8).div_ceil(3)
    }

    /// Cores in segment 1 (MUX_ADD): `b/2`.
    pub fn segment1_cores(&self) -> usize {
        self.bit_width / 2
    }

    /// Cores in segment 2 (TREE + accumulator + sign): `⌈(b/2 + 8)/3⌉`.
    pub fn segment2_cores(&self) -> usize {
        (self.bit_width / 2 + 8).div_ceil(3)
    }

    /// §4.3: pipeline latency in *stages*, `b + log2(b) + 2`.
    pub fn latency_stages(&self) -> usize {
        self.bit_width + (self.bit_width as f64).log2().ceil() as usize + 2
    }

    /// Cycles per stage (one garbled table per core per cycle, three tables
    /// per core per stage).
    pub const CYCLES_PER_STAGE: usize = 3;

    /// §4.3: pipelined throughput of 1 MAC per `b` stages = `3b` cycles.
    pub fn cycles_per_mac(&self) -> u64 {
        (Self::CYCLES_PER_STAGE * self.bit_width) as u64
    }

    /// Pipeline-fill latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        (Self::CYCLES_PER_STAGE * self.latency_stages()) as u64
    }

    /// Seconds per MAC (steady state).
    pub fn seconds_per_mac(&self) -> f64 {
        self.cycles_per_mac() as f64 / (self.freq_mhz * 1e6)
    }

    /// MACs per second (whole unit).
    pub fn macs_per_second(&self) -> f64 {
        1.0 / self.seconds_per_mac()
    }

    /// MACs per second per core — the paper's comparison metric.
    pub fn macs_per_second_per_core(&self) -> f64 {
        self.macs_per_second() / self.cores() as f64
    }

    /// §4.3: cycles to multiply an `M×N` matrix by an `N×P` matrix:
    /// `3·M·N·P·b`.
    pub fn matmul_cycles(&self, m: usize, n: usize, p: usize) -> u64 {
        3 * (m as u64) * (n as u64) * (p as u64) * self.bit_width as u64
    }

    /// Seconds for an `M×N × N×P` product on one MAC unit.
    pub fn matmul_seconds(&self, m: usize, n: usize, p: usize) -> f64 {
        self.matmul_cycles(m, n, p) as f64 / (self.freq_mhz * 1e6)
    }

    /// Seconds for `count` MACs spread over `units` parallel MAC units.
    pub fn macs_seconds(&self, count: u64, units: usize) -> f64 {
        (count as f64 / units as f64) * self.seconds_per_mac()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_counts_match_table2() {
        assert_eq!(TimingModel::paper(8).cores(), 8);
        assert_eq!(TimingModel::paper(16).cores(), 14);
        assert_eq!(TimingModel::paper(32).cores(), 24);
    }

    #[test]
    fn cycles_match_table2() {
        assert_eq!(TimingModel::paper(8).cycles_per_mac(), 24);
        assert_eq!(TimingModel::paper(16).cycles_per_mac(), 48);
        assert_eq!(TimingModel::paper(32).cycles_per_mac(), 96);
    }

    #[test]
    fn times_match_table2() {
        // Table 2: 0.12 / 0.24 / 0.48 µs per MAC.
        for (b, us) in [(8, 0.12), (16, 0.24), (32, 0.48)] {
            let t = TimingModel::paper(b);
            assert!((t.seconds_per_mac() * 1e6 - us).abs() < 1e-9, "b = {b}");
        }
    }

    #[test]
    fn throughputs_match_table2() {
        // Table 2: 8.33e6 / 4.17e6 / 2.08e6 MAC/s.
        for (b, tp) in [(8, 8.33e6), (16, 4.17e6), (32, 2.08e6)] {
            let t = TimingModel::paper(b);
            assert!((t.macs_per_second() - tp).abs() / tp < 3e-3, "b = {b}");
        }
    }

    #[test]
    fn per_core_throughputs_match_table2() {
        // Table 2: 1.04e6 / 2.98e5 / 8.68e4 MAC/s/core.
        for (b, tp) in [(8, 1.04e6), (16, 2.98e5), (32, 8.68e4)] {
            let t = TimingModel::paper(b);
            assert!(
                (t.macs_per_second_per_core() - tp).abs() / tp < 5e-3,
                "b = {b}: {}",
                t.macs_per_second_per_core()
            );
        }
    }

    #[test]
    fn latency_formula() {
        // b + log2(b) + 2 stages.
        assert_eq!(TimingModel::paper(8).latency_stages(), 13);
        assert_eq!(TimingModel::paper(16).latency_stages(), 22);
        assert_eq!(TimingModel::paper(32).latency_stages(), 39);
        assert_eq!(TimingModel::paper(8).latency_cycles(), 39);
    }

    #[test]
    fn matmul_formula() {
        let t = TimingModel::paper(8);
        assert_eq!(t.matmul_cycles(2, 3, 4), 3 * 2 * 3 * 4 * 8);
        assert!((t.matmul_seconds(1, 1, 1) - t.seconds_per_mac()).abs() < 1e-15);
    }

    #[test]
    fn segment_split_sums_to_total() {
        for b in [4usize, 8, 16, 32, 64] {
            let t = TimingModel::paper(b);
            assert_eq!(t.segment1_cores() + t.segment2_cores(), t.cores());
        }
    }

    #[test]
    fn max_two_idle_cores_by_construction() {
        // §4.3: "the maximum number of idle cores is 2". In the paper's
        // datapath the per-stage work is 2·(b/2) ANDs + (b/2) adder ANDs in
        // segment 1 plus b/2 + 8 ANDs (tree + accumulator + sign) in
        // segment 2, against 3·cores slots; the slack is at most 2 slots.
        for b in [8usize, 16, 32, 64] {
            let t = TimingModel::paper(b);
            let work = 3 * (b / 2) + (b / 2 + 8);
            let slots = 3 * t.cores();
            let idle = slots - work;
            assert!(idle <= 2, "b = {b}: idle = {idle}");
        }
    }
}
