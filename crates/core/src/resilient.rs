//! Self-healing client: retries, backoff, reconnect, resume.
//!
//! [`ResilientClient`] wraps [`RemoteClient`] with the recovery policy a
//! real deployment needs against a lossy network and a busy server:
//!
//! * `Busy{retry_after_ms}` → sleep the hinted backoff (plus jitter) and
//!   retry on the *same* session — the server explicitly kept it open.
//! * Transport failures / disconnects / corrupted frames → tear the
//!   connection down, dial a fresh one via the connect factory, and either
//!   RESUME the in-flight job from the last completed element (when one
//!   exists) or re-handshake a fresh session.
//! * `REJECT(resume)` — the server lost its checkpoint — → restart the job
//!   from scratch on a fresh session rather than failing the caller.
//! * `REJECT(overload)` — the load-shedding breaker is open — → backoff
//!   and retry like Busy.
//! * Integrity failures (v6) → detect-and-heal under a separate bounded
//!   `integrity_retries` budget: a per-frame CRC failure
//!   (`TransportError::Checksum`) keeps the session state and heals via
//!   reconnect + RESUME from the last verified element boundary; a
//!   transcript-digest divergence ([`AcceleratorError::Integrity`] or
//!   `REJECT(integrity)`) invalidates the job's checkpoints and restarts it
//!   from scratch on a fresh session. Both are counted in
//!   [`ResilienceStats`] (`integrity_detected` / `integrity_healed`), so a
//!   corrupt link shows up in telemetry instead of in wrong plaintexts.
//!
//! Backoff is exponential with decorrelated jitter (`sleep = base +
//! rand(0, prev*3 - base)`, capped), seeded deterministically so chaos
//! tests replay. Every operation carries a bounded attempt budget; when it
//! runs out the caller gets [`AcceleratorError::RetriesExhausted`] wrapping
//! the terminal failure. All recovery events are counted in
//! [`ResilienceStats`] and mirrored to `max-telemetry` counters.
//!
//! **Tracing.** Every `ResilientClient` mints one [`TraceContext`] at
//! construction and puts it on the wire with *every* dial — so the first
//! connect, each post-failure redial, and the RESUME all belong to one
//! trace the server can echo back. Attach a [`Recorder`] via
//! [`ResilientClient::with_recorder`] to capture the client-side spans
//! (`client/connect`, `client/redial`, `client/backoff`, `client/resume`,
//! `client/job`); override the context via
//! [`ResilientClient::with_trace`] when a chaos test needs deterministic
//! wire bytes.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::Arc;
use std::time::{Duration, Instant};

use max_gc::channel::TransportError;
use max_gc::Transport;
use max_telemetry::{Recorder, TraceContext};

use crate::error::AcceleratorError;
use crate::remote::{
    reject_reason, JobProgress, ModelHandle, RemoteClient, SessionState, REJECT_INTEGRITY,
    REJECT_OVERLOAD, REJECT_RESUME,
};
use crate::server::MatvecTranscript;

/// Knobs of the retry/backoff loop.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempt budget per operation (initial try plus retries).
    pub max_attempts: u32,
    /// Floor of the decorrelated-jitter backoff, in milliseconds.
    pub base_backoff_ms: u64,
    /// Cap of the backoff, in milliseconds.
    pub max_backoff_ms: u64,
    /// Per-protocol-step deadline pushed into the transport's idle timeout
    /// (ignored by transports that cannot time out, e.g. the in-memory
    /// duplex).
    pub step_timeout: Option<Duration>,
    /// Seed of the jitter PRNG — fix it to make a chaos run replayable.
    pub jitter_seed: u64,
    /// Separate budget for integrity failures (CRC or transcript-digest
    /// mismatches, v6) within one operation. A corrupt link heals by
    /// retrying; a *persistently* corrupting link should fail loudly
    /// instead of looping — once more than this many integrity faults hit
    /// one operation, it fails with
    /// [`AcceleratorError::RetriesExhausted`].
    pub integrity_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 5,
            max_backoff_ms: 1_000,
            step_timeout: None,
            jitter_seed: 0x5eed,
            integrity_retries: 4,
        }
    }
}

/// Recovery accounting of one [`ResilientClient`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Operation attempts, including first tries.
    pub attempts: u64,
    /// Fresh sessions dialed (initial connect and post-failure redials).
    pub reconnects: u64,
    /// Jobs re-entered mid-flight via RESUME.
    pub resumes: u64,
    /// Backoffs taken on `Busy` or an open breaker.
    pub busy_backoffs: u64,
    /// Jobs restarted from scratch after the server lost its checkpoint.
    pub restarts: u64,
    /// Milliseconds slept across all backoffs.
    pub backoff_ms_total: u64,
    /// Integrity faults detected (frame CRC failures and transcript-digest
    /// divergences, v6) instead of reaching a plaintext.
    pub integrity_detected: u64,
    /// Operations that hit at least one integrity fault and still
    /// completed with a verified transcript.
    pub integrity_healed: u64,
    /// Wall-clock of each operation that needed at least one retry, ms.
    pub recovery_ms: Vec<u64>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`RemoteClient`] that survives disconnects, busy queues, and lost
/// checkpoints, reconnecting through a user-supplied transport factory.
pub struct ResilientClient<T, F>
where
    T: Transport,
    F: FnMut() -> Result<T, AcceleratorError>,
{
    connect: F,
    bit_width: usize,
    policy: RetryPolicy,
    client: Option<RemoteClient<T>>,
    saved_state: Option<SessionState>,
    model: Option<ModelHandle>,
    stats: ResilienceStats,
    jitter_state: u64,
    prev_backoff_ms: u64,
    trace: TraceContext,
    recorder: Option<Arc<Recorder>>,
}

impl<T, F> std::fmt::Debug for ResilientClient<T, F>
where
    T: Transport,
    F: FnMut() -> Result<T, AcceleratorError>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("connected", &self.client.is_some())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<T, F> ResilientClient<T, F>
where
    T: Transport,
    F: FnMut() -> Result<T, AcceleratorError>,
{
    /// Builds a resilient client. `connect` dials one fresh transport per
    /// call; nothing is dialed until the first operation needs it.
    pub fn new(connect: F, bit_width: usize, policy: RetryPolicy) -> Self {
        ResilientClient {
            connect,
            bit_width,
            jitter_state: policy.jitter_seed,
            prev_backoff_ms: policy.base_backoff_ms,
            policy,
            client: None,
            saved_state: None,
            model: None,
            stats: ResilienceStats::default(),
            trace: TraceContext::mint(),
            recorder: None,
        }
    }

    /// Replaces the minted [`TraceContext`] with an explicit one. Use
    /// [`TraceContext::none`] (or any fixed context) in tests that compare
    /// wire transcripts byte-for-byte across runs.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a [`Recorder`] that captures client-side trace spans
    /// (`client/connect`, `client/redial`, `client/backoff`,
    /// `client/resume`, `client/job`) under this client's trace id.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Targets every subsequent job at a prepared model (v5) instead of
    /// the session default: jobs are submitted via
    /// [`RemoteClient::start_model_job`] with this handle, including
    /// restart-from-scratch after a lost server checkpoint.
    #[must_use]
    pub fn with_model(mut self, model: ModelHandle) -> Self {
        self.model = Some(model);
        self
    }

    /// The trace context every dial of this client carries.
    pub fn trace(&self) -> TraceContext {
        self.trace
    }

    /// Recovery accounting so far.
    pub fn stats(&self) -> &ResilienceStats {
        &self.stats
    }

    /// The live session, if one is currently attached.
    pub fn session(&self) -> Option<&RemoteClient<T>> {
        self.client.as_ref()
    }

    /// Runs `y = W·x` with the full recovery policy.
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::RetriesExhausted`] when the attempt budget runs
    /// out; the original error immediately for non-recoverable rejections.
    ///
    /// # Panics
    ///
    /// Panics if `x` length differs from the server's column count (caller
    /// error, as in [`RemoteClient::secure_matvec`]).
    pub fn secure_matvec(
        &mut self,
        x: &[i64],
    ) -> Result<(Vec<i64>, MatvecTranscript), AcceleratorError> {
        let (mut columns, transcript) = self.secure_matmul(std::slice::from_ref(&x.to_vec()))?;
        let y = columns.pop().ok_or(AcceleratorError::Protocol {
            what: "job returned no columns",
        })?;
        Ok((y, transcript))
    }

    /// Runs `Y = W·X` with the full recovery policy: bounded retries,
    /// backoff on Busy/overload, reconnect + RESUME on connection loss,
    /// restart on a lost server checkpoint.
    ///
    /// # Errors
    ///
    /// See [`ResilientClient::secure_matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `x_columns` is empty or any column length differs from
    /// the server's column count once a session exists.
    pub fn secure_matmul(
        &mut self,
        x_columns: &[Vec<i64>],
    ) -> Result<(Vec<Vec<i64>>, MatvecTranscript), AcceleratorError> {
        let _span = max_telemetry::span("resilient.job");
        let rec = self.recorder.clone();
        let _job_span = rec.as_ref().map(|r| r.trace_span(self.trace, "client/job"));
        let started = Instant::now();
        let mut progress: Option<JobProgress> = None;
        let mut attempts = 0u32;
        let mut integrity_hits = 0u32;
        loop {
            attempts += 1;
            self.stats.attempts += 1;
            match self.try_once(x_columns, &mut progress) {
                Ok(result) => {
                    self.prev_backoff_ms = self.policy.base_backoff_ms;
                    if attempts > 1 {
                        self.stats
                            .recovery_ms
                            .push(started.elapsed().as_millis() as u64);
                    }
                    if integrity_hits > 0 {
                        self.stats.integrity_healed += 1;
                        max_telemetry::counter_add("resilient.integrity_healed", 1);
                    }
                    return Ok(result);
                }
                Err(err) => {
                    if Self::is_fatal(&err) {
                        return Err(err);
                    }
                    if Self::is_integrity(&err) {
                        integrity_hits += 1;
                        if integrity_hits > self.policy.integrity_retries {
                            max_telemetry::counter_add("resilient.integrity_gave_up", 1);
                            return Err(AcceleratorError::RetriesExhausted {
                                attempts,
                                last: Box::new(err),
                            });
                        }
                    }
                    if attempts >= self.policy.max_attempts {
                        max_telemetry::counter_add("resilient.gave_up", 1);
                        return Err(AcceleratorError::RetriesExhausted {
                            attempts,
                            last: Box::new(err),
                        });
                    }
                    self.recover(&err, &mut progress);
                }
            }
        }
    }

    /// Gracefully closes any live session (best effort) and returns its
    /// transport for inspection.
    pub fn goodbye(mut self) -> Option<T> {
        self.client.take().map(RemoteClient::goodbye)
    }

    /// One attempt: ensure a session (resuming if both client-side job
    /// progress and session state survive), then drive the job.
    fn try_once(
        &mut self,
        x_columns: &[Vec<i64>],
        progress_slot: &mut Option<JobProgress>,
    ) -> Result<(Vec<Vec<i64>>, MatvecTranscript), AcceleratorError> {
        if self.client.is_none() {
            let rec = self.recorder.clone();
            let redial = self.stats.reconnects + self.stats.resumes > 0;
            let _dial_span = rec.as_ref().map(|r| {
                r.trace_span(
                    self.trace,
                    if redial {
                        "client/redial"
                    } else {
                        "client/connect"
                    },
                )
            });
            let mut transport = (self.connect)()?;
            if self.policy.step_timeout.is_some() {
                transport.set_idle_timeout(self.policy.step_timeout);
            }
            match (self.saved_state.take(), progress_slot.as_mut()) {
                (Some(state), Some(progress)) => {
                    let _resume_span = rec
                        .as_ref()
                        .map(|r| r.trace_span(self.trace, "client/resume"));
                    let mut client = RemoteClient::reattach(transport, state);
                    match client.resume_job(progress) {
                        Ok(()) => {
                            self.stats.resumes += 1;
                            max_telemetry::counter_add("resilient.resumes", 1);
                            self.client = Some(client);
                        }
                        Err(err) => {
                            // Keep the session state: a transport error here
                            // just means "try resuming again"; a REJECT is
                            // handled by `recover`, which clears it.
                            let (_, state) = client.into_parts();
                            self.saved_state = Some(state);
                            return Err(err);
                        }
                    }
                }
                _ => {
                    *progress_slot = None;
                    self.client = Some(RemoteClient::connect_with_trace(
                        transport,
                        self.bit_width,
                        self.trace,
                    )?);
                    self.stats.reconnects += 1;
                    max_telemetry::counter_add("resilient.reconnects", 1);
                }
            }
        }
        let Some(client) = self.client.as_mut() else {
            return Err(AcceleratorError::Protocol {
                what: "resilient client lost its session",
            });
        };
        let mut progress = match progress_slot.take() {
            Some(progress) => progress,
            None => match self.model {
                Some(model) => client.start_model_job(model, x_columns)?,
                None => client.start_job(x_columns)?,
            },
        };
        match client.run_job(&mut progress) {
            Ok(()) => Ok(progress.into_result()),
            Err(err) => {
                // Progress (with its element-boundary checkpoints) survives
                // for the resume attempt.
                *progress_slot = Some(progress);
                Err(err)
            }
        }
    }

    /// Applies the per-error recovery action between attempts.
    fn recover(&mut self, err: &AcceleratorError, progress: &mut Option<JobProgress>) {
        match err {
            AcceleratorError::Busy { retry_after_ms } => {
                // The server kept the session; honor its hint plus jitter —
                // but clamped to the policy's backoff cap. The hint is peer
                // data: a hostile or buggy server can send u32::MAX (~49
                // days) and would otherwise wedge this thread.
                let cap = self.policy.max_backoff_ms.max(1);
                let hint = u64::from(*retry_after_ms).clamp(1, cap);
                let jitter = splitmix(&mut self.jitter_state) % (hint / 2 + 1);
                self.sleep_ms((hint + jitter).min(cap));
                self.stats.busy_backoffs += 1;
                max_telemetry::counter_add("resilient.busy_backoffs", 1);
            }
            AcceleratorError::Rejected { reason } if *reason == reject_reason(REJECT_OVERLOAD) => {
                // Breaker open: the connection was refused, nothing to keep.
                self.drop_session();
                self.saved_state = None;
                let backoff = self.next_backoff_ms();
                self.sleep_ms(backoff);
                self.stats.busy_backoffs += 1;
                max_telemetry::counter_add("resilient.busy_backoffs", 1);
            }
            AcceleratorError::Rejected { reason } if *reason == reject_reason(REJECT_RESUME) => {
                // Server lost the checkpoint: restart the job from scratch
                // on a fresh session.
                self.drop_session();
                self.saved_state = None;
                *progress = None;
                self.stats.restarts += 1;
                max_telemetry::counter_add("resilient.restarts", 1);
            }
            AcceleratorError::Integrity { .. } => {
                // Transcript digests diverged: every checkpoint past the
                // last verified boundary is suspect, so heal by restarting
                // the job from scratch on a fresh session.
                self.stats.integrity_detected += 1;
                max_telemetry::counter_add("resilient.integrity_detected", 1);
                self.drop_session();
                self.saved_state = None;
                *progress = None;
                self.stats.restarts += 1;
                max_telemetry::counter_add("resilient.restarts", 1);
            }
            AcceleratorError::Rejected { reason } if *reason == reject_reason(REJECT_INTEGRITY) => {
                // The server's view of an integrity divergence (delivered
                // as a REJECT, e.g. on a RESUME attempt): same healing as a
                // locally detected digest mismatch.
                self.stats.integrity_detected += 1;
                max_telemetry::counter_add("resilient.integrity_detected", 1);
                self.drop_session();
                self.saved_state = None;
                *progress = None;
                self.stats.restarts += 1;
                max_telemetry::counter_add("resilient.restarts", 1);
            }
            AcceleratorError::Transport(TransportError::Checksum { .. }) => {
                // A single frame died at the CRC — the transcript digests
                // still agree at the last element boundary, so keep the
                // session state and heal via reconnect + RESUME, exactly
                // like a disconnect.
                self.stats.integrity_detected += 1;
                max_telemetry::counter_add("resilient.integrity_detected", 1);
                if let Some(client) = self.client.take() {
                    let (_, state) = client.into_parts();
                    self.saved_state = Some(state);
                }
                let backoff = self.next_backoff_ms();
                self.sleep_ms(backoff);
            }
            _ => {
                // Connection-level failure: keep the portable session state
                // for a RESUME, drop the dead transport, back off, redial.
                if let Some(client) = self.client.take() {
                    let (_, state) = client.into_parts();
                    self.saved_state = Some(state);
                }
                let backoff = self.next_backoff_ms();
                self.sleep_ms(backoff);
            }
        }
    }

    fn drop_session(&mut self) {
        self.client = None;
    }

    /// Exponential backoff with decorrelated jitter, deterministic under a
    /// fixed `jitter_seed`.
    fn next_backoff_ms(&mut self) -> u64 {
        let base = self.policy.base_backoff_ms.max(1);
        let cap = self.policy.max_backoff_ms.max(base);
        let upper = self.prev_backoff_ms.max(base).saturating_mul(3);
        let span = upper.saturating_sub(base).max(1);
        let ms = (base + splitmix(&mut self.jitter_state) % span).min(cap);
        self.prev_backoff_ms = ms;
        ms
    }

    fn sleep_ms(&mut self, ms: u64) {
        self.stats.backoff_ms_total += ms;
        max_telemetry::counter_add("resilient.backoff_ms", ms);
        let rec = self.recorder.clone();
        let _span = rec
            .as_ref()
            .map(|r| r.trace_span(self.trace, "client/backoff"));
        std::thread::sleep(Duration::from_millis(ms));
    }

    /// Errors no amount of retrying can fix.
    fn is_fatal(err: &AcceleratorError) -> bool {
        match err {
            AcceleratorError::Rejected { reason } => {
                *reason != reject_reason(REJECT_RESUME)
                    && *reason != reject_reason(REJECT_OVERLOAD)
                    && *reason != reject_reason(REJECT_INTEGRITY)
            }
            AcceleratorError::RetriesExhausted { .. } => true,
            _ => false,
        }
    }

    /// Detected-corruption errors, budgeted by
    /// [`RetryPolicy::integrity_retries`].
    fn is_integrity(err: &AcceleratorError) -> bool {
        match err {
            AcceleratorError::Integrity { .. }
            | AcceleratorError::Transport(TransportError::Checksum { .. }) => true,
            AcceleratorError::Rejected { reason } => *reason == reject_reason(REJECT_INTEGRITY),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::remote::{
        derive_seed, garble_matvec_job, recv_control, send_control, stream_matvec_job, ControlMsg,
        PROTOCOL_VERSION,
    };
    use max_gc::channel::Duplex;
    use max_ot::iknp;

    /// Single-session test server that answers the first `busy_first` job
    /// requests with BUSY before serving.
    fn serve_with_busy(
        mut transport: Duplex,
        config: AcceleratorConfig,
        weights: Vec<Vec<i64>>,
        base_seed: u64,
        mut busy_first: u32,
        busy_hint_ms: u32,
    ) -> Result<(), AcceleratorError> {
        let (version, _width, trace) = match recv_control(&mut transport)? {
            ControlMsg::Hello {
                version,
                bit_width,
                trace,
            } => (version, bit_width, trace),
            _ => {
                return Err(AcceleratorError::Protocol {
                    what: "expected HELLO",
                })
            }
        };
        assert_eq!(version, PROTOCOL_VERSION);
        let session_seed = derive_seed(base_seed, 0);
        let ot_seed = derive_seed(session_seed, 0x07);
        send_control(
            &mut transport,
            &ControlMsg::Accept {
                session_id: 0,
                ot_seed,
                resume_token: derive_seed(session_seed, 0x7e57),
                rows: weights.len() as u32,
                cols: weights[0].len() as u32,
                bit_width: config.bit_width as u32,
                acc_width: config.acc_width as u32,
                signed: config.signed,
                freq_mhz_bits: config.freq_mhz.to_bits(),
            },
        )?;
        let (mut ot_sender, _receiver) = iknp::setup_pair(ot_seed);
        let mut job_id = 0u64;
        loop {
            match recv_control(&mut transport) {
                Ok(ControlMsg::JobRequest { columns, .. }) => {
                    if busy_first > 0 {
                        busy_first -= 1;
                        send_control(
                            &mut transport,
                            &ControlMsg::Busy {
                                retry_after_ms: busy_hint_ms,
                                queue_depth: 1,
                            },
                        )?;
                        continue;
                    }
                    let job = garble_matvec_job(
                        &config,
                        &weights,
                        derive_seed(session_seed, 0x100 + job_id),
                        columns,
                    )?;
                    stream_matvec_job(&mut transport, &job, &mut ot_sender, job_id, trace)?;
                    job_id += 1;
                }
                Ok(ControlMsg::Bye) | Err(AcceleratorError::Disconnected) => return Ok(()),
                Ok(_) => {
                    return Err(AcceleratorError::Protocol {
                        what: "expected JOB or BYE",
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    #[test]
    fn busy_hints_are_honored_with_backoff() {
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![2i64, -3], vec![4, 5]];
        let (server_end, client_end) = Duplex::pair();
        let server = {
            let config = config.clone();
            let w = w.clone();
            std::thread::spawn(move || serve_with_busy(server_end, config, w, 11, 2, 1))
        };
        let mut ends = vec![client_end];
        let mut client = ResilientClient::new(
            move || {
                ends.pop().ok_or(AcceleratorError::Protocol {
                    what: "no more transports",
                })
            },
            8,
            RetryPolicy::default(),
        );
        let (y, _) = client.secure_matvec(&[7, -1]).unwrap();
        assert_eq!(y, vec![2 * 7 + 3, 4 * 7 - 5]);
        let stats = client.stats().clone();
        assert_eq!(stats.busy_backoffs, 2);
        assert_eq!(stats.reconnects, 1);
        assert_eq!(stats.attempts, 3);
        assert!(stats.backoff_ms_total >= 2);
        assert_eq!(stats.recovery_ms.len(), 1);
        client.goodbye();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn hostile_busy_hint_is_clamped_to_the_backoff_cap() {
        // A malicious or buggy server can send retry_after_ms = u32::MAX
        // (~49 days). Before the clamp this wedged the client thread; now
        // the honored hint is capped by the policy's max_backoff_ms and the
        // job still completes promptly.
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![2i64, -3], vec![4, 5]];
        let (server_end, client_end) = Duplex::pair();
        let server = {
            let config = config.clone();
            let w = w.clone();
            std::thread::spawn(move || serve_with_busy(server_end, config, w, 11, 2, u32::MAX))
        };
        let policy = RetryPolicy {
            base_backoff_ms: 1,
            max_backoff_ms: 20,
            ..RetryPolicy::default()
        };
        let mut ends = vec![client_end];
        let mut client = ResilientClient::new(
            move || {
                ends.pop().ok_or(AcceleratorError::Protocol {
                    what: "no more transports",
                })
            },
            8,
            policy,
        );
        let (y, _) = client.secure_matvec(&[7, -1]).unwrap();
        assert_eq!(y, vec![2 * 7 + 3, 4 * 7 - 5]);
        let stats = client.stats().clone();
        assert_eq!(stats.busy_backoffs, 2);
        // Two busy backoffs, each capped at max_backoff_ms — not 49 days.
        assert!(
            stats.backoff_ms_total <= 2 * 20,
            "backoff {} ms exceeds the clamp",
            stats.backoff_ms_total
        );
        client.goodbye();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn connect_failures_exhaust_the_budget_with_a_typed_error() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            ..RetryPolicy::default()
        };
        let mut client: ResilientClient<Duplex, _> =
            ResilientClient::new(|| Err(AcceleratorError::Disconnected), 8, policy);
        let err = client.secure_matvec(&[1]).unwrap_err();
        match err {
            AcceleratorError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert_eq!(*last, AcceleratorError::Disconnected);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(client.stats().attempts, 3);
    }

    #[test]
    fn fatal_rejections_surface_unwrapped_after_one_attempt() {
        let mut calls = 0u32;
        let err = {
            let mut client: ResilientClient<Duplex, _> = ResilientClient::new(
                || {
                    calls += 1;
                    Err(AcceleratorError::Rejected {
                        reason: "unsupported bit width",
                    })
                },
                8,
                RetryPolicy::default(),
            );
            client.secure_matvec(&[1]).unwrap_err()
        };
        assert_eq!(
            err,
            AcceleratorError::Rejected {
                reason: "unsupported bit width"
            }
        );
        assert_eq!(calls, 1);
    }

    #[test]
    fn recorder_captures_client_spans_under_the_fixed_trace() {
        let config = AcceleratorConfig::new(8);
        let w = vec![vec![2i64, -3], vec![4, 5]];
        let (server_end, client_end) = Duplex::pair();
        let server = {
            let config = config.clone();
            let w = w.clone();
            std::thread::spawn(move || serve_with_busy(server_end, config, w, 11, 1, 1))
        };
        let recorder = std::sync::Arc::new(max_telemetry::Recorder::new());
        let ctx = max_telemetry::TraceContext::from_ids(0xfeed_beef, 0x1dea);
        let mut ends = vec![client_end];
        let mut client = ResilientClient::new(
            move || {
                ends.pop().ok_or(AcceleratorError::Protocol {
                    what: "no more transports",
                })
            },
            8,
            RetryPolicy::default(),
        )
        .with_trace(ctx)
        .with_recorder(recorder.clone());
        assert_eq!(client.trace(), ctx);
        let (y, _) = client.secure_matvec(&[7, -1]).unwrap();
        assert_eq!(y, vec![2 * 7 + 3, 4 * 7 - 5]);
        client.goodbye();
        server.join().unwrap().unwrap();

        let snap = recorder.snapshot();
        let events = snap.trace_events(ctx.trace_id);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"client/connect"), "names: {names:?}");
        assert!(names.contains(&"client/backoff"), "names: {names:?}");
        assert!(names.contains(&"client/job"), "names: {names:?}");
        assert!(!names.contains(&"client/redial"), "no redial happened");
        assert!(events.iter().all(|e| e.span_id == ctx.span_id));
    }

    fn never_connect() -> Result<Duplex, AcceleratorError> {
        Err(AcceleratorError::Disconnected)
    }

    #[test]
    fn backoff_is_deterministic_for_a_fixed_seed() {
        let policy = RetryPolicy {
            jitter_seed: 99,
            base_backoff_ms: 2,
            max_backoff_ms: 50,
            ..RetryPolicy::default()
        };
        type Factory = fn() -> Result<Duplex, AcceleratorError>;
        let drain = |mut c: ResilientClient<Duplex, Factory>| {
            (0..6).map(|_| c.next_backoff_ms()).collect::<Vec<_>>()
        };
        let a = drain(ResilientClient::new(never_connect as Factory, 8, policy));
        let b = drain(ResilientClient::new(never_connect as Factory, 8, policy));
        assert_eq!(a, b);
        assert!(a.iter().all(|&ms| (2..=50).contains(&ms)));
        // Not constant: the jitter actually spreads the schedule.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
