//! Accelerator configuration.

use max_netlist::{encode_signed, MacCircuit, MultiplierKind, Sign};
use serde::{Deserialize, Serialize};

/// Configuration of one MAXelerator MAC unit.
///
/// The paper's implementation points: 200 MHz fabric clock, bit-widths
/// 8/16/32, signed fixed-point operands, tree multiplier.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Operand bit-width `b` (must be even, ≥ 4: the MUX_ADD segment pairs
    /// bits).
    pub bit_width: usize,
    /// Accumulator width (defaults to `min(2b + 8, 64)`: wide enough for
    /// vectors of length 256 without overflow at b ≤ 28, and the decode
    /// limit of the `i64` client API at b = 32).
    pub acc_width: usize,
    /// Fabric clock in MHz (§5.3: 200 MHz on the Virtex UltraSCALE).
    pub freq_mhz: f64,
    /// Signedness of the MAC operands.
    pub signed: bool,
}

impl AcceleratorConfig {
    /// The paper's configuration for bit-width `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is odd or `< 4`.
    pub fn new(bit_width: usize) -> Self {
        assert!(
            bit_width >= 4 && bit_width.is_multiple_of(2),
            "bit width must be even and at least 4"
        );
        AcceleratorConfig {
            bit_width,
            acc_width: (2 * bit_width + 8).min(64),
            freq_mhz: 200.0,
            signed: true,
        }
    }

    /// Overrides the accumulator width.
    ///
    /// # Panics
    ///
    /// Panics if narrower than a full product.
    #[must_use]
    pub fn with_acc_width(mut self, acc_width: usize) -> Self {
        assert!(
            acc_width >= 2 * self.bit_width,
            "accumulator must hold a full product"
        );
        self.acc_width = acc_width;
        self
    }

    /// Overrides the clock frequency.
    #[must_use]
    pub fn with_freq_mhz(mut self, freq_mhz: f64) -> Self {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        self.freq_mhz = freq_mhz;
        self
    }

    /// Selects unsigned operands.
    #[must_use]
    pub fn unsigned(mut self) -> Self {
        self.signed = false;
        self
    }

    /// Builds the MAC circuit this configuration garbles (tree multiplier,
    /// per §4).
    pub fn mac_circuit(&self) -> MacCircuit {
        MacCircuit::build(
            self.bit_width,
            self.acc_width,
            if self.signed {
                Sign::Signed
            } else {
                Sign::Unsigned
            },
            MultiplierKind::Tree,
        )
    }

    /// Encodes a client vector element as evaluator input bits.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not fit in the configured width.
    pub fn encode_x(&self, x: i64) -> Vec<bool> {
        if self.signed {
            encode_signed(x, self.bit_width)
        } else {
            max_netlist::encode_unsigned(x as u64, self.bit_width)
        }
    }

    /// The positional range of the accumulator within the garbler inputs.
    pub fn state_range(&self) -> std::ops::Range<usize> {
        self.bit_width..self.bit_width + self.acc_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AcceleratorConfig::new(32);
        assert_eq!(c.bit_width, 32);
        assert_eq!(c.acc_width, 64);
        assert_eq!(AcceleratorConfig::new(16).acc_width, 40);
        assert!((c.freq_mhz - 200.0).abs() < f64::EPSILON);
        assert!(c.signed);
    }

    #[test]
    fn builders_apply() {
        let c = AcceleratorConfig::new(8)
            .with_acc_width(16)
            .with_freq_mhz(150.0)
            .unsigned();
        assert_eq!(c.acc_width, 16);
        assert!(!c.signed);
    }

    #[test]
    fn mac_circuit_is_consistent() {
        let c = AcceleratorConfig::new(8);
        let mac = c.mac_circuit();
        assert_eq!(mac.ports().bit_width, 8);
        assert_eq!(mac.ports().acc_width, 24);
        assert_eq!(c.state_range(), 8..32);
    }

    #[test]
    #[should_panic(expected = "even and at least 4")]
    fn odd_width_rejected() {
        AcceleratorConfig::new(7);
    }
}
