//! Device-level scaling (§6): "the throughput can be increased linearly by
//! adding more GC cores to the FPGA. For example, 25 times more GC cores
//! can fit in our current implementation platform."
//!
//! This module packs whole MAC units into a device budget using the Table-1
//! resource model and reports the aggregate throughput — the "57× more
//! clients" capacity story.

use max_fpga::{ResourceUsage, XCVU095};
use serde::{Deserialize, Serialize};

use crate::resources::mac_unit_resources;
use crate::timing::TimingModel;

/// How a device fills up with MAC units at one bit-width.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceScaling {
    /// Operand bit-width.
    pub bit_width: usize,
    /// Whole MAC units that fit.
    pub units: usize,
    /// GC cores across all units.
    pub total_cores: usize,
    /// Aggregate MACs per second.
    pub aggregate_macs_per_second: f64,
    /// The binding resource ("lut", "lutram", "ff", or "bram").
    pub bound_by: &'static str,
    /// Fraction of the binding resource consumed.
    pub occupancy: f64,
}

/// Packs MAC units of width `bit_width` into `device`.
///
/// A fraction of the fabric (routing margin, PCIe bridge, host shell) is
/// reserved: only `usable` of each resource is available — the standard
/// ~80 % rule of thumb for timing closure at 200 MHz.
///
/// # Panics
///
/// Panics if `usable` is not in `(0, 1]`.
pub fn pack_device(bit_width: usize, device: &ResourceUsage, usable: f64) -> DeviceScaling {
    assert!(
        usable > 0.0 && usable <= 1.0,
        "usable fraction out of range"
    );
    let unit = mac_unit_resources(bit_width);
    let budget = ResourceUsage::new(
        (device.lut as f64 * usable) as u64,
        (device.lutram as f64 * usable) as u64,
        (device.ff as f64 * usable) as u64,
        (device.bram as f64 * usable) as u64,
    );
    let units = unit.copies_within(&budget) as usize;
    let per_resource = [
        ("lut", unit.lut, budget.lut),
        ("lutram", unit.lutram, budget.lutram),
        ("ff", unit.ff, budget.ff),
    ];
    let (bound_by, used, avail) = per_resource
        .into_iter()
        .filter(|&(_, u, _)| u > 0)
        .min_by_key(|&(_, u, a)| a.checked_div(u).unwrap_or(u64::MAX))
        .expect("at least one resource used");
    let timing = TimingModel::paper(bit_width);
    DeviceScaling {
        bit_width,
        units,
        total_cores: units * timing.cores(),
        aggregate_macs_per_second: units as f64 * timing.macs_per_second(),
        bound_by,
        occupancy: (units as u64 * used) as f64 / avail as f64,
    }
}

/// The paper's platform at the default usable fraction.
pub fn xcvu095_scaling(bit_width: usize) -> DeviceScaling {
    pack_device(bit_width, &XCVU095, 0.8)
}

impl DeviceScaling {
    /// Clients this device can serve simultaneously, given each client
    /// session demands `macs_per_second_per_client`.
    ///
    /// §1: the per-core speedup "translates to the capability of the cloud
    /// to support 57× more clients simultaneously" — the same garbling
    /// silicon serves proportionally more sessions.
    ///
    /// # Panics
    ///
    /// Panics if the demand is not positive.
    pub fn clients_supported(&self, macs_per_second_per_client: f64) -> u64 {
        assert!(macs_per_second_per_client > 0.0, "demand must be positive");
        (self.aggregate_macs_per_second / macs_per_second_per_client) as u64
    }
}

/// The §1 claim, computed: clients served per core by MAXelerator vs the
/// software framework at bit-width `b`.
pub fn client_capacity_ratio(bit_width: usize) -> f64 {
    let max = TimingModel::paper(bit_width).macs_per_second_per_core();
    let tg = max_baseline_macs_per_second(bit_width);
    max / tg
}

/// TinyGarble's published per-core MAC rate (Table 2), reproduced here to
/// avoid a dependency cycle with `max-baselines`.
fn max_baseline_macs_per_second(bit_width: usize) -> f64 {
    let cycles = match bit_width {
        8 => 1.44e5,
        16 => 5.45e5,
        32 => 2.24e6,
        b => 2185.0 * (b * b) as f64,
    };
    3.405e9 / cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_units_fit_the_paper_platform() {
        for (b, min_units) in [(8usize, 20), (16, 10), (32, 5)] {
            let s = xcvu095_scaling(b);
            assert!(s.units >= min_units, "b={b}: only {} units", s.units);
            assert_eq!(s.total_cores, s.units * TimingModel::paper(b).cores());
        }
    }

    #[test]
    fn scaling_is_linear_in_units() {
        let s = xcvu095_scaling(32);
        let single = TimingModel::paper(32).macs_per_second();
        assert!((s.aggregate_macs_per_second - s.units as f64 * single).abs() < 1e-6);
    }

    #[test]
    fn papers_25x_claim_is_order_of_magnitude_consistent() {
        // §6 claims 25× more cores can fit; whole-unit packing (which
        // duplicates label generators and FSMs) reaches a large fraction of
        // that. Assert the claim's order of magnitude.
        let s = pack_device(32, &XCVU095, 1.0);
        let extra_core_factor = s.total_cores as f64 / TimingModel::paper(32).cores() as f64;
        assert!(
            (5.0..40.0).contains(&extra_core_factor),
            "core multiplier {extra_core_factor}"
        );
    }

    #[test]
    fn binding_resource_is_reported() {
        let s = xcvu095_scaling(32);
        assert!(["lut", "lutram", "ff"].contains(&s.bound_by));
        assert!(s.occupancy > 0.5 && s.occupancy <= 1.0, "{}", s.occupancy);
    }

    #[test]
    fn client_capacity_matches_table2_ratios() {
        // 44x / 48x / 57x more clients per core.
        for (b, want) in [(8usize, 44.0), (16, 48.0), (32, 57.0)] {
            let got = client_capacity_ratio(b);
            assert!((got - want).abs() / want < 0.02, "b={b}: {got}");
        }
    }

    #[test]
    fn clients_supported_scales_with_demand() {
        let s = xcvu095_scaling(32);
        let light = s.clients_supported(1_000.0);
        let heavy = s.clients_supported(100_000.0);
        assert!(light > heavy * 50);
        assert!(heavy >= 1);
    }

    #[test]
    #[should_panic(expected = "usable fraction")]
    fn bad_usable_rejected() {
        pack_device(8, &XCVU095, 0.0);
    }
}
