//! Typed protocol errors.
//!
//! Everything a peer can influence — round messages, label vectors,
//! requested round ids, streamed frames — reports malformed input through
//! [`AcceleratorError`] instead of panicking, so a hostile or buggy client
//! cannot abort the server process.

/// Protocol-path failure of the accelerator server or scheduled evaluator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AcceleratorError {
    /// A netlist wire had neither an assigned label nor a producing gate.
    UnresolvedWire {
        /// The wire index.
        wire: usize,
    },
    /// An AND-gate output was needed before its table was garbled — the
    /// compiled schedule violated its own dependency order.
    ScheduleViolation {
        /// The wire index resolved too early.
        wire: usize,
    },
    /// OT pairs were requested for a round the current element never
    /// garbled.
    UnknownRound {
        /// The requested round.
        round: u32,
    },
    /// A round message carried neither fresh initial-accumulator labels
    /// nor followed a round that left carried labels.
    MissingAccumulator {
        /// The offending round.
        round: u32,
    },
    /// Garbler-input label count does not match the netlist.
    ALabelCount {
        /// Labels required (`b` + constants).
        expected: usize,
        /// Labels supplied.
        got: usize,
    },
    /// Evaluator-input label count does not match the bit-width.
    XLabelCount {
        /// Labels required (`b`).
        expected: usize,
        /// Labels supplied.
        got: usize,
    },
    /// Initial-accumulator label count does not match the accumulator
    /// width.
    AccLabelCount {
        /// Labels required (accumulator width).
        expected: usize,
        /// Labels supplied.
        got: usize,
    },
    /// Garbled-table count does not match the netlist's AND gates.
    TableCount {
        /// Tables required (one per AND gate).
        expected: usize,
        /// Tables supplied.
        got: usize,
    },
    /// Decode-bit count does not match the output width.
    DecodeCount {
        /// Bits required (one per output wire).
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
    /// A streamed frame ended before its declared payload.
    FrameTruncated,
    /// A streamed frame carried an unknown header or impossible counts.
    FrameHeader,
    /// The streaming peer disconnected mid-protocol.
    Disconnected,
    /// The transport layer failed (oversized frame, timeout, socket error).
    Transport(max_gc::channel::TransportError),
    /// The peer sent a frame that does not fit the protocol state machine.
    Protocol {
        /// What was wrong or expected.
        what: &'static str,
    },
    /// The server's job queue is full; retry after the hinted backoff.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The server refused the session during the handshake.
    Rejected {
        /// Why (version mismatch, unsupported width, draining, ...).
        reason: &'static str,
    },
    /// The rolling transcript digests of the two sides diverged — some
    /// GC-critical byte was corrupted after framing (bit rot, a buggy
    /// middlebox, a stale cache entry). The job must be restarted; the
    /// session's OT state can no longer be trusted past the last verified
    /// boundary.
    Integrity {
        /// Which digest comparison failed.
        what: &'static str,
    },
    /// A resilient client exhausted its retry budget; `last` is the error
    /// that ended the final attempt.
    RetriesExhausted {
        /// Attempts made (initial try plus retries).
        attempts: u32,
        /// The terminal failure.
        last: Box<AcceleratorError>,
    },
}

impl std::fmt::Display for AcceleratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcceleratorError::UnresolvedWire { wire } => {
                write!(f, "wire {wire} has no producer and no label")
            }
            AcceleratorError::ScheduleViolation { wire } => {
                write!(
                    f,
                    "schedule violation: AND output {wire} resolved before garbling"
                )
            }
            AcceleratorError::UnknownRound { round } => {
                write!(f, "no OT pairs buffered for round {round}")
            }
            AcceleratorError::MissingAccumulator { round } => {
                write!(f, "round {round} lacks accumulator labels")
            }
            AcceleratorError::ALabelCount { expected, got } => {
                write!(f, "a-label count mismatch: expected {expected}, got {got}")
            }
            AcceleratorError::XLabelCount { expected, got } => {
                write!(f, "x-label count mismatch: expected {expected}, got {got}")
            }
            AcceleratorError::AccLabelCount { expected, got } => {
                write!(
                    f,
                    "accumulator label count mismatch: expected {expected}, got {got}"
                )
            }
            AcceleratorError::TableCount { expected, got } => {
                write!(f, "table count mismatch: expected {expected}, got {got}")
            }
            AcceleratorError::DecodeCount { expected, got } => {
                write!(
                    f,
                    "decode bit count mismatch: expected {expected}, got {got}"
                )
            }
            AcceleratorError::FrameTruncated => f.write_str("streamed frame truncated"),
            AcceleratorError::FrameHeader => f.write_str("streamed frame header malformed"),
            AcceleratorError::Disconnected => f.write_str("streaming peer disconnected"),
            AcceleratorError::Transport(err) => write!(f, "transport failure: {err}"),
            AcceleratorError::Protocol { what } => write!(f, "protocol violation: {what}"),
            AcceleratorError::Busy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms} ms")
            }
            AcceleratorError::Rejected { reason } => {
                write!(f, "session rejected: {reason}")
            }
            AcceleratorError::Integrity { what } => {
                write!(f, "transcript integrity violation: {what}")
            }
            AcceleratorError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts: {last}"
                )
            }
        }
    }
}

impl std::error::Error for AcceleratorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AcceleratorError::Transport(err) => Some(err),
            AcceleratorError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<max_gc::channel::TransportError> for AcceleratorError {
    fn from(err: max_gc::channel::TransportError) -> Self {
        match err {
            // Disconnection already has a first-class protocol meaning here;
            // keep it as one variant regardless of which transport saw it.
            max_gc::channel::TransportError::Disconnected => AcceleratorError::Disconnected,
            other => AcceleratorError::Transport(other),
        }
    }
}
