//! The Table-1 resource model.
//!
//! The paper publishes post-implementation LUT / LUTRAM / FF counts for one
//! MAC unit at b ∈ {8, 16, 32} on the Virtex UltraSCALE. Since we cannot run
//! Vivado, the model is **calibrated**: the published points are reproduced
//! exactly, intermediate bit-widths interpolate linearly (the paper: "the
//! underlying resource utilization of our design increases linearly with
//! b"), and the per-component breakdown distributes each total over the
//! microarchitectural pieces in proportions consistent with §5.

use max_fpga::ResourceUsage;
use serde::{Deserialize, Serialize};

use crate::timing::TimingModel;

/// Published Table-1 calibration points: `(b, LUT, LUTRAM, FF)`.
const CALIBRATION: [(usize, u64, u64, u64); 3] = [
    (8, 29_500, 128, 24_400),
    (16, 59_100, 384, 48_800),
    (32, 111_000, 640, 84_000),
];

/// Resource usage of one MAC unit at bit-width `b`.
///
/// Exact at the published points, linear interpolation/extrapolation
/// elsewhere.
///
/// # Panics
///
/// Panics if `b < 4` or `b` is odd.
pub fn mac_unit_resources(bit_width: usize) -> ResourceUsage {
    assert!(
        bit_width >= 4 && bit_width.is_multiple_of(2),
        "bit width must be even and at least 4"
    );
    for &(b, lut, lutram, ff) in &CALIBRATION {
        if b == bit_width {
            return ResourceUsage::new(lut, lutram, ff, 0);
        }
    }
    // Piecewise-linear in b over the calibration table.
    let interp = |x0: usize, y0: u64, x1: usize, y1: u64, x: usize| -> u64 {
        let slope = (y1 as f64 - y0 as f64) / (x1 as f64 - x0 as f64);
        (y0 as f64 + slope * (x as f64 - x0 as f64))
            .max(0.0)
            .round() as u64
    };
    let (lo, hi) = if bit_width < 16 {
        (CALIBRATION[0], CALIBRATION[1])
    } else {
        (CALIBRATION[1], CALIBRATION[2])
    };
    ResourceUsage::new(
        interp(lo.0, lo.1, hi.0, hi.1, bit_width),
        interp(lo.0, lo.2, hi.0, hi.2, bit_width),
        interp(lo.0, lo.3, hi.0, hi.3, bit_width),
        0,
    )
}

/// Per-component share of a MAC unit's resources.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComponentUsage {
    /// Component name.
    pub name: &'static str,
    /// Estimated usage.
    pub usage: ResourceUsage,
}

/// Distributes the unit total over the §5 microarchitecture:
/// GC engines (AES cores; the s-boxes account for the LUTRAM), label
/// routing/shift registers (FF-heavy), the scheduling FSM, and the label
/// generator's sampling/correction logic.
///
/// The shares are architectural estimates — the sum is exactly
/// [`mac_unit_resources`], which is the calibrated quantity.
pub fn resource_breakdown(bit_width: usize) -> Vec<ComponentUsage> {
    let total = mac_unit_resources(bit_width);
    let cores = TimingModel::paper(bit_width).cores() as u64;
    // Architectural shares: AES engines dominate LUT (~70%); shift-register
    // delay lines dominate FF (~55%); all LUTRAM is s-boxes; the FSM and
    // label generator split the remainder.
    let engines = ResourceUsage::new(total.lut * 70 / 100, total.lutram, total.ff * 30 / 100, 0);
    let shift_regs = ResourceUsage::new(total.lut * 5 / 100, 0, total.ff * 55 / 100, 0);
    let fsm = ResourceUsage::new(total.lut * 15 / 100, 0, total.ff * 10 / 100, 0);
    let label_gen = ResourceUsage::new(
        total.lut - engines.lut - shift_regs.lut - fsm.lut,
        0,
        total.ff - engines.ff - shift_regs.ff - fsm.ff,
        0,
    );
    let _ = cores;
    vec![
        ComponentUsage {
            name: "gc_engines",
            usage: engines,
        },
        ComponentUsage {
            name: "shift_registers",
            usage: shift_regs,
        },
        ComponentUsage {
            name: "scheduler_fsm",
            usage: fsm,
        },
        ComponentUsage {
            name: "label_generator",
            usage: label_gen,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_points_exact() {
        let r8 = mac_unit_resources(8);
        assert_eq!((r8.lut, r8.lutram, r8.ff), (29_500, 128, 24_400));
        let r16 = mac_unit_resources(16);
        assert_eq!((r16.lut, r16.lutram, r16.ff), (59_100, 384, 48_800));
        let r32 = mac_unit_resources(32);
        assert_eq!((r32.lut, r32.lutram, r32.ff), (111_000, 640, 84_000));
    }

    #[test]
    fn growth_is_monotone_in_b() {
        let mut prev = mac_unit_resources(4);
        for b in [6usize, 8, 10, 12, 16, 20, 24, 32, 40, 64] {
            let cur = mac_unit_resources(b);
            assert!(cur.lut >= prev.lut, "LUT not monotone at b={b}");
            assert!(cur.ff >= prev.ff, "FF not monotone at b={b}");
            prev = cur;
        }
    }

    #[test]
    fn interpolation_is_roughly_linear() {
        // b=12 should land halfway between the b=8 and b=16 points.
        let r12 = mac_unit_resources(12);
        assert_eq!(r12.lut, (29_500 + 59_100) / 2);
        assert_eq!(r12.ff, (24_400 + 48_800) / 2);
    }

    #[test]
    fn breakdown_sums_to_total() {
        for b in [8usize, 16, 32] {
            let total = mac_unit_resources(b);
            let sum: ResourceUsage = resource_breakdown(b).into_iter().map(|c| c.usage).sum();
            assert_eq!(sum, total, "b = {b}");
        }
    }

    #[test]
    fn engines_dominate_lut_and_own_all_lutram() {
        let parts = resource_breakdown(32);
        let engines = parts.iter().find(|c| c.name == "gc_engines").unwrap();
        assert!(engines.usage.lut * 2 > mac_unit_resources(32).lut);
        assert_eq!(engines.usage.lutram, 640);
    }

    #[test]
    fn unit_fits_the_vcu095() {
        for b in [8usize, 16, 32] {
            assert!(mac_unit_resources(b).fits_within(&max_fpga::XCVU095));
        }
    }

    #[test]
    #[should_panic(expected = "even and at least 4")]
    fn invalid_width_rejected() {
        mac_unit_resources(3);
    }
}
