//! Framed serialization of [`RoundMessage`] for the multi-unit streaming
//! pipeline: each accelerator unit encodes its rounds into self-contained
//! frames and ships them to the host CPU over `max_gc::channel::Duplex`,
//! where they are decoded — without panicking on malformed bytes — before
//! OT and relay to the client.
//!
//! Frame layout (all integers big-endian, matching the channel layer):
//!
//! ```text
//! u32 elem | u32 round | u8 flags | u32 n_tables | tables (32 B each)
//! | u32 n_a_labels | labels (16 B each)
//! | [u32 n_init | labels]   if flags & INIT
//! | [u32 n_decode | packed bits]   if flags & DECODE
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use max_crypto::Block;
use max_gc::GarbledTable;

use crate::accelerator::RoundMessage;
use crate::error::AcceleratorError;

const FLAG_INIT: u8 = 0b01;
const FLAG_DECODE: u8 = 0b10;

/// Encodes one round message into a self-contained frame.
pub fn encode_round_message(msg: &RoundMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(13 + msg.wire_bytes() + 8);
    buf.put_u32(msg.elem);
    buf.put_u32(msg.round);
    let mut flags = 0u8;
    if msg.init_acc_labels.is_some() {
        flags |= FLAG_INIT;
    }
    if msg.decode.is_some() {
        flags |= FLAG_DECODE;
    }
    buf.put_u8(flags);
    buf.put_u32(msg.tables.len() as u32);
    for table in &msg.tables {
        buf.put_slice(&table.to_bytes());
    }
    put_labels(&mut buf, &msg.a_labels);
    if let Some(init) = &msg.init_acc_labels {
        put_labels(&mut buf, init);
    }
    if let Some(decode) = &msg.decode {
        buf.put_u32(decode.len() as u32);
        let mut byte = 0u8;
        for (i, &bit) in decode.iter().enumerate() {
            byte |= (bit as u8) << (i % 8);
            if i % 8 == 7 {
                buf.put_u8(byte);
                byte = 0;
            }
        }
        if decode.len() % 8 != 0 {
            buf.put_u8(byte);
        }
    }
    buf.freeze()
}

fn put_labels(buf: &mut BytesMut, labels: &[Block]) {
    buf.put_u32(labels.len() as u32);
    for label in labels {
        buf.put_slice(&label.to_bytes());
    }
}

fn get_count(frame: &mut Bytes, item_bytes: usize) -> Result<usize, AcceleratorError> {
    if frame.remaining() < 4 {
        return Err(AcceleratorError::FrameTruncated);
    }
    let count = frame.get_u32() as usize;
    if frame.remaining() < count.saturating_mul(item_bytes) {
        return Err(AcceleratorError::FrameTruncated);
    }
    Ok(count)
}

fn get_labels(frame: &mut Bytes) -> Result<Vec<Block>, AcceleratorError> {
    let count = get_count(frame, 16)?;
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        let mut bytes = [0u8; 16];
        frame.copy_to_slice(&mut bytes);
        labels.push(Block::from_bytes(bytes));
    }
    Ok(labels)
}

/// Decodes a round-message frame.
///
/// # Errors
///
/// Returns [`AcceleratorError::FrameTruncated`] if the frame ends before
/// its declared payload and [`AcceleratorError::FrameHeader`] for unknown
/// flags or trailing garbage — never panics on hostile bytes.
pub fn decode_round_message(mut frame: Bytes) -> Result<RoundMessage, AcceleratorError> {
    if frame.remaining() < 9 {
        return Err(AcceleratorError::FrameTruncated);
    }
    let elem = frame.get_u32();
    let round = frame.get_u32();
    let flags = frame.get_u8();
    if flags & !(FLAG_INIT | FLAG_DECODE) != 0 {
        return Err(AcceleratorError::FrameHeader);
    }
    let n_tables = get_count(&mut frame, GarbledTable::WIRE_BYTES)?;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let mut bytes = [0u8; GarbledTable::WIRE_BYTES];
        frame.copy_to_slice(&mut bytes);
        tables.push(GarbledTable::from_bytes(bytes));
    }
    let a_labels = get_labels(&mut frame)?;
    let init_acc_labels = if flags & FLAG_INIT != 0 {
        Some(get_labels(&mut frame)?)
    } else {
        None
    };
    let decode = if flags & FLAG_DECODE != 0 {
        let count = get_count(&mut frame, 0)?;
        let packed = count.div_ceil(8);
        if frame.remaining() < packed {
            return Err(AcceleratorError::FrameTruncated);
        }
        let mut bytes = vec![0u8; packed];
        frame.copy_to_slice(&mut bytes);
        Some(
            (0..count)
                .map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1)
                .collect(),
        )
    } else {
        None
    };
    if frame.remaining() != 0 {
        return Err(AcceleratorError::FrameHeader);
    }
    Ok(RoundMessage {
        elem,
        round,
        tables,
        a_labels,
        init_acc_labels,
        decode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Maxelerator;
    use crate::config::AcceleratorConfig;

    fn sample() -> RoundMessage {
        let mut accel = Maxelerator::new(AcceleratorConfig::new(8), 19);
        accel.garble_round(7, true)
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let msg = sample();
        let decoded = decode_round_message(encode_round_message(&msg)).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn round_trip_without_optionals() {
        let mut msg = sample();
        msg.init_acc_labels = None;
        msg.decode = None;
        let decoded = decode_round_message(encode_round_message(&msg)).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_frames_are_rejected_not_panics() {
        let full = encode_round_message(&sample());
        for len in 0..full.len() {
            let cut = Bytes::from(full[..len].to_vec());
            assert!(
                decode_round_message(cut).is_err(),
                "prefix of {len} bytes must fail cleanly"
            );
        }
    }

    #[test]
    fn unknown_flags_and_trailing_garbage_rejected() {
        let full = encode_round_message(&sample());
        let mut bad_flags = full.to_vec();
        bad_flags[8] |= 0x80;
        assert_eq!(
            decode_round_message(Bytes::from(bad_flags)),
            Err(AcceleratorError::FrameHeader)
        );
        let mut trailing = full.to_vec();
        trailing.push(0);
        assert_eq!(
            decode_round_message(Bytes::from(trailing)),
            Err(AcceleratorError::FrameHeader)
        );
    }

    #[test]
    fn oversized_count_rejected() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u8(0);
        buf.put_u32(u32::MAX); // table count far beyond the payload
        assert_eq!(
            decode_round_message(buf.freeze()),
            Err(AcceleratorError::FrameTruncated)
        );
    }
}
