//! The cycle-accurate MAXelerator pipeline: schedule-driven garbling with
//! on-chip label generation, BRAM table buffering and PCIe drainage.
//!
//! Every garbled table the simulation emits is a *real* half-gates table;
//! [`ScheduledEvaluator`] (the client side) decrypts them and recovers exact
//! MAC results. Cycle counts come from walking the compiled [`Schedule`]
//! slot by slot.

use max_crypto::{Block, FixedKeyHash, Tweak};
use max_fpga::{Clock, MemorySystem, PcieLink};
use max_gc::{evaluate_and_batch, garble_and_batch, Delta, GarbledTable};
use max_netlist::{decode_signed, decode_unsigned, GateKind, MacCircuit};
use max_rng::LabelGenerator;

use crate::config::AcceleratorConfig;
use crate::error::AcceleratorError;
use crate::schedule::Schedule;
use crate::timing::TimingModel;

/// Per-gate tweak: unique across (element, round, gate).
fn table_tweak(elem: u32, round: u32, gate_idx: u32) -> Tweak {
    Tweak::new(elem, round, 0, gate_idx, 0)
}

/// One AND slot awaiting its cycle's batched garble: resolved input labels
/// plus the bookkeeping needed to write the result back.
struct PendingSlot {
    a0: Block,
    b0: Block,
    tweak: Tweak,
    round: usize,
    out_wire: usize,
    gate: u32,
    core: usize,
}

/// Decrypts every queued AND gate of the scheduled evaluator with one
/// batched AES sweep.
fn flush_eval_pending(
    hash: &FixedKeyHash,
    pending: &mut Vec<(GarbledTable, Block, Block, Tweak, usize)>,
    wire_pending: &mut [bool],
    active: &mut [Option<Block>],
) {
    if pending.is_empty() {
        return;
    }
    let gates: Vec<(GarbledTable, Block, Block, Tweak)> = pending
        .iter()
        .map(|&(t, a, b, tw, _)| (t, a, b, tw))
        .collect();
    for (&(_, _, _, _, out), label) in pending.iter().zip(evaluate_and_batch(hash, &gates)) {
        active[out] = Some(label);
        wire_pending[out] = false;
    }
    pending.clear();
}

/// Derives the label-stream seed of one output element from the server's
/// base seed (SplitMix64 finalizer). Every element gets an independent
/// stream keyed only by `(base, elem)`, so an element garbles to identical
/// bytes no matter which accelerator unit — or how many — processes it.
pub(crate) fn element_label_seed(base: u64, elem: u32) -> u64 {
    let mut z = base ^ (u64::from(elem).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The public per-round message the host CPU relays to the client
/// (Figure 1): garbled tables plus the garbler-side input labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundMessage {
    /// Output-element id (row index during a matrix-vector product).
    pub elem: u32,
    /// Sequential round (vector position).
    pub round: u32,
    /// Garbled tables in netlist AND order.
    pub tables: Vec<GarbledTable>,
    /// Active labels for the server's fresh inputs (`a` bits, then
    /// constants).
    pub a_labels: Vec<Block>,
    /// Round 0 only: active labels of the initial accumulator (zero).
    pub init_acc_labels: Option<Vec<Block>>,
    /// Final round only: output decode bits.
    pub decode: Option<Vec<bool>>,
}

impl RoundMessage {
    /// Bytes on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.tables.len() * GarbledTable::WIRE_BYTES
            + self.a_labels.len() * 16
            + self.init_acc_labels.as_ref().map_or(0, |l| l.len() * 16)
            + self.decode.as_ref().map_or(0, |d| d.len().div_ceil(8))
    }
}

/// Hardware activity report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AcceleratorReport {
    /// Total fabric cycles (including pipeline fill).
    pub cycles: u64,
    /// Garbled tables emitted.
    pub tables: u64,
    /// MAC rounds completed.
    pub rounds: u64,
    /// Measured steady-state cycles per MAC of the last pipelined job.
    pub last_job_ii: f64,
    /// Core utilization of the last pipelined job.
    pub last_job_utilization: f64,
    /// Fresh labels drawn from the ring-oscillator generator.
    pub labels_generated: u64,
    /// Energy saved by label-generator power gating (fraction of worst case).
    pub label_energy_saving: f64,
    /// Bytes pushed into the PCIe link.
    pub pcie_pushed_bytes: u64,
    /// Bytes the host received.
    pub pcie_delivered_bytes: u64,
    /// Peak PCIe backlog (the §6 communication-bottleneck signal).
    pub pcie_peak_backlog: usize,
    /// BRAM write rejections (cycles the real hardware would stall).
    pub bram_would_stall: u64,
    /// Event counts for the order-of-magnitude energy model.
    pub energy: max_fpga::EnergyMeter,
}

impl AcceleratorReport {
    /// Estimated joules per MAC under the default energy model.
    ///
    /// # Panics
    ///
    /// Panics if no rounds have been garbled.
    pub fn joules_per_mac(&self) -> f64 {
        self.energy
            .joules_per_mac(&max_fpga::EnergyModel::default(), self.rounds.max(1))
    }
}

/// The simulated accelerator (server side).
pub struct Maxelerator {
    config: AcceleratorConfig,
    mac: MacCircuit,
    cores: usize,
    hash: FixedKeyHash,
    /// Seed all per-element label streams derive from.
    base_seed: u64,
    labels: LabelGenerator,
    /// RNG activity of label generators retired by earlier elements
    /// (`begin_element` reseeds, which resets the generator's counters).
    rng_active_base: u64,
    rng_worst_base: u64,
    delta: Delta,
    clock: Clock,
    memory: MemorySystem,
    pcie: PcieLink,
    /// Carried accumulator zero-labels between rounds.
    carried_zero: Option<Vec<Block>>,
    round: u32,
    elem: u32,
    /// OT pairs per absolute round of the current element.
    eval_pairs: std::collections::HashMap<u32, Vec<(Block, Block)>>,
    /// Ordinal of each netlist gate among the AND gates.
    and_ordinal: Vec<Option<u32>>,
    /// Producing gate of each wire (for free-cone resolution).
    producer: Vec<Option<u32>>,
    /// For accumulator-input wires: their position in the state range.
    acc_pos_of_wire: Vec<Option<u32>>,
    /// Output wire index per accumulator position.
    output_wires: Vec<usize>,
    report: AcceleratorReport,
    label_pool: std::collections::VecDeque<Block>,
}

impl std::fmt::Debug for Maxelerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Maxelerator")
            .field("config", &self.config)
            .field("round", &self.round)
            .field("elem", &self.elem)
            .finish_non_exhaustive()
    }
}

impl Maxelerator {
    /// Builds an accelerator for `config`, seeding the ring-oscillator
    /// label generator with `seed`.
    pub fn new(config: AcceleratorConfig, seed: u64) -> Self {
        let mac = config.mac_circuit();
        let cores = TimingModel {
            bit_width: config.bit_width,
            freq_mhz: config.freq_mhz,
        }
        .cores();
        let mut labels = LabelGenerator::new(element_label_seed(seed, 0), config.bit_width.max(4));
        let delta = Delta::from_block(labels.next_label());
        let mut and_ordinal = vec![None; mac.netlist().gates().len()];
        let mut producer = vec![None; mac.netlist().wire_count()];
        let mut next = 0u32;
        for (i, gate) in mac.netlist().gates().iter().enumerate() {
            if gate.kind == GateKind::And {
                and_ordinal[i] = Some(next);
                next += 1;
            }
            producer[gate.out.index()] = Some(i as u32);
        }
        let mut acc_pos_of_wire = vec![None; mac.netlist().wire_count()];
        for (offset, wire) in mac.netlist().garbler_inputs()[config.state_range()]
            .iter()
            .enumerate()
        {
            acc_pos_of_wire[wire.index()] = Some(offset as u32);
        }
        let output_wires: Vec<usize> = mac.netlist().outputs().iter().map(|w| w.index()).collect();
        Maxelerator {
            hash: FixedKeyHash::new(),
            memory: MemorySystem::new(cores, 1 << 20),
            pcie: PcieLink::new(256, 16),
            clock: Clock::new(config.freq_mhz),
            mac,
            cores,
            base_seed: seed,
            labels,
            rng_active_base: 0,
            rng_worst_base: 0,
            delta,
            config,
            carried_zero: None,
            round: 0,
            elem: 0,
            eval_pairs: std::collections::HashMap::new(),
            and_ordinal,
            producer,
            acc_pos_of_wire,
            output_wires,
            report: AcceleratorReport::default(),
            label_pool: std::collections::VecDeque::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Number of parallel GC cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Starts a new output element (matrix row): resets the accumulator
    /// carry and the round counter; `elem` feeds the gate tweaks.
    ///
    /// The label generator reseeds to the element's own stream (derived
    /// from the base seed and `elem` alone), so the element's garbled
    /// material is bit-identical whichever unit garbles it and in whatever
    /// order elements are processed — the invariant the multi-unit pipeline
    /// relies on for transcript parity with a single-unit server.
    pub fn begin_element(&mut self, elem: u32) {
        let retiring = self.labels.report();
        self.rng_active_base += retiring.active_rng_cycles;
        self.rng_worst_base += retiring.worst_case_rng_cycles;
        self.labels = LabelGenerator::new(
            element_label_seed(self.base_seed, elem),
            self.config.bit_width.max(4),
        );
        self.delta = Delta::from_block(self.labels.next_label());
        self.label_pool.clear();
        self.elem = elem;
        self.round = 0;
        self.carried_zero = None;
        self.eval_pairs.clear();
    }

    /// Cumulative RNG activity across all per-element generators.
    fn rng_totals(&self) -> (u64, u64) {
        let current = self.labels.report();
        (
            self.rng_active_base + current.active_rng_cycles,
            self.rng_worst_base + current.worst_case_rng_cycles,
        )
    }

    /// Garbles one MAC round for server input `a`.
    ///
    /// Convenience wrapper over [`Maxelerator::garble_job`]; use the job
    /// form for pipelined multi-round throughput.
    ///
    /// # Panics
    ///
    /// Panics if `a` does not fit the configured bit-width.
    pub fn garble_round(&mut self, a: i64, last: bool) -> RoundMessage {
        self.garble_job(&[a], last).pop().expect("one round")
    }

    /// Garbles `a_elems.len()` consecutive MAC rounds as one pipelined job.
    ///
    /// Rounds continue the current element's accumulator; set `last` to
    /// release the decode bits with the final round.
    ///
    /// # Panics
    ///
    /// Panics if `a_elems` is empty, any element does not fit, or the
    /// compiled schedule violates its own dependency order (an internal
    /// bug, never reachable from peer input).
    pub fn garble_job(&mut self, a_elems: &[i64], last: bool) -> Vec<RoundMessage> {
        self.try_garble_job(a_elems, last)
            .expect("compiled schedule satisfies its own dependencies")
    }

    /// Fallible form of [`Maxelerator::garble_job`]: reports schedule
    /// violations and unresolvable wires as [`AcceleratorError`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::ScheduleViolation`] or
    /// [`AcceleratorError::UnresolvedWire`] if the compiled schedule would
    /// read a label before it exists.
    ///
    /// # Panics
    ///
    /// Panics if `a_elems` is empty or any element does not fit the
    /// configured bit-width (caller errors, not peer input).
    pub fn try_garble_job(
        &mut self,
        a_elems: &[i64],
        last: bool,
    ) -> Result<Vec<RoundMessage>, AcceleratorError> {
        assert!(!a_elems.is_empty(), "job needs at least one round");
        let rounds = a_elems.len();
        let schedule = Schedule::compile(
            self.mac.netlist(),
            self.cores,
            rounds,
            self.config.state_range(),
        );
        let netlist = self.mac.netlist().clone();
        let n_wires = netlist.wire_count();
        let b = self.config.bit_width;
        let first_round_abs = self.round;

        // ------------------------------------------------------------------
        // Label provisioning. Per round: b fresh `a` labels + b fresh `x`
        // labels + constants; the element's first round also needs the
        // initial accumulator labels. The generator feeds a pool at
        // ≤ b/2 labels per cycle; the pool is pre-filled for the first round
        // (pipeline fill).
        let consts = netlist.constants().len();
        let mut needed: u64 = (rounds * (2 * b + consts)) as u64;
        if self.carried_zero.is_none() {
            needed += self.config.acc_width as u64;
        }
        let per_cycle = (b / 2).max(1);
        let first_need = (2 * b
            + consts
            + if self.carried_zero.is_none() {
                self.config.acc_width
            } else {
                0
            }) as u64;
        while (self.label_pool.len() as u64) < first_need {
            let burst = self.labels.clock(per_cycle);
            self.report.labels_generated += burst.len() as u64;
            self.label_pool.extend(burst);
            self.clock.tick();
            self.tick_io();
        }
        let mut remaining_to_generate = needed.saturating_sub(self.label_pool.len() as u64);

        // ------------------------------------------------------------------
        // Per-round label tables, filled lazily as the schedule executes.
        let mut zero: Vec<Vec<Option<Block>>> = Vec::with_capacity(rounds);
        let mut a_labels_out: Vec<Vec<Block>> = Vec::with_capacity(rounds);
        let mut init_acc_out: Option<Vec<Block>> = None;
        let mut pairs_per_round: Vec<Vec<(Block, Block)>> = Vec::with_capacity(rounds);
        for (r, &a) in a_elems.iter().enumerate() {
            let mut wires = vec![None; n_wires];
            let a_bits = if self.config.signed {
                max_netlist::encode_signed(a, b)
            } else {
                max_netlist::encode_unsigned(a as u64, b)
            };
            let mut sent = Vec::with_capacity(b + consts);
            for (pos, wire) in netlist.garbler_inputs().iter().enumerate() {
                if self.config.state_range().contains(&pos) {
                    continue;
                }
                let z = self.pool_label();
                wires[wire.index()] = Some(z);
                let bit = a_bits[pos];
                sent.push(if bit { self.delta.one_label(z) } else { z });
            }
            // Accumulator: carried from the previous round / element start.
            if r == 0 {
                match self.carried_zero.take() {
                    Some(labels) => {
                        for (offset, wire) in netlist.garbler_inputs()[self.config.state_range()]
                            .iter()
                            .enumerate()
                        {
                            wires[wire.index()] = Some(labels[offset]);
                        }
                    }
                    None => {
                        // Fresh labels; initial value 0 ⇒ active = zero-label.
                        let mut init = Vec::with_capacity(self.config.acc_width);
                        for wire in &netlist.garbler_inputs()[self.config.state_range()] {
                            let z = self.pool_label();
                            wires[wire.index()] = Some(z);
                            init.push(z);
                        }
                        init_acc_out = Some(init);
                    }
                }
            }
            // Constants: garbler-known bits.
            for &(wire, value) in netlist.constants() {
                let z = self.pool_label();
                wires[wire.index()] = Some(z);
                sent.push(if value { self.delta.one_label(z) } else { z });
            }
            // Evaluator (`x`) labels: fresh pair per bit, delivered via OT.
            let mut pairs = Vec::with_capacity(b);
            for wire in netlist.evaluator_inputs() {
                let z = self.pool_label();
                wires[wire.index()] = Some(z);
                pairs.push((z, self.delta.one_label(z)));
            }
            pairs_per_round.push(pairs);
            a_labels_out.push(sent);
            zero.push(wires);
        }

        // ------------------------------------------------------------------
        // Walk the schedule cycle by cycle, garbling one table per busy core.
        let n_ands = netlist.stats().and_gates;
        let mut tables: Vec<Vec<Option<GarbledTable>>> = vec![vec![None; n_ands]; rounds];
        let mut assignment_iter = schedule.assignments().iter().peekable();
        let total_cycles = schedule.stats().cycles;
        for cycle in 0..total_cycles {
            // Keep the label generator pumping (power-gated to the deficit).
            if remaining_to_generate > 0 {
                let demand = (remaining_to_generate.min(per_cycle as u64)) as usize;
                let burst = self.labels.clock(demand);
                self.report.labels_generated += burst.len() as u64;
                remaining_to_generate -= burst.len() as u64;
                self.label_pool.extend(burst);
            } else {
                // Fully power-gated cycle.
                self.labels.clock(0);
            }
            // All slots of one cycle ran on distinct cores in the same clock
            // tick, so their input labels are (almost always) independent of
            // each other: garble the whole cycle with one batched AES sweep.
            // If a slot's free cone does read a same-cycle AND output, the
            // resolve-retry in `resolve_for_batch` flushes first, preserving
            // the exact gate-at-a-time semantics.
            let mut pending: Vec<PendingSlot> = Vec::new();
            while let Some(slot) = assignment_iter.peek() {
                if slot.cycle != cycle {
                    break;
                }
                let slot = *assignment_iter.next().expect("peeked");
                let r = slot.round as usize;
                let gate = netlist.gates()[slot.gate as usize];
                let a0 = self.resolve_for_batch(
                    &netlist,
                    &mut zero,
                    &mut pending,
                    &mut tables,
                    r,
                    gate.a.index(),
                )?;
                let b0 = self.resolve_for_batch(
                    &netlist,
                    &mut zero,
                    &mut pending,
                    &mut tables,
                    r,
                    gate.b.index(),
                )?;
                let tweak = table_tweak(self.elem, first_round_abs + slot.round, slot.gate);
                pending.push(PendingSlot {
                    a0,
                    b0,
                    tweak,
                    round: r,
                    out_wire: gate.out.index(),
                    gate: slot.gate,
                    core: slot.core,
                });
            }
            self.flush_garbles(&mut pending, &mut zero, &mut tables);
            self.memory.end_cycle();
            self.clock.tick();
            self.tick_io();
        }
        // Drain the remaining tables through PCIe.
        while !self.memory.is_empty() || !self.pcie.is_drained() {
            self.clock.tick();
            self.tick_io();
        }

        // ------------------------------------------------------------------
        // Collect outputs: carried accumulator labels and round messages.
        let outputs: Vec<usize> = netlist.outputs().iter().map(|w| w.index()).collect();
        let out_zero: Vec<Block> = outputs
            .iter()
            .map(|&w| self.resolve(&netlist, &mut zero, rounds - 1, w))
            .collect::<Result<_, _>>()?;
        let decode: Vec<bool> = out_zero.iter().map(|z| z.lsb()).collect();
        self.carried_zero = Some(out_zero);

        let mut messages = Vec::with_capacity(rounds);
        for (r, round_tables) in tables.into_iter().enumerate() {
            let abs_round = first_round_abs + r as u32;
            self.eval_pairs
                .insert(abs_round, pairs_per_round[r].clone());
            let msg = RoundMessage {
                elem: self.elem,
                round: abs_round,
                tables: round_tables
                    .into_iter()
                    .map(|t| t.expect("all gates garbled"))
                    .collect(),
                a_labels: a_labels_out[r].clone(),
                init_acc_labels: if r == 0 { init_acc_out.take() } else { None },
                decode: (last && r == rounds - 1).then_some(decode.clone()),
            };
            messages.push(msg);
        }
        self.round = first_round_abs + rounds as u32;
        self.report.rounds += rounds as u64;
        self.report.cycles = self.clock.cycles();
        self.report.last_job_ii = schedule.stats().steady_state_ii;
        self.report.last_job_utilization = schedule.stats().utilization;
        let (rng_active, rng_worst) = self.rng_totals();
        self.report.label_energy_saving = if rng_worst == 0 {
            0.0
        } else {
            1.0 - rng_active as f64 / rng_worst as f64
        };
        self.report.pcie_pushed_bytes = self.pcie.pushed_bytes();
        self.report.pcie_delivered_bytes = self.pcie.delivered_bytes();
        self.report.pcie_peak_backlog = self.pcie.peak_queue_bytes();
        // Energy event counts: 4 fixed-key AES calls per half-gates table,
        // one BRAM write per table, one 128-bit shift per core-cycle of
        // label movement (schedule slots), active RNG-cycles from the
        // power-gated generator.
        self.report.energy = max_fpga::EnergyMeter {
            aes_ops: self.report.tables * 4,
            rng_cycles: rng_active,
            shifts: self.report.tables,
            bram_writes: self.report.tables,
            pcie_bytes: self.report.pcie_pushed_bytes,
            cycles: self.report.cycles,
        };
        Ok(messages)
    }

    /// [`Maxelerator::resolve`] with one retry: a same-cycle producer may
    /// still sit in the pending batch, so flush it and resolve again before
    /// reporting a real schedule violation.
    fn resolve_for_batch(
        &mut self,
        netlist: &max_netlist::Netlist,
        zero: &mut [Vec<Option<Block>>],
        pending: &mut Vec<PendingSlot>,
        tables: &mut [Vec<Option<GarbledTable>>],
        round: usize,
        wire: usize,
    ) -> Result<Block, AcceleratorError> {
        match self.resolve(netlist, zero, round, wire) {
            Ok(label) => Ok(label),
            Err(_) if !pending.is_empty() => {
                self.flush_garbles(pending, zero, tables);
                self.resolve(netlist, zero, round, wire)
            }
            Err(e) => Err(e),
        }
    }

    /// Garbles every queued slot with one batched AES sweep, then writes the
    /// tables into BRAM and the output labels back into the wire state.
    fn flush_garbles(
        &mut self,
        pending: &mut Vec<PendingSlot>,
        zero: &mut [Vec<Option<Block>>],
        tables: &mut [Vec<Option<GarbledTable>>],
    ) {
        if pending.is_empty() {
            return;
        }
        let gates: Vec<(Block, Block, Tweak)> =
            pending.iter().map(|p| (p.a0, p.b0, p.tweak)).collect();
        for (slot, (c0, table)) in pending
            .iter()
            .zip(garble_and_batch(&self.hash, self.delta, &gates))
        {
            zero[slot.round][slot.out_wire] = Some(c0);
            let ordinal = self.and_ordinal[slot.gate as usize].expect("AND gate");
            tables[slot.round][ordinal as usize] = Some(table);
            if !self.memory.write(slot.core, table.to_bytes().to_vec()) {
                self.report.bram_would_stall += 1;
            }
            self.report.tables += 1;
        }
        pending.clear();
    }

    fn pool_label(&mut self) -> Block {
        if let Some(label) = self.label_pool.pop_front() {
            return label;
        }
        // Pool miss (start-up corner): burst the generator one cycle.
        let burst = self.labels.clock(1);
        self.report.labels_generated += 1;
        self.clock.tick();
        burst[0]
    }

    /// One I/O cycle: the shared BRAM read port feeds the PCIe serializer
    /// (up to four 32-byte beats per cycle, a 512-bit AXI stream).
    fn tick_io(&mut self) {
        for _ in 0..4 {
            match self.memory.read_one() {
                Some((_, record)) => self.pcie.push(record.len()),
                None => break,
            }
        }
        self.pcie.tick();
    }

    /// Resolves a wire's zero-label through the free-gate cone; AND outputs
    /// must already be garbled (the schedule guarantees it). Accumulator
    /// inputs of round `r > 0` resolve to the previous round's output
    /// labels — the shift-register carry between sequential rounds.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::ScheduleViolation`] if an AND output is
    /// not yet garbled, [`AcceleratorError::UnresolvedWire`] for a wire with
    /// neither label nor producer.
    fn resolve(
        &self,
        netlist: &max_netlist::Netlist,
        zero: &mut [Vec<Option<Block>>],
        round: usize,
        wire: usize,
    ) -> Result<Block, AcceleratorError> {
        if let Some(label) = zero[round][wire] {
            return Ok(label);
        }
        if let Some(pos) = self.acc_pos_of_wire[wire] {
            assert!(round > 0, "round 0 accumulator labels must be pre-assigned");
            let out_wire = self.output_wires[pos as usize];
            let label = self.resolve(netlist, zero, round - 1, out_wire)?;
            zero[round][wire] = Some(label);
            return Ok(label);
        }
        let gate_idx = self.producer[wire].ok_or(AcceleratorError::UnresolvedWire { wire })?;
        let gate = netlist.gates()[gate_idx as usize];
        let label = match gate.kind {
            GateKind::And => return Err(AcceleratorError::ScheduleViolation { wire }),
            GateKind::Xor => {
                let a = self.resolve(netlist, zero, round, gate.a.index())?;
                let b = self.resolve(netlist, zero, round, gate.b.index())?;
                max_telemetry::counter_add("gc.gates.xor", 1);
                a ^ b
            }
            GateKind::Not => {
                let a = self.resolve(netlist, zero, round, gate.a.index())?;
                a ^ self.delta.block()
            }
        };
        zero[round][wire] = Some(label);
        Ok(label)
    }

    /// OT message pairs for round `round`'s evaluator inputs.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorError::UnknownRound`] if that round has not
    /// been garbled in the current element — e.g. a peer requesting labels
    /// for a round id it invented.
    pub fn ot_pairs(&self, round: u32) -> Result<&[(Block, Block)], AcceleratorError> {
        self.eval_pairs
            .get(&round)
            .map(Vec::as_slice)
            .ok_or(AcceleratorError::UnknownRound { round })
    }

    /// Trusted-delivery shortcut: active labels for the most recent round's
    /// `x` bits (tests / examples; production uses the OT stack).
    ///
    /// # Panics
    ///
    /// Panics if no round was garbled or the bit count mismatches.
    pub fn ot_pairs_for_client(&self, x_bits: &[bool]) -> Vec<Block> {
        let round = self.round.checked_sub(1).expect("no round garbled yet");
        let pairs = self.ot_pairs(round).expect("last round was garbled");
        assert_eq!(pairs.len(), x_bits.len(), "x bit-count mismatch");
        pairs
            .iter()
            .zip(x_bits)
            .map(|(&(m0, m1), &bit)| if bit { m1 } else { m0 })
            .collect()
    }

    /// Hardware activity so far.
    pub fn report(&self) -> &AcceleratorReport {
        &self.report
    }
}

/// The client: evaluates the accelerator's round messages in netlist order
/// with the matching tweaks, carrying the accumulator between rounds.
#[derive(Debug)]
pub struct ScheduledEvaluator {
    config: AcceleratorConfig,
    netlist: max_netlist::Netlist,
    hash: FixedKeyHash,
    carried: Option<Vec<Block>>,
    elem: u32,
}

impl ScheduledEvaluator {
    /// Creates a client evaluator for the same configuration as the server.
    pub fn new(config: &AcceleratorConfig) -> Self {
        ScheduledEvaluator {
            netlist: config.mac_circuit().netlist().clone(),
            config: config.clone(),
            hash: FixedKeyHash::new(),
            carried: None,
            elem: 0,
        }
    }

    /// Starts a new output element.
    pub fn begin_element(&mut self, elem: u32) {
        self.elem = elem;
        self.carried = None;
    }

    /// Evaluates one round; returns the decoded MAC result when the round
    /// carries decode bits.
    ///
    /// # Errors
    ///
    /// Returns a typed [`AcceleratorError`] for any malformed message —
    /// wrong table, label, or decode-bit counts, or a missing accumulator.
    /// Peer-supplied data can never panic the evaluator.
    pub fn evaluate_round(
        &mut self,
        msg: &RoundMessage,
        x_labels: &[Block],
    ) -> Result<Option<i64>, AcceleratorError> {
        let b = self.config.bit_width;
        let consts = self.netlist.constants().len();
        if msg.a_labels.len() != b + consts {
            return Err(AcceleratorError::ALabelCount {
                expected: b + consts,
                got: msg.a_labels.len(),
            });
        }
        if x_labels.len() != b {
            return Err(AcceleratorError::XLabelCount {
                expected: b,
                got: x_labels.len(),
            });
        }
        let n_ands = self.netlist.stats().and_gates;
        if msg.tables.len() != n_ands {
            return Err(AcceleratorError::TableCount {
                expected: n_ands,
                got: msg.tables.len(),
            });
        }
        let acc_width = self.netlist.garbler_inputs()[self.config.state_range()].len();
        let acc_active: Vec<Block> = match (&self.carried, &msg.init_acc_labels) {
            (_, Some(init)) => {
                if init.len() != acc_width {
                    return Err(AcceleratorError::AccLabelCount {
                        expected: acc_width,
                        got: init.len(),
                    });
                }
                init.clone()
            }
            (Some(carried), None) => carried.clone(),
            (None, None) => return Err(AcceleratorError::MissingAccumulator { round: msg.round }),
        };
        if let Some(decode) = &msg.decode {
            if decode.len() != self.netlist.outputs().len() {
                return Err(AcceleratorError::DecodeCount {
                    expected: self.netlist.outputs().len(),
                    got: decode.len(),
                });
            }
        }

        let mut active: Vec<Option<Block>> = vec![None; self.netlist.wire_count()];
        let mut sent = msg.a_labels.iter();
        for (pos, wire) in self.netlist.garbler_inputs().iter().enumerate() {
            if self.config.state_range().contains(&pos) {
                continue;
            }
            active[wire.index()] = Some(*sent.next().expect("checked count"));
        }
        for (offset, wire) in self.netlist.garbler_inputs()[self.config.state_range()]
            .iter()
            .enumerate()
        {
            active[wire.index()] = Some(acc_active[offset]);
        }
        for &(wire, _) in self.netlist.constants() {
            active[wire.index()] = Some(*sent.next().expect("constant label"));
        }
        for (wire, &label) in self.netlist.evaluator_inputs().iter().zip(x_labels) {
            active[wire.index()] = Some(label);
        }

        // Pending-AND batch, mirroring the garbler: independent AND gates
        // decrypt with one wide AES sweep, flushing whenever a gate reads an
        // unflushed AND output.
        let mut and_ordinal = 0usize;
        let mut pending: Vec<(GarbledTable, Block, Block, Tweak, usize)> = Vec::new();
        let mut wire_pending = vec![false; self.netlist.wire_count()];
        for (gate_idx, gate) in self.netlist.gates().iter().enumerate() {
            if wire_pending[gate.a.index()] || wire_pending[gate.b.index()] {
                flush_eval_pending(&self.hash, &mut pending, &mut wire_pending, &mut active);
            }
            let a = active[gate.a.index()].expect("topological order");
            let bb = active[gate.b.index()].expect("topological order");
            match gate.kind {
                GateKind::And => {
                    let table = msg.tables[and_ordinal];
                    and_ordinal += 1;
                    let tweak = table_tweak(self.elem, msg.round, gate_idx as u32);
                    pending.push((table, a, bb, tweak, gate.out.index()));
                    wire_pending[gate.out.index()] = true;
                }
                GateKind::Xor => active[gate.out.index()] = Some(a ^ bb),
                GateKind::Not => active[gate.out.index()] = Some(a),
            }
        }
        flush_eval_pending(&self.hash, &mut pending, &mut wire_pending, &mut active);

        let outputs: Vec<Block> = self
            .netlist
            .outputs()
            .iter()
            .map(|w| active[w.index()].expect("outputs driven"))
            .collect();
        self.carried = Some(outputs.clone());

        Ok(msg.decode.as_ref().map(|decode| {
            let bits: Vec<bool> = outputs
                .iter()
                .zip(decode)
                .map(|(label, &d)| label.lsb() ^ d)
                .collect();
            if self.config.signed {
                decode_signed(&bits)
            } else {
                decode_unsigned(&bits) as i64
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secure_dot(b: usize, a: &[i64], x: &[i64], seed: u64) -> i64 {
        let config = AcceleratorConfig::new(b);
        let mut accel = Maxelerator::new(config.clone(), seed);
        let mut client = ScheduledEvaluator::new(&config);
        let messages = accel.garble_job(a, true);
        let mut result = None;
        for (msg, &xl) in messages.iter().zip(x) {
            let labels: Vec<Block> = accel
                .ot_pairs(msg.round)
                .unwrap()
                .iter()
                .zip(config.encode_x(xl))
                .map(|(&(m0, m1), bit)| if bit { m1 } else { m0 })
                .collect();
            result = client.evaluate_round(msg, &labels).unwrap();
        }
        result.expect("final round decodes")
    }

    #[test]
    fn end_to_end_dot_product_b8() {
        let a = [3i64, -4, 5, 0, -7, 2, 127, -128];
        let x = [2i64, 6, -1, 9, 5, -3, -128, 127];
        let expected: i64 = a.iter().zip(&x).map(|(p, q)| p * q).sum();
        assert_eq!(secure_dot(8, &a, &x, 7), expected);
    }

    #[test]
    fn end_to_end_dot_product_b16() {
        let a = [30_000i64, -12_345, 1];
        let x = [2i64, 3, -32_768];
        let expected: i64 = a.iter().zip(&x).map(|(p, q)| p * q).sum();
        assert_eq!(secure_dot(16, &a, &x, 8), expected);
    }

    #[test]
    fn single_round_via_garble_round() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 1);
        let mut client = ScheduledEvaluator::new(&config);
        let msg = accel.garble_round(-9, true);
        let labels = accel.ot_pairs_for_client(&config.encode_x(11));
        assert_eq!(client.evaluate_round(&msg, &labels).unwrap(), Some(-99));
    }

    #[test]
    fn multiple_elements_reset_accumulator() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 2);
        let mut client = ScheduledEvaluator::new(&config);
        for (elem, a, x, want) in [(0u32, 5i64, 5i64, 25i64), (1, -3, 7, -21)] {
            accel.begin_element(elem);
            client.begin_element(elem);
            let msg = accel.garble_round(a, true);
            let labels = accel.ot_pairs_for_client(&config.encode_x(x));
            assert_eq!(client.evaluate_round(&msg, &labels).unwrap(), Some(want));
        }
    }

    #[test]
    fn report_tracks_activity() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 3);
        let n_ands = config.mac_circuit().netlist().stats().and_gates as u64;
        accel.garble_job(&[1, 2, 3, 4], false);
        let report = accel.report();
        assert_eq!(report.tables, 4 * n_ands);
        assert_eq!(report.rounds, 4);
        assert!(report.cycles > 0);
        assert!(report.labels_generated > 0);
        assert!(report.last_job_utilization > 0.8);
        assert!(report.pcie_delivered_bytes >= report.tables * 32);
        assert_eq!(report.bram_would_stall, 0);
    }

    #[test]
    fn measured_ii_close_to_paper() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 12);
        accel.garble_job(&[1; 12], false);
        let ii = accel.report().last_job_ii;
        assert!((ii - 24.0).abs() / 24.0 < 0.25, "II = {ii}");
    }

    #[test]
    fn label_generator_power_gating_saves_energy() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 4);
        accel.garble_job(&[1; 16], false);
        assert!(
            accel.report().label_energy_saving > 0.3,
            "saving = {}",
            accel.report().label_energy_saving
        );
    }

    #[test]
    fn tampered_table_breaks_decoding() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 5);
        let mut client = ScheduledEvaluator::new(&config);
        let mut msg = accel.garble_round(3, true);
        msg.tables[0] = GarbledTable {
            tg: Block::new(1),
            te: Block::new(2),
        };
        let labels = accel.ot_pairs_for_client(&config.encode_x(3));
        let got = client.evaluate_round(&msg, &labels).unwrap();
        assert_ne!(got, Some(9));
    }

    #[test]
    fn unsigned_mode_works() {
        let config = AcceleratorConfig::new(8).unsigned();
        let mut accel = Maxelerator::new(config.clone(), 6);
        let mut client = ScheduledEvaluator::new(&config);
        let msgs = accel.garble_job(&[200, 100], true);
        let xs = [250i64, 3];
        let mut out = None;
        for (msg, &x) in msgs.iter().zip(&xs) {
            let labels: Vec<Block> = accel
                .ot_pairs(msg.round)
                .unwrap()
                .iter()
                .zip(config.encode_x(x))
                .map(|(&(m0, m1), bit)| if bit { m1 } else { m0 })
                .collect();
            out = client.evaluate_round(msg, &labels).unwrap();
        }
        assert_eq!(out, Some(200 * 250 + 100 * 3));
    }

    #[test]
    fn round_message_wire_bytes() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 9);
        let msg = accel.garble_round(1, true);
        assert!(
            msg.wire_bytes()
                >= msg.tables.len() * GarbledTable::WIRE_BYTES + msg.a_labels.len() * 16
        );
        assert!(msg.init_acc_labels.is_some());
        assert!(msg.decode.is_some());
    }

    #[test]
    fn split_jobs_match_single_job() {
        // Garbling [a0, a1, a2, a3] as one job or as two jobs of two rounds
        // must produce the same decoded dot product.
        let config = AcceleratorConfig::new(8);
        let x = [4i64, -5, 6, -7];
        let a = [10i64, 11, -12, 13];
        let expected: i64 = a.iter().zip(&x).map(|(p, q)| p * q).sum();

        let mut accel = Maxelerator::new(config.clone(), 21);
        let mut client = ScheduledEvaluator::new(&config);
        let mut result = None;
        for (job, lastjob) in [(&a[..2], false), (&a[2..], true)] {
            let msgs = accel.garble_job(job, lastjob);
            for msg in &msgs {
                let idx = msg.round as usize;
                let labels: Vec<Block> = accel
                    .ot_pairs(msg.round)
                    .unwrap()
                    .iter()
                    .zip(config.encode_x(x[idx]))
                    .map(|(&(m0, m1), bit)| if bit { m1 } else { m0 })
                    .collect();
                result = client.evaluate_round(msg, &labels).unwrap();
            }
        }
        assert_eq!(result, Some(expected));
    }

    #[test]
    fn malformed_messages_return_typed_errors() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 31);
        let msg = accel.garble_round(3, true);
        let labels = accel.ot_pairs_for_client(&config.encode_x(4));

        // Wrong x-label count.
        let mut client = ScheduledEvaluator::new(&config);
        assert_eq!(
            client.evaluate_round(&msg, &labels[..labels.len() - 1]),
            Err(AcceleratorError::XLabelCount {
                expected: labels.len(),
                got: labels.len() - 1
            })
        );

        // Truncated a-labels.
        let mut short = msg.clone();
        let expected_a = short.a_labels.len();
        short.a_labels.pop();
        assert_eq!(
            client.evaluate_round(&short, &labels),
            Err(AcceleratorError::ALabelCount {
                expected: expected_a,
                got: expected_a - 1
            })
        );

        // Missing tables.
        let mut tableless = msg.clone();
        let expected_tables = tableless.tables.len();
        tableless.tables.clear();
        assert_eq!(
            client.evaluate_round(&tableless, &labels),
            Err(AcceleratorError::TableCount {
                expected: expected_tables,
                got: 0
            })
        );

        // Missing accumulator on a fresh element.
        let mut no_acc = msg.clone();
        no_acc.init_acc_labels = None;
        assert_eq!(
            client.evaluate_round(&no_acc, &labels),
            Err(AcceleratorError::MissingAccumulator { round: msg.round })
        );

        // Short initial accumulator.
        let mut short_acc = msg.clone();
        short_acc.init_acc_labels.as_mut().unwrap().pop();
        assert_eq!(
            client.evaluate_round(&short_acc, &labels),
            Err(AcceleratorError::AccLabelCount {
                expected: config.acc_width,
                got: config.acc_width - 1
            })
        );

        // Wrong decode width.
        let mut bad_decode = msg.clone();
        bad_decode.decode.as_mut().unwrap().push(false);
        assert_eq!(
            client.evaluate_round(&bad_decode, &labels),
            Err(AcceleratorError::DecodeCount {
                expected: config.acc_width,
                got: config.acc_width + 1
            })
        );

        // The pristine message still evaluates after all the rejections.
        assert_eq!(client.evaluate_round(&msg, &labels).unwrap(), Some(12));

        // Unknown OT round id.
        assert_eq!(
            accel.ot_pairs(999),
            Err(AcceleratorError::UnknownRound { round: 999 })
        );
    }

    #[test]
    fn element_streams_are_position_independent() {
        // Element 7's garbled bytes must not depend on which elements were
        // garbled before it — the invariant multi-unit parity rests on.
        let config = AcceleratorConfig::new(8);
        let a = [9i64, -3, 44];

        let mut direct = Maxelerator::new(config.clone(), 77);
        direct.begin_element(7);
        let lone = direct.garble_job(&a, true);

        let mut warmed = Maxelerator::new(config.clone(), 77);
        for elem in [2u32, 0, 5] {
            warmed.begin_element(elem);
            warmed.garble_job(&[1, 2], true);
        }
        warmed.begin_element(7);
        let after_others = warmed.garble_job(&a, true);

        assert_eq!(lone.len(), after_others.len());
        for (m1, m2) in lone.iter().zip(&after_others) {
            assert_eq!(m1.tables, m2.tables);
            assert_eq!(m1.a_labels, m2.a_labels);
            assert_eq!(m1.init_acc_labels, m2.init_acc_labels);
            assert_eq!(m1.decode, m2.decode);
        }
        for round in 0..a.len() as u32 {
            assert_eq!(
                direct.ot_pairs(round).unwrap(),
                warmed.ot_pairs(round).unwrap()
            );
        }
    }

    #[test]
    fn distinct_elements_use_distinct_label_streams() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 5);
        accel.begin_element(0);
        let m0 = accel.garble_round(3, true);
        accel.begin_element(1);
        let m1 = accel.garble_round(3, true);
        assert_ne!(m0.a_labels, m1.a_labels, "element streams must differ");
        assert_ne!(m0.tables, m1.tables);
    }

    #[test]
    fn energy_accounting_survives_element_reseeds() {
        let config = AcceleratorConfig::new(8);
        let mut accel = Maxelerator::new(config.clone(), 6);
        accel.begin_element(0);
        accel.garble_job(&[1, 2, 3, 4], true);
        let rng_after_first = accel.report().energy.rng_cycles;
        accel.begin_element(1);
        accel.garble_job(&[1, 2, 3, 4], true);
        let report = accel.report();
        assert!(
            report.energy.rng_cycles > rng_after_first,
            "RNG activity must accumulate across element reseeds"
        );
        assert!(report.label_energy_saving > 0.0 && report.label_energy_saving < 1.0);
    }
}
