//! AES-NI backend: hardware AES round instructions via `std::arch::x86_64`.
//!
//! The block layout needs no shuffling: [`Block::to_bytes`] produces the
//! FIPS-197 state byte order, which is exactly what `AESENC` consumes, so
//! loads and stores are plain `_mm_loadu_si128`/`_mm_storeu_si128`.
//!
//! Eight blocks are kept in flight per loop iteration. `AESENC` has a
//! multi-cycle latency but single-cycle throughput on every AES-NI core, so
//! interleaving eight independent chains hides the latency completely — the
//! software analogue of MAXelerator's pipelined fixed-key AES MAC core.
//!
//! # Safety
//!
//! Every function here is `unsafe` because it requires the `aes` (and
//! `sse2`) target features. The only caller is `Aes128`'s dispatch layer,
//! which gates all calls behind `AesBackend::active()` — i.e. a successful
//! `is_x86_feature_detected!("aes")` — so the instructions are never
//! executed on a CPU that lacks them. All pointer accesses are unaligned
//! loads/stores of caller-owned arrays.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_storeu_si128,
    _mm_xor_si128,
};

use crate::Block;

/// How many independent blocks the NI loop keeps in flight.
pub(crate) const PIPELINE_WIDTH: usize = 8;

#[inline]
#[target_feature(enable = "aes,sse2")]
unsafe fn load_round_keys(round_keys: &[[u8; 16]; 11]) -> [__m128i; 11] {
    let mut keys = [_mm_loadu_si128(round_keys[0].as_ptr().cast()); 11];
    let mut i = 1;
    while i < 11 {
        keys[i] = _mm_loadu_si128(round_keys[i].as_ptr().cast());
        i += 1;
    }
    keys
}

#[inline]
#[target_feature(enable = "aes,sse2")]
unsafe fn encrypt_one(keys: &[__m128i; 11], block: Block) -> Block {
    let bytes = block.to_bytes();
    let mut state = _mm_xor_si128(_mm_loadu_si128(bytes.as_ptr().cast()), keys[0]);
    let mut round = 1;
    while round < 10 {
        state = _mm_aesenc_si128(state, keys[round]);
        round += 1;
    }
    state = _mm_aesenclast_si128(state, keys[10]);
    let mut out = [0u8; 16];
    _mm_storeu_si128(out.as_mut_ptr().cast(), state);
    Block::from_bytes(out)
}

/// Encrypts one block with the AES-NI round instructions.
///
/// # Safety
///
/// The CPU must support the `aes` and `sse2` target features (the dispatch
/// layer verifies this via runtime detection before calling).
#[target_feature(enable = "aes,sse2")]
pub(crate) unsafe fn encrypt_block(round_keys: &[[u8; 16]; 11], block: Block) -> Block {
    let keys = load_round_keys(round_keys);
    encrypt_one(&keys, block)
}

/// Encrypts every block in `blocks` in place, eight blocks in flight.
///
/// # Safety
///
/// The CPU must support the `aes` and `sse2` target features (the dispatch
/// layer verifies this via runtime detection before calling).
#[target_feature(enable = "aes,sse2")]
pub(crate) unsafe fn encrypt_blocks(round_keys: &[[u8; 16]; 11], blocks: &mut [Block]) {
    let keys = load_round_keys(round_keys);
    let mut chunks = blocks.chunks_exact_mut(PIPELINE_WIDTH);
    for chunk in &mut chunks {
        let mut states = [keys[0]; PIPELINE_WIDTH];
        for (state, block) in states.iter_mut().zip(chunk.iter()) {
            let bytes = block.to_bytes();
            *state = _mm_xor_si128(_mm_loadu_si128(bytes.as_ptr().cast()), keys[0]);
        }
        let mut round = 1;
        while round < 10 {
            for state in &mut states {
                *state = _mm_aesenc_si128(*state, keys[round]);
            }
            round += 1;
        }
        for state in &mut states {
            *state = _mm_aesenclast_si128(*state, keys[10]);
        }
        for (state, slot) in states.iter().zip(chunk.iter_mut()) {
            let mut out = [0u8; 16];
            _mm_storeu_si128(out.as_mut_ptr().cast(), *state);
            *slot = Block::from_bytes(out);
        }
    }
    for slot in chunks.into_remainder() {
        *slot = encrypt_one(&keys, *slot);
    }
}
