//! Cryptographic primitives for the MAXelerator reproduction.
//!
//! This crate provides every cryptographic building block the garbled-circuit
//! stack needs, implemented from scratch so the repository has no external
//! crypto dependencies:
//!
//! * [`Block`] — a 128-bit value, the unit of wire labels, garbled-table rows
//!   and cipher blocks.
//! * [`Aes128`] — a software AES-128 implementation validated against the
//!   FIPS-197 known-answer vectors. The MAXelerator hardware instantiates a
//!   single-stage AES round pipeline; this software model is bit-compatible.
//! * [`FixedKeyHash`] — the correlation-robust hash
//!   `H(X, T) = π(2X ⊕ T) ⊕ 2X ⊕ T` of Bellare et al. ("Efficient Garbling
//!   from a Fixed-Key Blockcipher", S&P 2013) used by JustGarble, TinyGarble
//!   and MAXelerator's GC engine.
//! * [`AesPrg`] — an AES-CTR pseudo-random generator used wherever the
//!   protocol needs expanded randomness (e.g. IKNP OT extension).
//! * [`TranscriptDigest`] — a rolling Matyas–Meyer–Oseas digest over the
//!   fixed-key AES permutation, used by protocol v6 to detect accidental
//!   transcript corruption end to end.
//!
//! # Security
//!
//! These implementations favour clarity and testability over side-channel
//! resistance. Table lookups are **not constant time**. This is a research
//! simulator, not a production library.
//!
//! # Example
//!
//! ```
//! use max_crypto::{Aes128, Block};
//!
//! let key = Block::from_bytes([0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
//!                              0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c]);
//! let aes = Aes128::new(key);
//! let pt = Block::from_bytes([0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
//!                             0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34]);
//! let ct = aes.encrypt(pt);
//! assert_eq!(ct.to_bytes()[0], 0x39);
//! ```

// `deny`, not `forbid`: the AES-NI backend module opts back in with a
// scoped `allow(unsafe_code)` and documented safety contract; everything
// else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod aes;
#[cfg(target_arch = "x86_64")]
mod aesni;
mod backend;
mod block;
mod digest;
mod hash;
mod prg;

pub use aes::Aes128;
pub use backend::AesBackend;
pub use block::Block;
pub use digest::TranscriptDigest;
pub use hash::{FixedKeyHash, Tweak};
pub use prg::AesPrg;
