//! Rolling transcript digest built on the fixed-key AES permutation.
//!
//! [`TranscriptDigest`] lets both ends of a garbled-circuit session fold
//! every GC-critical byte they send or receive (garbled tables, label
//! blocks, OT extension rounds) into a compact 128-bit running value. The
//! two sides exchange the value at element boundaries and at the end of a
//! job; a mismatch proves the transcripts diverged — a flipped bit in
//! transit, a stale cache entry, bit rot in a journal — and the session can
//! be rewound to the last boundary where the digests agreed.
//!
//! # Construction
//!
//! The compression function is Matyas–Meyer–Oseas over AES-128 with a fixed
//! key: for each 16-byte chunk `m`,
//!
//! ```text
//! state = E(state ⊕ m) ⊕ state ⊕ m
//! ```
//!
//! Each [`TranscriptDigest::fold`] call is treated as a framed message: the
//! final partial chunk is zero-padded, then a length block
//! (`[0x4C; 8] ‖ byte-length`) is folded so `fold(a); fold(b)` and
//! `fold(a ‖ b)` yield different states. [`TranscriptDigest::value`]
//! finalises with a second, domain-separated length block without mutating
//! the rolling state, so a digest can be sampled at every element boundary
//! and continue accumulating.
//!
//! # Security
//!
//! This is an *integrity* check against **accidental** corruption, not an
//! authenticator. The key is fixed and public, so an active adversary who
//! tampers with a frame can recompute the matching digest; the protocol's
//! honest-but-curious boundary is unchanged. What the digest buys is that
//! lossy networks, buggy middleboxes, and storage bit rot become detected,
//! retryable faults instead of silently wrong plaintexts.

use crate::{Aes128, Block};

/// Fixed, public digest key (no secrecy is claimed — see the module docs).
const DIGEST_KEY: Block = Block::new(0x4D41_5845_4C44_4947_4553_5431_2E30_2E30);

/// Domain tag folded after every `fold` call, alongside its byte length.
const TAG_FRAME: u64 = 0x4C4C_4C4C_4C4C_4C4C;
/// Domain tag for the finalisation block sampled by [`TranscriptDigest::value`].
const TAG_FINAL: u64 = 0x4646_4646_4646_4646;

/// A rolling Matyas–Meyer–Oseas digest over a protocol transcript.
///
/// Clone is cheap (one AES key schedule plus 24 bytes of state) and is how
/// checkpoints capture the digest at a boundary.
///
/// # Example
///
/// ```
/// use max_crypto::TranscriptDigest;
///
/// let mut client = TranscriptDigest::new();
/// let mut server = TranscriptDigest::new();
/// client.fold(b"garbled tables");
/// server.fold(b"garbled tables");
/// assert_eq!(client.value(), server.value());
/// server.fold(b"one more frame");
/// assert_ne!(client.value(), server.value());
/// ```
#[derive(Clone, Debug)]
pub struct TranscriptDigest {
    cipher: Aes128,
    state: Block,
    len: u64,
}

impl TranscriptDigest {
    /// A fresh digest over the empty transcript.
    pub fn new() -> TranscriptDigest {
        TranscriptDigest {
            cipher: Aes128::new(DIGEST_KEY),
            state: Block::ZERO,
            len: 0,
        }
    }

    /// One Matyas–Meyer–Oseas step: `state = E(state ⊕ m) ⊕ state ⊕ m`.
    fn compress(&mut self, chunk: Block) {
        let input = self.state ^ chunk;
        self.state = self.cipher.encrypt(input) ^ input;
    }

    /// Folds `bytes` into the digest as one framed message.
    ///
    /// The bytes are consumed in 16-byte chunks (final chunk zero-padded),
    /// then a length block records the call's byte count, so the digest
    /// distinguishes `fold(a); fold(b)` from `fold(a ‖ b)`.
    pub fn fold(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(16) {
            let mut padded = [0u8; 16];
            padded[..chunk.len()].copy_from_slice(chunk);
            self.compress(Block::from_bytes(padded));
        }
        self.compress(length_block(TAG_FRAME, bytes.len() as u64));
        self.len = self.len.wrapping_add(bytes.len() as u64);
    }

    /// Total bytes folded so far, across all `fold` calls.
    pub fn folded_bytes(&self) -> u64 {
        self.len
    }

    /// The current digest value, finalised without disturbing the rolling
    /// state: the same digest can be sampled at every boundary and keep
    /// accumulating.
    pub fn value(&self) -> [u8; 16] {
        let input = self.state ^ length_block(TAG_FINAL, self.len);
        let out = self.cipher.encrypt(input) ^ input;
        out.to_bytes()
    }

    /// Exports the rolling state for checkpoint persistence.
    ///
    /// The pair round-trips through [`TranscriptDigest::import`]; the AES
    /// key schedule is rebuilt from the fixed key on import.
    pub fn export(&self) -> ([u8; 16], u64) {
        (self.state.to_bytes(), self.len)
    }

    /// Rebuilds a digest from an exported `(state, len)` pair.
    pub fn import(state: [u8; 16], len: u64) -> TranscriptDigest {
        TranscriptDigest {
            cipher: Aes128::new(DIGEST_KEY),
            state: Block::from_bytes(state),
            len,
        }
    }
}

impl Default for TranscriptDigest {
    fn default() -> Self {
        TranscriptDigest::new()
    }
}

impl PartialEq for TranscriptDigest {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state && self.len == other.len
    }
}

impl Eq for TranscriptDigest {}

/// A 16-byte block encoding `(tag, count)` for domain separation.
fn length_block(tag: u64, count: u64) -> Block {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&tag.to_be_bytes());
    bytes[8..].copy_from_slice(&count.to_be_bytes());
    Block::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_transcripts_agree() {
        let mut a = TranscriptDigest::new();
        let mut b = TranscriptDigest::new();
        for frame in [&b"tables"[..], &[0u8; 48], &b"rounds"[..]] {
            a.fold(frame);
            b.fold(frame);
        }
        assert_eq!(a.value(), b.value());
        assert_eq!(a, b);
        assert_eq!(a.folded_bytes(), 6 + 48 + 6);
    }

    #[test]
    fn any_single_bit_flip_changes_the_value() {
        let frame: Vec<u8> = (0..37u8).collect();
        let mut clean = TranscriptDigest::new();
        clean.fold(&frame);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                let mut dirty = TranscriptDigest::new();
                dirty.fold(&flipped);
                assert_ne!(
                    clean.value(),
                    dirty.value(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn fold_is_framed_not_concatenative() {
        let mut split = TranscriptDigest::new();
        split.fold(b"ab");
        split.fold(b"cd");
        let mut joined = TranscriptDigest::new();
        joined.fold(b"abcd");
        assert_ne!(split.value(), joined.value());
        // Zero-padding is not confusable with explicit zeros.
        let mut short = TranscriptDigest::new();
        short.fold(&[7u8; 15]);
        let mut padded = TranscriptDigest::new();
        padded.fold(&{
            let mut v = [0u8; 16];
            v[..15].copy_from_slice(&[7u8; 15]);
            v
        });
        assert_ne!(short.value(), padded.value());
    }

    #[test]
    fn order_matters() {
        let mut ab = TranscriptDigest::new();
        ab.fold(b"first");
        ab.fold(b"second");
        let mut ba = TranscriptDigest::new();
        ba.fold(b"second");
        ba.fold(b"first");
        assert_ne!(ab.value(), ba.value());
    }

    #[test]
    fn value_does_not_disturb_the_rolling_state() {
        let mut sampled = TranscriptDigest::new();
        sampled.fold(b"one");
        let mid = sampled.value();
        let _ = sampled.value();
        sampled.fold(b"two");
        let mut straight = TranscriptDigest::new();
        straight.fold(b"one");
        straight.fold(b"two");
        assert_eq!(sampled.value(), straight.value());
        assert_ne!(mid, sampled.value());
    }

    #[test]
    fn export_import_round_trips() {
        let mut original = TranscriptDigest::new();
        original.fold(b"checkpointed bytes");
        let (state, len) = original.export();
        let mut restored = TranscriptDigest::import(state, len);
        assert_eq!(original, restored);
        original.fold(b"tail");
        restored.fold(b"tail");
        assert_eq!(original.value(), restored.value());
    }

    #[test]
    fn empty_digest_is_deterministic() {
        assert_eq!(
            TranscriptDigest::new().value(),
            TranscriptDigest::default().value()
        );
        assert_eq!(TranscriptDigest::new().folded_bytes(), 0);
    }
}
