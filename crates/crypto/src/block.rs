//! The 128-bit [`Block`] type shared by the whole garbled-circuit stack.

use std::fmt;
use std::ops::{BitAnd, BitXor, BitXorAssign};

use serde::{Deserialize, Serialize};

/// A 128-bit block: a wire label, a garbled-table ciphertext, or an AES block.
///
/// Internally a `u128` in big-endian byte order (byte 0 of
/// [`Block::to_bytes`] holds the most significant 8 bits). The least
/// significant bit doubles as the *point-and-permute* color bit of a wire
/// label.
///
/// # Example
///
/// ```
/// use max_crypto::Block;
///
/// let a = Block::new(0x1);
/// let b = Block::new(0x3);
/// assert_eq!(a ^ b, Block::new(0x2));
/// assert!(a.lsb());
/// assert!(!(a ^ b).lsb());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Block(u128);

impl Block {
    /// The all-zero block.
    pub const ZERO: Block = Block(0);
    /// The all-one block.
    pub const ONES: Block = Block(u128::MAX);

    /// Creates a block from a raw `u128`.
    pub const fn new(bits: u128) -> Self {
        Block(bits)
    }

    /// Returns the raw 128 bits.
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Creates a block from 16 big-endian bytes.
    pub const fn from_bytes(bytes: [u8; 16]) -> Self {
        Block(u128::from_be_bytes(bytes))
    }

    /// Returns the block as 16 big-endian bytes.
    pub const fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Least-significant bit: the point-and-permute *color* of a label.
    pub const fn lsb(self) -> bool {
        self.0 & 1 == 1
    }

    /// Forces the least-significant bit to `bit`, leaving other bits alone.
    #[must_use]
    pub const fn with_lsb(self, bit: bool) -> Self {
        Block((self.0 & !1) | bit as u128)
    }

    /// Doubling in GF(2^128) with the standard reduction polynomial
    /// `x^128 + x^7 + x^2 + x + 1` (reduction constant `0x87`).
    ///
    /// Used to separate the two hash queries made on the same label when
    /// garbling the two halves of a half-gate.
    #[must_use]
    pub const fn gf_double(self) -> Self {
        let shifted = self.0 << 1;
        let reduced = if self.0 >> 127 == 1 {
            shifted ^ 0x87
        } else {
            shifted
        };
        Block(reduced)
    }

    /// Quadrupling in GF(2^128): `gf_double` applied twice.
    #[must_use]
    pub const fn gf_quad(self) -> Self {
        self.gf_double().gf_double()
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 128`.
    pub const fn bit(self, i: usize) -> bool {
        assert!(i < 128);
        (self.0 >> i) & 1 == 1
    }

    /// XORs `other` into `self` only when `cond` is true, without branching
    /// on secret data in the caller.
    #[must_use]
    pub const fn xor_if(self, other: Block, cond: bool) -> Block {
        // A 0/1 mask extended to 128 bits.
        let mask = (cond as u128).wrapping_neg();
        Block(self.0 ^ (other.0 & mask))
    }
}

impl BitXor for Block {
    type Output = Block;

    fn bitxor(self, rhs: Block) -> Block {
        Block(self.0 ^ rhs.0)
    }
}

impl BitXorAssign for Block {
    fn bitxor_assign(&mut self, rhs: Block) {
        self.0 ^= rhs.0;
    }
}

impl BitAnd for Block {
    type Output = Block;

    fn bitand(self, rhs: Block) -> Block {
        Block(self.0 & rhs.0)
    }
}

impl From<u128> for Block {
    fn from(bits: u128) -> Self {
        Block(bits)
    }
}

impl From<Block> for u128 {
    fn from(block: Block) -> Self {
        block.0
    }
}

impl From<[u8; 16]> for Block {
    fn from(bytes: [u8; 16]) -> Self {
        Block::from_bytes(bytes)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({:032x})", self.0)
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::LowerHex for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_bytes() {
        let block = Block::new(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        assert_eq!(Block::from_bytes(block.to_bytes()), block);
    }

    #[test]
    fn byte_order_is_big_endian() {
        let block = Block::new(0x01);
        assert_eq!(block.to_bytes()[15], 0x01);
        assert_eq!(block.to_bytes()[0], 0x00);
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = Block::new(0xdead_beef);
        let b = Block::new(0x1234_5678_9abc_def0);
        assert_eq!(a ^ b ^ b, a);
        assert_eq!(a ^ a, Block::ZERO);
    }

    #[test]
    fn lsb_and_with_lsb() {
        let even = Block::new(0xf0);
        assert!(!even.lsb());
        assert!(even.with_lsb(true).lsb());
        assert_eq!(even.with_lsb(true).with_lsb(false), even);
    }

    #[test]
    fn gf_double_without_carry_is_shift() {
        let block = Block::new(0x1);
        assert_eq!(block.gf_double(), Block::new(0x2));
    }

    #[test]
    fn gf_double_reduces_on_carry() {
        let block = Block::new(1u128 << 127);
        assert_eq!(block.gf_double(), Block::new(0x87));
    }

    #[test]
    fn gf_double_is_injective_on_samples() {
        let samples = [
            Block::new(0),
            Block::new(1),
            Block::new(u128::MAX),
            Block::new(1 << 127),
            Block::new(0x87),
        ];
        for (i, a) in samples.iter().enumerate() {
            for (j, b) in samples.iter().enumerate() {
                if i != j {
                    assert_ne!(a.gf_double(), b.gf_double());
                }
            }
        }
    }

    #[test]
    fn xor_if_behaves_like_branch() {
        let a = Block::new(0xaaaa);
        let b = Block::new(0x5555);
        assert_eq!(a.xor_if(b, true), a ^ b);
        assert_eq!(a.xor_if(b, false), a);
    }

    #[test]
    fn bit_indexing_matches_shift() {
        let block = Block::new(0b1010);
        assert!(!block.bit(0));
        assert!(block.bit(1));
        assert!(!block.bit(2));
        assert!(block.bit(3));
    }

    #[test]
    fn debug_is_nonempty_and_hex() {
        let text = format!("{:?}", Block::ZERO);
        assert!(text.starts_with("Block("));
        assert_eq!(format!("{}", Block::new(0xff)), format!("{:032x}", 0xffu32));
    }
}
