//! A from-scratch software AES-128 implementation.
//!
//! The S-box is derived at compile time from its algebraic definition
//! (multiplicative inverse in GF(2^8) followed by the affine map), which
//! avoids transcription errors in a hand-typed table. Round keys are
//! precomputed at construction so [`Aes128::encrypt`] is allocation-free —
//! this mirrors the MAXelerator GC engine, whose fixed-key AES core never
//! reschedules keys at runtime.

use crate::{AesBackend, Block};

/// GF(2^8) multiplication with the AES polynomial `x^8 + x^4 + x^3 + x + 1`.
const fn gf256_mul(mut a: u8, mut b: u8) -> u8 {
    let mut product = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 == 1 {
            product ^= a;
        }
        let high = a & 0x80;
        a <<= 1;
        if high != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    product
}

/// GF(2^8) inverse by Fermat: `a^254`.
const fn gf256_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 via square-and-multiply (exponent 254 = 0b11111110).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf256_mul(result, base);
        }
        base = gf256_mul(base, base);
        exp >>= 1;
    }
    result
}

/// The AES affine transformation applied to the GF(2^8) inverse.
const fn sbox_entry(x: u8) -> u8 {
    let inv = gf256_inv(x);
    inv ^ inv.rotate_left(1) ^ inv.rotate_left(2) ^ inv.rotate_left(3) ^ inv.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = sbox_entry(i as u8);
        i += 1;
    }
    table
}

/// The AES S-box, generated from its algebraic definition.
pub(crate) const SBOX: [u8; 256] = build_sbox();

/// Round constants for AES-128 key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// AES-128 block cipher with precomputed round keys.
///
/// # Example
///
/// ```
/// use max_crypto::{Aes128, Block};
///
/// let aes = Aes128::new(Block::new(0));
/// let ct = aes.encrypt(Block::new(0));
/// assert_ne!(ct, Block::new(0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: Block) -> Self {
        let key = key.to_bytes();
        let mut words = [[0u8; 4]; 44];
        for (i, word) in words.iter_mut().take(4).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..44 {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (round, round_key) in round_keys.iter_mut().enumerate() {
            for word in 0..4 {
                round_key[4 * word..4 * word + 4].copy_from_slice(&words[4 * round + word]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one block, dispatching to the active backend.
    pub fn encrypt(&self, plaintext: Block) -> Block {
        #[cfg(target_arch = "x86_64")]
        if AesBackend::active() == AesBackend::AesNi {
            // SAFETY: `AesBackend::AesNi` is only selected after
            // `is_x86_feature_detected!("aes")` succeeded, so the required
            // instructions exist on this CPU.
            #[allow(unsafe_code)]
            return unsafe { crate::aesni::encrypt_block(&self.round_keys, plaintext) };
        }
        self.encrypt_software(plaintext)
    }

    /// Encrypts every block in `blocks` in place, dispatching to the active
    /// backend. This is the hot-path entry point: the AES-NI backend keeps
    /// eight blocks in flight per loop; the software backend pipelines eight
    /// blocks in lockstep through the round functions.
    pub fn encrypt_blocks(&self, blocks: &mut [Block]) {
        #[cfg(target_arch = "x86_64")]
        if AesBackend::active() == AesBackend::AesNi {
            // SAFETY: see `encrypt` — runtime detection gates this path.
            #[allow(unsafe_code)]
            unsafe {
                crate::aesni::encrypt_blocks(&self.round_keys, blocks)
            };
            return;
        }
        self.encrypt_blocks_software(blocks);
    }

    /// Encrypts a fixed-size batch, dispatching to the active backend.
    pub fn encrypt_batch<const N: usize>(&self, blocks: &[Block; N]) -> [Block; N] {
        let mut out = *blocks;
        self.encrypt_blocks(&mut out);
        out
    }

    /// Encrypts one block on the portable software core regardless of the
    /// active backend. The parity tests pin `encrypt == encrypt_software`.
    pub fn encrypt_software(&self, plaintext: Block) -> Block {
        let mut state = plaintext.to_bytes();
        self.rounds_software(std::slice::from_mut(&mut state));
        Block::from_bytes(state)
    }

    /// Software batch path: pipelines [`SOFTWARE_PIPELINE`] blocks in
    /// lockstep — each round function runs across the whole chunk before the
    /// next round starts, which keeps the S-box lines hot and lets the
    /// compiler interleave the independent per-block work.
    pub fn encrypt_blocks_software(&self, blocks: &mut [Block]) {
        let mut states = [[0u8; 16]; SOFTWARE_PIPELINE];
        let mut chunks = blocks.chunks_mut(SOFTWARE_PIPELINE);
        for chunk in &mut chunks {
            for (state, block) in states.iter_mut().zip(chunk.iter()) {
                *state = block.to_bytes();
            }
            self.rounds_software(&mut states[..chunk.len()]);
            for (slot, state) in chunk.iter_mut().zip(states.iter()) {
                *slot = Block::from_bytes(*state);
            }
        }
    }

    /// Runs the full ten-round schedule over every state in lockstep.
    fn rounds_software(&self, states: &mut [[u8; 16]]) {
        for state in states.iter_mut() {
            add_round_key(state, &self.round_keys[0]);
        }
        for round in 1..10 {
            for state in states.iter_mut() {
                sub_bytes(state);
                shift_rows(state);
                mix_columns(state);
                add_round_key(state, &self.round_keys[round]);
            }
        }
        for state in states.iter_mut() {
            sub_bytes(state);
            shift_rows(state);
            add_round_key(state, &self.round_keys[10]);
        }
    }
}

/// Blocks the software batch path keeps in lockstep per chunk.
const SOFTWARE_PIPELINE: usize = 8;

/// The state is stored in FIPS-197 byte order: `state[4*c + r]` is row `r`,
/// column `c`.
fn add_round_key(state: &mut [u8; 16], round_key: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(round_key) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for byte in state.iter_mut() {
        *byte = SBOX[*byte as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let original = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[4 * col + row] = original[4 * ((col + row) % 4) + row];
        }
    }
}

fn xtime(a: u8) -> u8 {
    let shifted = a << 1;
    if a & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let column = [
            state[4 * col],
            state[4 * col + 1],
            state[4 * col + 2],
            state[4 * col + 3],
        ];
        let all = column[0] ^ column[1] ^ column[2] ^ column[3];
        for row in 0..4 {
            let pair = column[row] ^ column[(row + 1) % 4];
            state[4 * col + row] = column[row] ^ all ^ xtime(pair);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_from_hex(hex: &str) -> Block {
        assert_eq!(hex.len(), 32);
        let mut bytes = [0u8; 16];
        for (i, byte) in bytes.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).unwrap();
        }
        Block::from_bytes(bytes)
    }

    #[test]
    fn sbox_known_entries() {
        // Spot checks from FIPS-197 Figure 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(SBOX[0x9a], 0xb8);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &entry in SBOX.iter() {
            assert!(!seen[entry as usize]);
            seen[entry as usize] = true;
        }
    }

    #[test]
    fn fips197_appendix_b() {
        let aes = Aes128::new(block_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let ct = aes.encrypt(block_from_hex("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, block_from_hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        let aes = Aes128::new(block_from_hex("000102030405060708090a0b0c0d0e0f"));
        let ct = aes.encrypt(block_from_hex("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, block_from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn nist_kat_ecb_vartxt() {
        // NIST AESAVS ECB VarTxt KAT, key = 0, plaintext = 80...0.
        let aes = Aes128::new(Block::ZERO);
        let ct = aes.encrypt(block_from_hex("80000000000000000000000000000000"));
        assert_eq!(ct, block_from_hex("3ad78e726c1ec02b7ebfe92b23d9ec34"));
    }

    #[test]
    fn nist_kat_ecb_varkey() {
        // NIST AESAVS ECB VarKey KAT, key = 80...0, plaintext = 0.
        let aes = Aes128::new(block_from_hex("80000000000000000000000000000000"));
        let ct = aes.encrypt(Block::ZERO);
        assert_eq!(ct, block_from_hex("0edd33d3c621e546455bd8ba1418bec8"));
    }

    #[test]
    fn nist_kat_ecb_gfsbox() {
        // NIST AESAVS ECB GFSbox KATs, key = 0.
        let aes = Aes128::new(Block::ZERO);
        let vectors = [
            (
                "f34481ec3cc627bacd5dc3fb08f273e6",
                "0336763e966d92595a567cc9ce537f5e",
            ),
            (
                "9798c4640bad75c7c3227db910174e72",
                "a9a1631bf4996954ebc093957b234589",
            ),
            (
                "96ab5c2ff612d9dfaae8c31f30c42168",
                "ff4f8391a6a40ca5b25d23bedd44a597",
            ),
            (
                "6a118a874519e64e9963798a503f1d35",
                "dc43be40be0e53712f7e2bf5ca707209",
            ),
            (
                "cb9fceec81286ca3e989bd979b0cb284",
                "92beedab1895a94faa69b632e5cc47ce",
            ),
        ];
        for (pt, want) in vectors {
            assert_eq!(aes.encrypt(block_from_hex(pt)), block_from_hex(want));
            assert_eq!(
                aes.encrypt_software(block_from_hex(pt)),
                block_from_hex(want)
            );
        }
    }

    #[test]
    fn nist_kat_ecb_keysbox() {
        // NIST AESAVS ECB KeySbox KATs, plaintext = 0.
        let vectors = [
            (
                "10a58869d74be5a374cf867cfb473859",
                "6d251e6944b051e04eaa6fb4dbf78465",
            ),
            (
                "caea65cdbb75e9169ecd22ebe6e54675",
                "6e29201190152df4ee058139def610bb",
            ),
            (
                "a2e2fa9baf7d20822ca9f0542f764a41",
                "c3b44b95d9d2f25670eee9a0de099fa3",
            ),
        ];
        for (key, want) in vectors {
            let aes = Aes128::new(block_from_hex(key));
            assert_eq!(aes.encrypt(Block::ZERO), block_from_hex(want));
            assert_eq!(aes.encrypt_software(Block::ZERO), block_from_hex(want));
        }
    }

    #[test]
    fn batch_matches_scalar_for_all_lengths() {
        let aes = Aes128::new(Block::new(0xfeed_beef));
        for n in 0..=19usize {
            let blocks: Vec<Block> = (0..n).map(|i| Block::new(i as u128 * 77 + 5)).collect();
            let mut batched = blocks.clone();
            aes.encrypt_blocks(&mut batched);
            for (ct, pt) in batched.iter().zip(&blocks) {
                assert_eq!(*ct, aes.encrypt(*pt), "n={n}");
                assert_eq!(*ct, aes.encrypt_software(*pt), "n={n}");
            }
        }
    }

    #[test]
    fn encrypt_batch_array_form() {
        let aes = Aes128::new(Block::new(9));
        let pts = [Block::new(1), Block::new(2), Block::new(3), Block::new(4)];
        let cts = aes.encrypt_batch(&pts);
        for (ct, pt) in cts.iter().zip(&pts) {
            assert_eq!(*ct, aes.encrypt(*pt));
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn aesni_matches_software_when_available() {
        if !AesBackend::aesni_available() {
            return;
        }
        let aes = Aes128::new(Block::new(0x5eed_cafe));
        let mut blocks: Vec<Block> = (0..37).map(|i| Block::new(i * 31 + 7)).collect();
        let reference: Vec<Block> = blocks.iter().map(|&b| aes.encrypt_software(b)).collect();
        // SAFETY: guarded by the runtime feature check above.
        #[allow(unsafe_code)]
        unsafe {
            crate::aesni::encrypt_blocks(&aes.round_keys, &mut blocks)
        };
        assert_eq!(blocks, reference);
    }

    mod parity_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The dispatched backend (whichever is active) and the portable
            /// software core agree on every ciphertext.
            #[test]
            fn backends_produce_identical_ciphertexts(
                key in any::<u128>(),
                pts in prop::collection::vec(any::<u128>(), 0..40),
            ) {
                let aes = Aes128::new(Block::new(key));
                let blocks: Vec<Block> = pts.iter().map(|&p| Block::new(p)).collect();
                let mut batched = blocks.clone();
                aes.encrypt_blocks(&mut batched);
                for (ct, pt) in batched.iter().zip(&blocks) {
                    prop_assert_eq!(*ct, aes.encrypt_software(*pt));
                    prop_assert_eq!(*ct, aes.encrypt(*pt));
                }
            }

            /// The AES-NI path itself (when the CPU has it) matches the
            /// software pipeline bit for bit, regardless of which backend
            /// the process selected.
            #[test]
            fn aesni_parity_under_random_keys(
                key in any::<u128>(),
                pts in prop::collection::vec(any::<u128>(), 1..40),
            ) {
                #[cfg(target_arch = "x86_64")]
                if AesBackend::aesni_available() {
                    let aes = Aes128::new(Block::new(key));
                    let mut blocks: Vec<Block> =
                        pts.iter().map(|&p| Block::new(p)).collect();
                    let reference: Vec<Block> =
                        blocks.iter().map(|&b| aes.encrypt_software(b)).collect();
                    // SAFETY: guarded by the runtime feature check above.
                    #[allow(unsafe_code)]
                    unsafe {
                        crate::aesni::encrypt_blocks(&aes.round_keys, &mut blocks)
                    };
                    prop_assert_eq!(blocks, reference);
                }
                let _ = (key, pts);
            }
        }
    }

    #[test]
    fn distinct_plaintexts_produce_distinct_ciphertexts() {
        let aes = Aes128::new(Block::new(42));
        let mut outputs = std::collections::HashSet::new();
        for i in 0..256u128 {
            assert!(outputs.insert(aes.encrypt(Block::new(i))));
        }
    }

    #[test]
    fn key_changes_ciphertext() {
        let pt = Block::new(7);
        assert_ne!(
            Aes128::new(Block::new(1)).encrypt(pt),
            Aes128::new(Block::new(2)).encrypt(pt)
        );
    }
}
