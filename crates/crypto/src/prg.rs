//! AES-CTR pseudo-random generator.
//!
//! Used wherever the protocol stack needs *expanded* randomness from a short
//! seed: the IKNP OT-extension column expansion, deterministic test-vector
//! generation, and the software baselines' label sampling. The hardware
//! label generator (ring-oscillator TRNG) lives in `max-rng`; this PRG is its
//! software-side counterpart.

use crate::{Aes128, Block};

/// A deterministic pseudo-random generator: AES-128 in counter mode.
///
/// # Example
///
/// ```
/// use max_crypto::{AesPrg, Block};
///
/// let mut a = AesPrg::new(Block::new(1));
/// let mut b = AesPrg::new(Block::new(1));
/// assert_eq!(a.next_block(), b.next_block());
/// ```
#[derive(Clone, Debug)]
pub struct AesPrg {
    cipher: Aes128,
    counter: u128,
}

impl AesPrg {
    /// Creates a PRG from a 128-bit seed.
    pub fn new(seed: Block) -> Self {
        AesPrg {
            cipher: Aes128::new(seed),
            counter: 0,
        }
    }

    /// Creates a PRG from a seed and a starting counter, so disjoint streams
    /// can be derived from one seed.
    pub fn with_stream(seed: Block, stream: u64) -> Self {
        AesPrg {
            cipher: Aes128::new(seed),
            counter: (stream as u128) << 64,
        }
    }

    /// The current CTR-mode counter (stream bits in the high half).
    ///
    /// Together with the seed this is the PRG's entire mutable state, so a
    /// stream can be persisted as `(seed, counter)` and rebuilt later with
    /// [`AesPrg::set_counter`] — the primitive behind durable OT-sender
    /// checkpoints.
    pub fn counter(&self) -> u128 {
        self.counter
    }

    /// Repositions the stream at an absolute counter value (as returned by
    /// [`AesPrg::counter`]). The cipher key is untouched: a fresh PRG from
    /// the same seed plus `set_counter` reproduces the original stream
    /// bit-identically from that point on.
    pub fn set_counter(&mut self, counter: u128) {
        self.counter = counter;
    }

    /// Returns the next 128 pseudo-random bits.
    pub fn next_block(&mut self) -> Block {
        let output = self.cipher.encrypt(Block::new(self.counter));
        self.counter = self.counter.wrapping_add(1);
        output
    }

    /// Fills `out` with pseudo-random blocks in one batched AES sweep.
    ///
    /// Consumes exactly `out.len()` counter values — bit-identical to
    /// calling [`AesPrg::next_block`] `out.len()` times.
    pub fn fill_blocks(&mut self, out: &mut [Block]) {
        for slot in out.iter_mut() {
            *slot = Block::new(self.counter);
            self.counter = self.counter.wrapping_add(1);
        }
        self.cipher.encrypt_blocks(out);
    }

    /// Returns `n` pseudo-random blocks.
    pub fn blocks(&mut self, n: usize) -> Vec<Block> {
        let mut out = vec![Block::ZERO; n];
        self.fill_blocks(&mut out);
        out
    }

    /// Fills `out` with pseudo-random bytes.
    ///
    /// Consumes one counter value per 16-byte chunk (including a trailing
    /// partial chunk), matching the block-at-a-time layout exactly.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut blocks = vec![Block::ZERO; out.len() / 16];
        let mut chunks = out.chunks_exact_mut(16);
        self.fill_blocks(&mut blocks);
        for (chunk, block) in (&mut chunks).zip(&blocks) {
            chunk.copy_from_slice(&block.to_bytes());
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let block = self.next_block().to_bytes();
            tail.copy_from_slice(&block[..tail.len()]);
        }
    }

    /// Returns `n` pseudo-random bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        let mut bits = Vec::with_capacity(n);
        'outer: loop {
            let block = self.next_block().bits();
            for i in 0..128 {
                if bits.len() == n {
                    break 'outer;
                }
                bits.push((block >> i) & 1 == 1);
            }
            if bits.len() == n {
                break;
            }
        }
        bits
    }

    /// Returns a pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.next_block().bits() as u64
    }

    /// Returns a pseudo-random value uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let sample = self.next_u64();
            if sample < zone {
                return sample % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = AesPrg::new(Block::new(77));
        let mut b = AesPrg::new(Block::new(77));
        for _ in 0..32 {
            assert_eq!(a.next_block(), b.next_block());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = AesPrg::new(Block::new(1));
        let mut b = AesPrg::new(Block::new(2));
        assert_ne!(a.next_block(), b.next_block());
    }

    #[test]
    fn streams_are_disjoint() {
        let mut a = AesPrg::with_stream(Block::new(9), 0);
        let mut b = AesPrg::with_stream(Block::new(9), 1);
        let a_blocks: Vec<_> = a.blocks(64);
        let b_blocks: Vec<_> = b.blocks(64);
        for block in &b_blocks {
            assert!(!a_blocks.contains(block));
        }
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut prg = AesPrg::new(Block::new(3));
        let mut buf = [0u8; 21];
        prg.fill_bytes(&mut buf);
        // First 16 bytes must match the first block.
        let mut prg2 = AesPrg::new(Block::new(3));
        assert_eq!(&buf[..16], &prg2.next_block().to_bytes());
    }

    #[test]
    fn fill_blocks_matches_next_block_stream() {
        for n in [0usize, 1, 7, 8, 9, 40] {
            let mut batched = AesPrg::new(Block::new(21));
            let mut scalar = AesPrg::new(Block::new(21));
            let mut out = vec![Block::ZERO; n];
            batched.fill_blocks(&mut out);
            for (i, block) in out.iter().enumerate() {
                assert_eq!(*block, scalar.next_block(), "n={n} block {i}");
            }
            // Both streams must resume at the same counter.
            assert_eq!(batched.next_block(), scalar.next_block());
        }
    }

    #[test]
    fn fill_bytes_matches_block_stream_layout() {
        for len in [0usize, 1, 15, 16, 17, 64, 65] {
            let mut batched = AesPrg::new(Block::new(23));
            let mut scalar = AesPrg::new(Block::new(23));
            let mut buf = vec![0u8; len];
            batched.fill_bytes(&mut buf);
            let mut expected = Vec::with_capacity(len);
            while expected.len() < len {
                let block = scalar.next_block().to_bytes();
                let take = (len - expected.len()).min(16);
                expected.extend_from_slice(&block[..take]);
            }
            assert_eq!(buf, expected, "len={len}");
            assert_eq!(batched.next_block(), scalar.next_block());
        }
    }

    #[test]
    fn bits_returns_exact_count() {
        let mut prg = AesPrg::new(Block::new(5));
        for n in [0, 1, 127, 128, 129, 300] {
            assert_eq!(prg.bits(n).len(), n);
        }
    }

    #[test]
    fn bits_roughly_balanced() {
        let mut prg = AesPrg::new(Block::new(11));
        let bits = prg.bits(100_000);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((45_000..55_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut prg = AesPrg::new(Block::new(13));
        for bound in [1, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(prg.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_hits_all_residues() {
        let mut prg = AesPrg::new(Block::new(17));
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[prg.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
