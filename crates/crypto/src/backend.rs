//! Runtime AES backend selection.
//!
//! [`Aes128`](crate::Aes128) has two interchangeable block-encryption
//! backends:
//!
//! * **AES-NI** — `std::arch::x86_64` intrinsics (`AESENC`/`AESENCLAST`),
//!   used when the CPU advertises the `aes` feature at runtime.
//! * **Software** — the portable const-derived S-box core, pipelining eight
//!   blocks in lockstep through each round so the compiler can interleave
//!   the per-block work.
//!
//! Both produce bit-identical ciphertexts (FIPS-197), so the choice is pure
//! throughput; the parity proptests in `aes.rs` pin this.
//!
//! Selection order:
//!
//! 1. The `force-software` cargo feature pins the software path at compile
//!    time (used by CI to exercise the fallback on AES-NI hosts).
//! 2. The `MAX_AES_BACKEND` environment variable (`software` or `aesni`,
//!    read once per process) overrides detection; requesting `aesni` on a
//!    CPU without the extension falls back to software.
//! 3. Otherwise `is_x86_feature_detected!("aes")` decides.

use std::sync::OnceLock;

/// Which block-encryption implementation [`crate::Aes128`] dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AesBackend {
    /// Hardware AES round instructions via `std::arch`.
    AesNi,
    /// Portable const-derived S-box core (8-block software pipeline).
    Software,
}

impl AesBackend {
    /// The backend active for this process (cached after the first call).
    pub fn active() -> AesBackend {
        static ACTIVE: OnceLock<AesBackend> = OnceLock::new();
        *ACTIVE.get_or_init(detect)
    }

    /// Stable lowercase name for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            AesBackend::AesNi => "aesni",
            AesBackend::Software => "software",
        }
    }

    /// Whether this process can run the AES-NI path at all (regardless of
    /// overrides). Drives the SIMD/software parity tests.
    pub fn aesni_available() -> bool {
        aesni_supported()
    }
}

#[cfg(target_arch = "x86_64")]
fn aesni_supported() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

#[cfg(not(target_arch = "x86_64"))]
fn aesni_supported() -> bool {
    false
}

fn detect() -> AesBackend {
    if cfg!(feature = "force-software") {
        return AesBackend::Software;
    }
    match std::env::var("MAX_AES_BACKEND").as_deref() {
        Ok("software") => return AesBackend::Software,
        Ok("aesni") => {
            return if aesni_supported() {
                AesBackend::AesNi
            } else {
                AesBackend::Software
            };
        }
        _ => {}
    }
    if aesni_supported() {
        AesBackend::AesNi
    } else {
        AesBackend::Software
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_is_stable() {
        assert_eq!(AesBackend::active(), AesBackend::active());
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(AesBackend::AesNi.label(), AesBackend::Software.label());
    }

    #[test]
    fn active_never_claims_missing_hardware() {
        if !AesBackend::aesni_available() {
            assert_eq!(AesBackend::active(), AesBackend::Software);
        }
    }
}
