//! Fixed-point arithmetic and dense linear algebra for the privacy-
//! preserving ML case studies.
//!
//! The paper's case studies assume "a 32 bit fixed point system" (§6):
//! real-valued model parameters and client features are quantized to
//! two's-complement integers with a fixed number of fractional bits before
//! entering the garbled MAC datapath. This crate provides:
//!
//! * [`FixedFormat`] — a `Q(total, frac)` format with quantization,
//!   dequantization and product rescaling;
//! * [`Vector`] / [`Matrix`] — dense containers of raw fixed-point values
//!   with the plaintext linear algebra the secure protocols are checked
//!   against;
//! * quantization-error accounting, so examples can report the accuracy
//!   cost of the fixed-point substitution.
//!
//! # Example
//!
//! ```
//! use max_fixed::{FixedFormat, Matrix, Vector};
//!
//! let q = FixedFormat::new(32, 16);
//! let m = Matrix::quantize(&[vec![1.5, -2.0], vec![0.25, 4.0]], q);
//! let v = Vector::quantize(&[2.0, 1.0], q);
//! let y = m.matvec(&v);
//! // Product raws carry 2× the fractional bits; rescale to compare.
//! assert!((y.dequantize_products(q)[0] - 1.0).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// A `Q(total_bits, frac_bits)` two's-complement fixed-point format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedFormat {
    /// Total bits including sign.
    pub total_bits: u32,
    /// Fractional bits.
    pub frac_bits: u32,
}

impl FixedFormat {
    /// The case studies' default: Q32.16.
    pub const Q32_16: FixedFormat = FixedFormat {
        total_bits: 32,
        frac_bits: 16,
    };

    /// Creates a format.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < total_bits ≤ 63` and `frac_bits < total_bits`.
    pub fn new(total_bits: u32, frac_bits: u32) -> Self {
        assert!(total_bits > 0 && total_bits <= 63, "unsupported total bits");
        assert!(frac_bits < total_bits, "fractional bits must fit");
        FixedFormat {
            total_bits,
            frac_bits,
        }
    }

    /// The quantization step `2^-frac_bits`.
    pub fn step(&self) -> f64 {
        (-(self.frac_bits as f64)).exp2()
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        ((1i64 << (self.total_bits - 1)) - 1) as f64 * self.step()
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(&self) -> f64 {
        -((1i64 << (self.total_bits - 1)) as f64) * self.step()
    }

    /// Quantizes `x` to the nearest representable raw value, saturating at
    /// the range limits.
    pub fn quantize(&self, x: f64) -> i64 {
        let scaled = (x / self.step()).round();
        let hi = (1i64 << (self.total_bits - 1)) - 1;
        let lo = -(1i64 << (self.total_bits - 1));
        (scaled as i64).clamp(lo, hi)
    }

    /// Dequantizes a raw value.
    pub fn dequantize(&self, raw: i64) -> f64 {
        raw as f64 * self.step()
    }

    /// Dequantizes the raw *product* of two values in this format (the
    /// product carries `2·frac_bits` fractional bits).
    pub fn dequantize_product(&self, raw: i64) -> f64 {
        raw as f64 * self.step() * self.step()
    }

    /// Worst-case absolute quantization error of one value.
    pub fn quantization_error_bound(&self) -> f64 {
        self.step() / 2.0
    }
}

/// A dense vector of raw fixed-point values.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vector {
    raw: Vec<i64>,
}

impl Vector {
    /// Wraps raw values.
    pub fn from_raw(raw: Vec<i64>) -> Self {
        Vector { raw }
    }

    /// Quantizes real values.
    pub fn quantize(values: &[f64], format: FixedFormat) -> Self {
        Vector {
            raw: values.iter().map(|&v| format.quantize(v)).collect(),
        }
    }

    /// The raw values.
    pub fn raw(&self) -> &[i64] {
        &self.raw
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Dequantizes as plain values.
    pub fn dequantize(&self, format: FixedFormat) -> Vec<f64> {
        self.raw.iter().map(|&r| format.dequantize(r)).collect()
    }

    /// Dequantizes as products (double fractional bits) — use on the output
    /// of [`Matrix::matvec`] / [`Vector::dot`].
    pub fn dequantize_products(&self, format: FixedFormat) -> Vec<f64> {
        self.raw
            .iter()
            .map(|&r| format.dequantize_product(r))
            .collect()
    }

    /// Exact integer dot product (the value the garbled MAC chain computes).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dot(&self, other: &Vector) -> i64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.raw.iter().zip(&other.raw).map(|(&a, &b)| a * b).sum()
    }
}

/// A dense row-major matrix of raw fixed-point values.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    raw: Vec<i64>,
}

impl Matrix {
    /// Creates a matrix from row-major raw values.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len() != rows * cols`.
    pub fn from_raw(rows: usize, cols: usize, raw: Vec<i64>) -> Self {
        assert_eq!(raw.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, raw }
    }

    /// Quantizes real rows.
    ///
    /// # Panics
    ///
    /// Panics on ragged input.
    pub fn quantize(rows: &[Vec<f64>], format: FixedFormat) -> Self {
        assert!(!rows.is_empty(), "matrix must be non-empty");
        let cols = rows[0].len();
        let mut raw = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged matrix");
            raw.extend(row.iter().map(|&v| format.quantize(v)));
        }
        Matrix {
            rows: rows.len(),
            cols,
            raw,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[i64] {
        &self.raw[r * self.cols..(r + 1) * self.cols]
    }

    /// All rows as owned vectors (the shape the secure server API takes).
    pub fn to_rows(&self) -> Vec<Vec<i64>> {
        (0..self.rows).map(|r| self.row(r).to_vec()).collect()
    }

    /// Exact integer matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &Vector) -> Vector {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        Vector {
            raw: (0..self.rows)
                .map(|r| self.row(r).iter().zip(v.raw()).map(|(&a, &b)| a * b).sum())
                .collect(),
        }
    }

    /// Exact integer matrix product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut raw = vec![0i64; self.rows * other.cols];
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.raw[i * self.cols + k];
                for j in 0..other.cols {
                    raw[i * other.cols + j] += a * other.raw[k * other.cols + j];
                }
            }
        }
        Matrix {
            rows: self.rows,
            cols: other.cols,
            raw,
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut raw = vec![0i64; self.raw.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                raw[c * self.rows + r] = self.raw[r * self.cols + c];
            }
        }
        Matrix {
            rows: self.cols,
            cols: self.rows,
            raw,
        }
    }

    /// Number of MAC operations a garbled evaluation of `self · v` costs.
    pub fn matvec_mac_count(&self) -> u64 {
        (self.rows * self.cols) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trips_within_step() {
        let q = FixedFormat::new(32, 16);
        for x in [-100.5, -0.001, 0.0, 0.123456, std::f64::consts::PI, 1000.0] {
            let raw = q.quantize(x);
            assert!((q.dequantize(raw) - x).abs() <= q.quantization_error_bound());
        }
    }

    #[test]
    fn quantize_saturates() {
        let q = FixedFormat::new(8, 4);
        assert_eq!(q.quantize(1e9), 127);
        assert_eq!(q.quantize(-1e9), -128);
        assert!((q.max_value() - 127.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn product_rescaling() {
        let q = FixedFormat::new(32, 16);
        let a = q.quantize(1.5);
        let b = q.quantize(-2.25);
        assert!((q.dequantize_product(a * b) - (1.5 * -2.25)).abs() < 1e-3);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Vector::from_raw(vec![1, -2, 3]);
        let b = Vector::from_raw(vec![4, 5, -6]);
        assert_eq!(a.dot(&b), 4 - 10 - 18);
    }

    #[test]
    fn matvec_and_matmul_agree() {
        let q = FixedFormat::new(16, 8);
        let m = Matrix::quantize(&[vec![1.0, 2.0], vec![-0.5, 0.25]], q);
        let v = Vector::quantize(&[3.0, -1.0], q);
        let as_vec = m.matvec(&v);
        let as_mat = m.matmul(&Matrix::from_raw(2, 1, v.raw().to_vec()));
        assert_eq!(as_vec.raw(), &as_mat.raw[..]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_raw(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().row(0), &[1, 4]);
    }

    #[test]
    fn matvec_accuracy_against_f64() {
        let q = FixedFormat::Q32_16;
        let rows = vec![vec![0.5, -1.25, 2.0], vec![3.5, 0.125, -0.75]];
        let xs = [1.5, 2.5, -0.5];
        let m = Matrix::quantize(&rows, q);
        let v = Vector::quantize(&xs, q);
        let got = m.matvec(&v).dequantize_products(q);
        for (g, row) in got.iter().zip(&rows) {
            let want: f64 = row.iter().zip(&xs).map(|(a, b)| a * b).sum();
            assert!((g - want).abs() < 1e-3, "{g} vs {want}");
        }
    }

    #[test]
    fn mac_count() {
        let m = Matrix::from_raw(3, 4, vec![0; 12]);
        assert_eq!(m.matvec_mac_count(), 12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_shape() {
        let m = Matrix::from_raw(1, 2, vec![1, 2]);
        m.matvec(&Vector::from_raw(vec![1, 2, 3]));
    }
}

/// A fixed-point scalar: a raw value tagged with its format, with checked
/// arithmetic that keeps track of fractional bits across multiplications.
///
/// # Example
///
/// ```
/// use max_fixed::{Fixed, FixedFormat};
///
/// let q = FixedFormat::new(32, 16);
/// let a = Fixed::from_f64(1.5, q);
/// let b = Fixed::from_f64(-2.0, q);
/// let product = a.mul_rescaled(b);
/// assert!((product.to_f64() - (-3.0)).abs() < 1e-3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fixed {
    raw: i64,
    format: FixedFormat,
}

impl Fixed {
    /// Quantizes a real value.
    pub fn from_f64(x: f64, format: FixedFormat) -> Self {
        Fixed {
            raw: format.quantize(x),
            format,
        }
    }

    /// Wraps a raw value already in `format`.
    pub fn from_raw(raw: i64, format: FixedFormat) -> Self {
        Fixed { raw, format }
    }

    /// The raw integer.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The format.
    pub fn format(self) -> FixedFormat {
        self.format
    }

    /// Back to a real value.
    pub fn to_f64(self) -> f64 {
        self.format.dequantize(self.raw)
    }

    /// Saturating addition (same format).
    ///
    /// # Panics
    ///
    /// Panics on format mismatch.
    pub fn saturating_add(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "format mismatch");
        let hi = (1i64 << (self.format.total_bits - 1)) - 1;
        let lo = -(1i64 << (self.format.total_bits - 1));
        Fixed {
            raw: self.raw.saturating_add(rhs.raw).clamp(lo, hi),
            format: self.format,
        }
    }

    /// Multiplication with rescaling back into the shared format (the
    /// hardware truncation stage): `(a·b) >> frac_bits`, saturated.
    ///
    /// # Panics
    ///
    /// Panics on format mismatch.
    pub fn mul_rescaled(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "format mismatch");
        let wide = self.raw as i128 * rhs.raw as i128;
        let rescaled = wide >> self.format.frac_bits;
        let hi = (1i128 << (self.format.total_bits - 1)) - 1;
        let lo = -(1i128 << (self.format.total_bits - 1));
        Fixed {
            raw: rescaled.clamp(lo, hi) as i64,
            format: self.format,
        }
    }

    /// Negation (saturating at the asymmetric minimum).
    pub fn saturating_neg(self) -> Fixed {
        let hi = (1i64 << (self.format.total_bits - 1)) - 1;
        Fixed {
            raw: self.raw.checked_neg().map_or(hi, |v| v.min(hi)),
            format: self.format,
        }
    }
}

#[cfg(test)]
mod fixed_scalar_tests {
    use super::*;

    #[test]
    fn round_trip_and_arithmetic() {
        let q = FixedFormat::new(16, 8);
        let a = Fixed::from_f64(2.5, q);
        let b = Fixed::from_f64(-1.25, q);
        assert!((a.to_f64() - 2.5).abs() < 1e-2);
        assert!((a.saturating_add(b).to_f64() - 1.25).abs() < 1e-2);
        assert!((a.mul_rescaled(b).to_f64() + 3.125).abs() < 2e-2);
    }

    #[test]
    fn addition_saturates() {
        let q = FixedFormat::new(8, 0);
        let big = Fixed::from_raw(120, q);
        assert_eq!(big.saturating_add(big).raw(), 127);
        let small = Fixed::from_raw(-120, q);
        assert_eq!(small.saturating_add(small).raw(), -128);
    }

    #[test]
    fn multiplication_saturates() {
        let q = FixedFormat::new(8, 2);
        let big = Fixed::from_raw(127, q); // 31.75
        assert_eq!(big.mul_rescaled(big).raw(), 127);
        let neg = Fixed::from_raw(-128, q);
        assert_eq!(neg.mul_rescaled(big).raw(), -128);
    }

    #[test]
    fn negation_handles_min() {
        let q = FixedFormat::new(8, 0);
        assert_eq!(Fixed::from_raw(-128, q).saturating_neg().raw(), 127);
        assert_eq!(Fixed::from_raw(5, q).saturating_neg().raw(), -5);
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn mixed_formats_rejected() {
        let a = Fixed::from_f64(1.0, FixedFormat::new(16, 8));
        let b = Fixed::from_f64(1.0, FixedFormat::new(16, 4));
        let _ = a.saturating_add(b);
    }
}
