//! Hand-rolled JSON rendering for telemetry snapshots.
//!
//! The workspace builds offline against vendored dependency stubs, and the
//! `serde` stub is marker-traits only — so machine-readable artifacts like
//! `BENCH_matvec.json` are produced by this small, dependency-free builder
//! instead. Object keys keep insertion order, strings are escaped per RFC
//! 8259, and non-finite floats degrade to `null` (JSON has no NaN).

use crate::Snapshot;
use std::fmt::Write as _;

/// A JSON value with ordered object keys.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number (u64 is the native telemetry unit).
    UInt(u64),
    /// Floating-point number; non-finite renders as `null`.
    Float(f64),
    /// String, escaped on render.
    Str(String),
    /// Array of values.
    Array(Vec<JsonValue>),
    /// Object with keys in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Appends `key: value` to an object (panics if `self` is not one).
    pub fn push(&mut self, key: &str, value: JsonValue) -> &mut Self {
        match self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value)),
            _ => panic!("JsonValue::push on a non-object"),
        }
        self
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Renders to a pretty-printed JSON string (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // `{:?}` for finite f64 always yields a valid JSON
                    // number (a decimal point or exponent is included).
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1, pretty);
                    item.write(out, indent + 1, pretty);
                }
                newline_indent(out, indent, pretty);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1, pretty);
                    write_escaped(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, indent + 1, pretty);
                }
                newline_indent(out, indent, pretty);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize, pretty: bool) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // RFC 8259 only *requires* escaping below 0x20, but span paths
            // and flight-recorder payloads can carry arbitrary peer-derived
            // bytes: DEL (a control character) and U+2028/U+2029 (legal in
            // JSON, line terminators in JavaScript — they break naive
            // embedding and some log pipelines) are escaped too, so every
            // emitted string is plain one-line ASCII-safe-ish text.
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Snapshot {
    /// Renders this snapshot as a [`JsonValue`] tree with five top-level
    /// sections: `counters`, `histograms`, `spans`, `timelines`, `traces`.
    pub fn to_json(&self) -> JsonValue {
        let mut counters = JsonValue::object();
        for c in &self.counters {
            counters.push(&c.name, JsonValue::UInt(c.value));
        }

        let mut histograms = JsonValue::object();
        for h in &self.histograms {
            let mut entry = JsonValue::object();
            entry
                .push("count", JsonValue::UInt(h.count))
                .push("sum", JsonValue::UInt(h.sum))
                .push("min", JsonValue::UInt(h.min))
                .push("max", JsonValue::UInt(h.max))
                .push(
                    "buckets",
                    JsonValue::Array(
                        h.buckets
                            .iter()
                            .map(|&(bucket, count)| {
                                JsonValue::Array(vec![
                                    JsonValue::UInt(u64::from(bucket)),
                                    JsonValue::UInt(count),
                                ])
                            })
                            .collect(),
                    ),
                );
            histograms.push(&h.name, entry);
        }

        let mut spans = JsonValue::object();
        for s in &self.spans {
            let mut entry = JsonValue::object();
            entry
                .push("count", JsonValue::UInt(s.count))
                .push("wall_ns", JsonValue::UInt(s.wall_ns))
                .push("cycles", JsonValue::UInt(s.cycles));
            spans.push(&s.path, entry);
        }

        let mut timelines = JsonValue::object();
        for t in &self.timelines {
            let mut lanes = JsonValue::object();
            for lane in t.lanes() {
                let mut entry = JsonValue::object();
                entry.push("busy_ns", JsonValue::UInt(t.lane_busy_ns(lane)));
                entry.push(
                    "intervals",
                    JsonValue::Array(
                        t.entries
                            .iter()
                            .filter(|e| e.lane == lane)
                            .map(|e| {
                                JsonValue::Array(vec![
                                    JsonValue::UInt(e.start_ns),
                                    JsonValue::UInt(e.end_ns),
                                ])
                            })
                            .collect(),
                    ),
                );
                lanes.push(&lane.to_string(), entry);
            }
            let mut entry = JsonValue::object();
            entry
                .push("makespan_ns", JsonValue::UInt(t.makespan_ns()))
                .push("lanes", lanes);
            timelines.push(&t.name, entry);
        }

        let mut traces = JsonValue::Array(Vec::new());
        if let JsonValue::Array(items) = &mut traces {
            for e in &self.traces {
                let mut entry = JsonValue::object();
                entry
                    .push("trace_id", JsonValue::Str(format!("{:032x}", e.trace_id)))
                    .push("span_id", JsonValue::Str(format!("{:016x}", e.span_id)))
                    .push("name", JsonValue::Str(e.name.clone()))
                    .push("start_ns", JsonValue::UInt(e.start_ns))
                    .push("end_ns", JsonValue::UInt(e.end_ns));
                items.push(entry);
            }
        }

        let mut root = JsonValue::object();
        root.push("counters", counters)
            .push("histograms", histograms)
            .push("spans", spans)
            .push("timelines", timelines)
            .push("traces", traces);
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, TimelineEntry};
    use std::time::Duration;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::UInt(42).render(), "42");
        assert_eq!(JsonValue::Float(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(3.0).render(), "3.0");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd\u{1}".to_string()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn hostile_strings_escape_to_single_line_json() {
        // Every C0 control character must come out escaped, never raw.
        let all_controls: String = (0u8..0x20).map(|b| b as char).collect();
        let rendered = JsonValue::Str(all_controls).render();
        assert!(!rendered.chars().any(|c| (c as u32) < 0x20));
        assert!(rendered.contains("\\u0000"));
        assert!(rendered.contains("\\u0007"));
        assert!(rendered.contains("\\u001f"));
        assert!(rendered.contains("\\n") && rendered.contains("\\r") && rendered.contains("\\t"));

        // DEL and the JavaScript line terminators are escaped too.
        assert_eq!(
            JsonValue::Str("a\u{7f}b\u{2028}c\u{2029}d".to_string()).render(),
            "\"a\\u007fb\\u2028c\\u2029d\""
        );

        // Quote/backslash bombs stay balanced: unescaped-quote count must
        // be exactly the two delimiters.
        let bomb = r#""""\\\"\" end"#;
        let rendered = JsonValue::Str(bomb.to_string()).render();
        let bytes = rendered.as_bytes();
        let unescaped_quotes = bytes
            .iter()
            .enumerate()
            .filter(|&(i, &b)| b == b'"' && (i == 0 || bytes[i - 1] != b'\\'))
            .count();
        assert_eq!(unescaped_quotes, 2, "rendered: {rendered}");

        // Multi-byte text passes through untouched.
        assert_eq!(
            JsonValue::Str("héllo ✓ 日本".to_string()).render(),
            "\"héllo ✓ 日本\""
        );
    }

    #[test]
    fn hostile_object_keys_escape_like_values() {
        let mut obj = JsonValue::object();
        obj.push("bad\"key\nwith\u{1}ctrl", JsonValue::UInt(1));
        assert_eq!(obj.render(), "{\"bad\\\"key\\nwith\\u0001ctrl\":1}");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let mut obj = JsonValue::object();
        obj.push("z", JsonValue::UInt(1))
            .push("a", JsonValue::UInt(2));
        assert_eq!(obj.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Array(vec![]).render(), "[]");
        assert_eq!(JsonValue::object().render(), "{}");
        assert_eq!(JsonValue::Array(vec![]).render_pretty(), "[]\n");
    }

    #[test]
    fn snapshot_round_trips_to_json() {
        let rec = Recorder::new();
        rec.add("gc.tables", 7);
        rec.record("frame_bytes", 96);
        rec.record_span("matvec/garble", Duration::from_nanos(1234), 56);
        rec.record_timeline(
            "units",
            TimelineEntry {
                lane: 0,
                start_ns: 10,
                end_ns: 40,
            },
        );
        let json = rec.snapshot().to_json().render();
        assert!(json.contains(r#""gc.tables":7"#));
        assert!(json.contains(r#""frame_bytes""#));
        assert!(json.contains(r#""matvec/garble":{"count":1,"wall_ns":1234,"cycles":56}"#));
        assert!(json.contains(r#""makespan_ns":30"#));
        assert!(json.contains(r#""busy_ns":30"#));

        // Pretty output parses the same structure (smoke: balanced braces).
        let pretty = rec.snapshot().to_json().render_pretty();
        assert_eq!(
            pretty.matches('{').count(),
            pretty.matches('}').count(),
            "balanced braces"
        );
    }
}
