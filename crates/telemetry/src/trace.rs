//! Distributed-trace identity: a [`TraceContext`] is minted by the client
//! from OS entropy (the same provenance as `max-serve` resume tokens),
//! carried over the wire in the protocol-v4 HELLO/RESUME frames, and echoed
//! back in STATS — so client-side spans (dial, backoff, RESUME) and
//! server-side spans (queue wait, garble, checkpoint deposits) recorded
//! into two *different* [`Recorder`](crate::Recorder)s can be stitched into
//! one per-job timeline by matching `trace_id`.
//!
//! The ids are correlation handles, not secrets: they are sent in the
//! clear, and nothing in the protocol derives key material from them. They
//! must however be unguessable enough not to collide across concurrent
//! clients, hence entropy rather than a counter, and never the invertible
//! `derive_seed` chain.

use std::io::Read;

/// Identity of one distributed trace: a 128-bit trace id shared by every
/// span in the trace, plus a 64-bit id for the minting span.
///
/// `TraceContext::none()` (all zeros) means "untraced": deterministic
/// transcript-parity tests use it so HELLO frames stay bit-comparable
/// across runs. [`TraceContext::mint`] draws both ids from OS entropy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit trace id; 0 means untraced.
    pub trace_id: u128,
    /// Span id of the minting (client root) span.
    pub span_id: u64,
}

impl TraceContext {
    /// The untraced context (all zeros); what deterministic tests put on
    /// the wire.
    pub const fn none() -> Self {
        TraceContext {
            trace_id: 0,
            span_id: 0,
        }
    }

    /// Builds a context from explicit ids (tests, wire decoding).
    pub const fn from_ids(trace_id: u128, span_id: u64) -> Self {
        TraceContext { trace_id, span_id }
    }

    /// Mints a fresh context from OS entropy (`/dev/urandom`, falling back
    /// to `RandomState`'s per-process SipHash keys). The trace id is never
    /// zero.
    pub fn mint() -> Self {
        let mut buf = [0u8; 24];
        let filled = std::fs::File::open("/dev/urandom")
            .and_then(|mut f| f.read_exact(&mut buf))
            .is_ok();
        if !filled {
            for (i, chunk) in buf.chunks_mut(8).enumerate() {
                chunk.copy_from_slice(&hash_entropy(i as u64).to_le_bytes());
            }
        }
        let mut trace = [0u8; 16];
        trace.copy_from_slice(&buf[..16]);
        let mut span = [0u8; 8];
        span.copy_from_slice(&buf[16..]);
        TraceContext {
            trace_id: u128::from_le_bytes(trace).max(1),
            span_id: u64::from_le_bytes(span),
        }
    }

    /// True when this context carries a real trace id.
    pub const fn is_traced(&self) -> bool {
        self.trace_id != 0
    }

    /// The trace id as the canonical 32-hex-digit string used in reports
    /// and flight-recorder dumps.
    pub fn trace_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }
}

/// Hashes `tweak` through `RandomState`'s per-process random SipHash keys;
/// the entropy fallback when `/dev/urandom` is unavailable.
fn hash_entropy(tweak: u64) -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write_u64(0x7ace_c0de ^ tweak);
    hasher.finish()
}

/// One completed span of a distributed trace, as stored in a
/// [`Snapshot`](crate::Snapshot).
///
/// Timestamps are nanoseconds in the *recording* `Recorder`'s timebase;
/// client and server recorders have different epochs, so stitching aligns
/// on shared wire events (HELLO send vs HELLO receive) rather than
/// comparing raw clocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace this event belongs to.
    pub trace_id: u128,
    /// Span id of the trace root (propagated, not per-event).
    pub span_id: u64,
    /// Event name, conventionally `side/what`, e.g. `client/redial` or
    /// `server/queue_wait`.
    pub name: String,
    /// Start, ns since the recording recorder's epoch.
    pub start_ns: u64,
    /// End, ns since the recording recorder's epoch (>= start).
    pub end_ns: u64,
}

impl TraceEvent {
    /// Duration of this span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_untraced_and_mint_is_traced() {
        assert!(!TraceContext::none().is_traced());
        let minted = TraceContext::mint();
        assert!(minted.is_traced());
        assert_ne!(minted.trace_id, 0);
    }

    #[test]
    fn minted_contexts_are_distinct() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        // 128 bits of entropy: a collision here means the source is broken.
        assert_ne!(a.trace_id, b.trace_id);
    }

    #[test]
    fn trace_hex_is_fixed_width() {
        let ctx = TraceContext::from_ids(0xABC, 7);
        assert_eq!(ctx.trace_hex().len(), 32);
        assert!(ctx.trace_hex().ends_with("abc"));
    }

    #[test]
    fn fallback_entropy_is_nonconstant() {
        // Different tweaks through the SipHash fallback must not collapse
        // to one value (RandomState keys are per-process random).
        assert_ne!(hash_entropy(1), hash_entropy(2));
    }

    #[test]
    fn duration_saturates() {
        let e = TraceEvent {
            trace_id: 1,
            span_id: 1,
            name: "x".into(),
            start_ns: 10,
            end_ns: 4,
        };
        assert_eq!(e.duration_ns(), 0);
    }
}
