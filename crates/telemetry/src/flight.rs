//! The flight recorder: a fixed-capacity ring buffer of structured events
//! (frame sends/receives, injected faults, breaker transitions, checkpoint
//! boundaries, deadline reaps) that `max-serve` attaches to every session.
//!
//! When a session ends in an error the service dumps the last N events as
//! JSON tagged with the session's trace id, so a chaos failure reads as a
//! narrative ("three frames, then `fault.cut`, then `session.error`")
//! instead of a fault seed to replay.
//!
//! The buffer is bounded and overwrite-oldest: logging is a short
//! mutex-guarded push/pop (the mutex is poison-recovering like
//! [`Recorder`](crate::Recorder)'s), so a wedged or panicking session can
//! neither grow memory without bound nor corrupt the recorder.

use crate::report::JsonValue;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One structured event in a [`FlightRecorder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the recorder was created.
    pub at_ns: u64,
    /// Event kind, a stable dotted name: `frame.send`, `frame.recv`,
    /// `fault.cut`, `breaker.shed`, `checkpoint.saved`, `deadline.reap`,
    /// `session.error`, …
    pub kind: &'static str,
    /// Freeform detail (frame kind, fault direction, error text). Rendered
    /// through the escaping JSON writer, so hostile bytes are safe here.
    pub detail: String,
    /// Numeric payload (frame size in bytes, elements done, delay ms, …).
    pub value: u64,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

/// Fixed-capacity ring buffer of [`FlightEvent`]s.
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `capacity` events
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            epoch: Instant::now(),
            capacity,
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Nanoseconds since this recorder was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Appends one event, evicting the oldest when full.
    pub fn log(&self, kind: &'static str, detail: impl Into<String>, value: u64) {
        let event = FlightEvent {
            at_ns: self.now_ns(),
            kind,
            detail: detail.into(),
            value,
        };
        let mut ring = self.lock();
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when nothing has been logged (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events evicted so far to make room.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders the retained events as a JSON object tagged with
    /// `trace_id` (32 hex digits), suitable for an error-session dump.
    pub fn dump_json(&self, trace_id: u128) -> JsonValue {
        let ring = self.lock();
        let mut events = JsonValue::Array(Vec::new());
        if let JsonValue::Array(items) = &mut events {
            for e in &ring.events {
                let mut obj = JsonValue::object();
                obj.push("at_ns", JsonValue::UInt(e.at_ns))
                    .push("kind", JsonValue::Str(e.kind.to_string()))
                    .push("detail", JsonValue::Str(e.detail.clone()))
                    .push("value", JsonValue::UInt(e.value));
                items.push(obj);
            }
        }
        let mut dump = JsonValue::object();
        dump.push("schema", JsonValue::Str("maxelerator-flight-v1".into()))
            .push("trace_id", JsonValue::Str(format!("{trace_id:032x}")))
            .push("capacity", JsonValue::UInt(self.capacity as u64))
            .push("dropped", JsonValue::UInt(ring.dropped))
            .push("events", events);
        dump
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_most_recent() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.log("frame.send", format!("raw#{i}"), i);
        }
        let events = fr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(events[0].value, 2);
        assert_eq!(events[2].value, 4);
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let fr = FlightRecorder::new(0);
        fr.log("a", "", 1);
        fr.log("b", "", 2);
        assert_eq!(fr.capacity(), 1);
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.events()[0].kind, "b");
    }

    #[test]
    fn dump_names_the_trace_and_final_events() {
        let fr = FlightRecorder::new(8);
        fr.log("frame.recv", "blocks", 96);
        fr.log("fault.cut", "send", 7);
        fr.log("session.error", "disconnected", 0);
        let json = fr.dump_json(0xDEAD_BEEF).render();
        assert!(json.contains("\"maxelerator-flight-v1\""));
        assert!(json.contains("\"000000000000000000000000deadbeef\""));
        assert!(json.contains("\"fault.cut\""));
        assert!(json.contains("\"session.error\""));
        assert!(json.contains("\"dropped\":0"));
    }

    #[test]
    fn hostile_detail_strings_render_as_valid_json() {
        let fr = FlightRecorder::new(4);
        fr.log("session.error", "quote\" slash\\ ctrl\u{1}\n", 0);
        let json = fr.dump_json(1).render();
        assert!(json.contains("quote\\\" slash\\\\ ctrl\\u0001\\n"));
    }

    #[test]
    fn is_empty_reflects_logging() {
        let fr = FlightRecorder::new(2);
        assert!(fr.is_empty());
        fr.log("x", "", 0);
        assert!(!fr.is_empty());
    }
}
