//! Workspace-wide telemetry: the measurement substrate the paper's own
//! evaluation (Tables 1–3, §4.3) is an exercise in — cycles per garbled
//! table, communication volume, per-segment utilization — generalized into
//! four primitives every crate in the workspace can feed:
//!
//! * **Counters** — monotonic `u64` tallies (gates garbled, bytes moved,
//!   AES invocations, OT rounds).
//! * **Histograms** — fixed power-of-two buckets for value distributions
//!   (per-unit busy time, frame sizes).
//! * **Spans** — hierarchical wall-clock sections with optional modeled
//!   fabric cycles attached, so measured host time and modeled hardware
//!   time travel together (`secure_matvec/garble` holds both).
//! * **Timelines** — per-lane busy intervals (one lane per accelerator
//!   unit), from which busy/idle attribution falls out.
//!
//! # Two ways in
//!
//! 1. **The facade** ([`install`], [`counter_add`], [`span`], …) is the
//!    instrumentation layer threaded through the hot paths of `max-gc`,
//!    `max-ot`, `max-rng` and `maxelerator`. It is a **compile-time no-op**
//!    unless this crate's `enabled` feature is on (downstream crates expose
//!    it as their `telemetry` feature), so default builds pay nothing.
//! 2. **Direct [`Recorder`] use** is always compiled: benches and tests
//!    construct a local recorder, feed it explicitly, and snapshot it —
//!    no feature flag required.
//!
//! A [`Snapshot`] is plain data: deterministic ordering, value-equality,
//! and a canonical JSON rendering (see [`report`]) for machine-readable
//! perf artifacts like `BENCH_matvec.json`.
//!
//! # Example
//!
//! ```
//! use max_telemetry::Recorder;
//!
//! let rec = Recorder::new();
//! rec.add("gc.tables", 3);
//! rec.record("frame_bytes", 96);
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("gc.tables"), 3);
//! assert!(snap.to_json().render().contains("\"gc.tables\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod flight;
pub mod report;
pub mod trace;

pub use flight::{FlightEvent, FlightRecorder};
pub use trace::{TraceContext, TraceEvent};

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket (power-of-two) histogram with count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of `value`: 0 for 0, otherwise `floor(log2(value)) + 1`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Estimated `p`-th percentile (0–100) of the recorded values.
    ///
    /// Power-of-two buckets only retain magnitudes, so the estimate is the
    /// inclusive upper bound of the bucket holding the requested rank,
    /// clamped to the exact observed `[min, max]`. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_from_buckets(
            self.counts.iter().enumerate().map(|(i, &c)| (i as u32, c)),
            self.count,
            if self.count == 0 { 0 } else { self.min },
            self.max,
            p,
        )
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }
}

/// Inclusive upper bound of histogram bucket `i` (see [`bucket_index`]).
fn bucket_upper_bound(i: u32) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

fn percentile_from_buckets(
    buckets: impl IntoIterator<Item = (u32, u64)>,
    count: u64,
    min: u64,
    max: u64,
    p: f64,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let p = p.clamp(0.0, 100.0);
    // Nearest-rank definition: the smallest value v such that at least
    // ceil(p/100 * count) observations are <= v.
    let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, c) in buckets {
        cumulative = cumulative.saturating_add(c);
        if cumulative >= rank {
            return bucket_upper_bound(i).clamp(min, max);
        }
    }
    max
}

/// Aggregated statistics of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct SpanStat {
    count: u64,
    wall_ns: u64,
    cycles: u64,
}

/// One busy interval on a timeline lane, in nanoseconds since the
/// recorder's epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Lane id (e.g. accelerator unit index).
    pub lane: u32,
    /// Interval start, ns since recorder creation.
    pub start_ns: u64,
    /// Interval end, ns since recorder creation.
    pub end_ns: u64,
}

impl TimelineEntry {
    /// Busy duration of this interval.
    pub fn busy_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<String, SpanStat>,
    timelines: BTreeMap<&'static str, Vec<TimelineEntry>>,
    traces: Vec<TraceEvent>,
}

/// The telemetry sink: thread-safe, append-only, snapshot-on-demand.
///
/// All mutation goes through `&self`; a single mutex guards the maps (the
/// facade is the hot path only when the `enabled` feature is on, and the
/// workloads this repository measures are simulation-bound, not
/// telemetry-bound).
pub struct Recorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates an empty recorder; its creation instant is the timeline
    /// epoch.
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Telemetry must never poison the protocol: a panicking holder
        // cannot corrupt append-only maps, so recover the guard.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `value` to counter `name`.
    pub fn add(&self, name: &'static str, value: u64) {
        *self.lock().counters.entry(name).or_insert(0) += value;
    }

    /// Records one observation into histogram `name`.
    pub fn record(&self, name: &'static str, value: u64) {
        self.lock()
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Records one completion of span `path` (`/`-separated hierarchy).
    pub fn record_span(&self, path: &str, wall: Duration, cycles: u64) {
        let mut inner = self.lock();
        let stat = inner.spans.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.wall_ns = stat.wall_ns.saturating_add(wall.as_nanos() as u64);
        stat.cycles += cycles;
    }

    /// Appends a busy interval to timeline `name`.
    pub fn record_timeline(&self, name: &'static str, entry: TimelineEntry) {
        self.lock().timelines.entry(name).or_default().push(entry);
    }

    /// Appends one distributed-trace event (timestamps in this recorder's
    /// `now_ns` timebase).
    pub fn record_trace_event(&self, ctx: TraceContext, name: &str, start_ns: u64, end_ns: u64) {
        self.lock().traces.push(TraceEvent {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            name: name.to_string(),
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    }

    /// Appends a zero-duration trace event stamped `now_ns`.
    pub fn record_trace_instant(&self, ctx: TraceContext, name: &str) {
        let now = self.now_ns();
        self.record_trace_event(ctx, name, now, now);
    }

    /// Opens a trace span under `ctx`; the event is recorded when the
    /// returned guard drops.
    pub fn trace_span(&self, ctx: TraceContext, name: &'static str) -> TraceSpanGuard<'_> {
        TraceSpanGuard {
            rec: self,
            ctx,
            name,
            start_ns: self.now_ns(),
        }
    }

    /// Nanoseconds since this recorder was created (timeline timebase).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Point-in-time copy of everything recorded so far, deterministically
    /// ordered (counters/histograms/spans by name, timeline entries by
    /// insertion then lane-sorted).
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(&name, &value)| CounterSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| h.snapshot(name))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(path, stat)| SpanSnapshot {
                    path: path.clone(),
                    count: stat.count,
                    wall_ns: stat.wall_ns,
                    cycles: stat.cycles,
                })
                .collect(),
            timelines: inner
                .timelines
                .iter()
                .map(|(&name, entries)| {
                    let mut entries = entries.clone();
                    entries.sort_by_key(|e| (e.lane, e.start_ns, e.end_ns));
                    TimelineSnapshot {
                        name: name.to_string(),
                        entries,
                    }
                })
                .collect(),
            traces: {
                let mut traces = inner.traces.clone();
                traces.sort_by(|a, b| {
                    (a.trace_id, a.start_ns, a.end_ns, &a.name)
                        .cmp(&(b.trace_id, b.start_ns, b.end_ns, &b.name))
                });
                traces
            },
        }
    }
}

/// RAII guard recording a [`TraceEvent`] into a [`Recorder`] on drop.
#[must_use = "a trace span records when dropped"]
pub struct TraceSpanGuard<'r> {
    rec: &'r Recorder,
    ctx: TraceContext,
    name: &'static str,
    start_ns: u64,
}

impl Drop for TraceSpanGuard<'_> {
    fn drop(&mut self) {
        self.rec
            .record_trace_event(self.ctx, self.name, self.start_ns, self.rec.now_ns());
    }
}

/// One counter in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty buckets as `(bucket index, count)`; see [`bucket_index`].
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Estimated `p`-th percentile (0–100); see [`Histogram::percentile`].
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_from_buckets(
            self.buckets.iter().copied(),
            self.count,
            self.min,
            self.max,
            p,
        )
    }
}

/// One span path in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `/`-separated span path, e.g. `secure_matvec/garble`.
    pub path: String,
    /// Completions recorded.
    pub count: u64,
    /// Total wall-clock across completions, nanoseconds.
    pub wall_ns: u64,
    /// Total modeled fabric cycles attached via [`SpanGuard::add_cycles`].
    pub cycles: u64,
}

/// One timeline in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineSnapshot {
    /// Timeline name.
    pub name: String,
    /// Busy intervals, sorted by `(lane, start, end)`.
    pub entries: Vec<TimelineEntry>,
}

impl TimelineSnapshot {
    /// Total busy time of `lane` in nanoseconds.
    pub fn lane_busy_ns(&self, lane: u32) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.lane == lane)
            .map(TimelineEntry::busy_ns)
            .sum()
    }

    /// Distinct lanes present.
    pub fn lanes(&self) -> Vec<u32> {
        let mut lanes: Vec<u32> = self.entries.iter().map(|e| e.lane).collect();
        lanes.dedup();
        lanes
    }

    /// Makespan: latest end minus earliest start across all lanes.
    pub fn makespan_ns(&self) -> u64 {
        let start = self.entries.iter().map(|e| e.start_ns).min().unwrap_or(0);
        let end = self.entries.iter().map(|e| e.end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    }
}

/// Deterministic, value-comparable copy of a [`Recorder`]'s contents.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All span paths, sorted by path.
    pub spans: Vec<SpanSnapshot>,
    /// All timelines, sorted by name.
    pub timelines: Vec<TimelineSnapshot>,
    /// All distributed-trace events, sorted by `(trace id, start, end,
    /// name)`.
    pub traces: Vec<TraceEvent>,
}

impl Snapshot {
    /// Value of counter `name`, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Span statistics at `path`, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Timeline `name`, if recorded.
    pub fn timeline(&self, name: &str) -> Option<&TimelineSnapshot> {
        self.timelines.iter().find(|t| t.name == name)
    }

    /// All trace events belonging to `trace_id`, in start order.
    pub fn trace_events(&self, trace_id: u128) -> Vec<&TraceEvent> {
        self.traces
            .iter()
            .filter(|e| e.trace_id == trace_id)
            .collect()
    }
}

/// True when the facade records (the `enabled` feature is on).
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

// ---------------------------------------------------------------------------
// The global facade: real when `enabled`, inlined-away otherwise.
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod facade {
    use super::{Recorder, TimelineEntry};
    use std::cell::RefCell;
    use std::sync::{Arc, RwLock};
    use std::time::Instant;

    static GLOBAL: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

    thread_local! {
        static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    fn read_global() -> Option<Arc<Recorder>> {
        GLOBAL
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .cloned()
    }

    /// Installs `recorder` as the global sink, replacing any previous one.
    pub fn install(recorder: Arc<Recorder>) {
        *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    }

    /// Removes the global sink; subsequent facade calls are dropped.
    pub fn uninstall() {
        *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Adds `value` to global counter `name`.
    #[inline]
    pub fn counter_add(name: &'static str, value: u64) {
        if let Some(rec) = read_global() {
            rec.add(name, value);
        }
    }

    /// Records `value` into global histogram `name`.
    #[inline]
    pub fn histogram_record(name: &'static str, value: u64) {
        if let Some(rec) = read_global() {
            rec.record(name, value);
        }
    }

    /// RAII wall-clock span; nested spans form `/`-separated paths per
    /// thread.
    #[must_use = "a span records when dropped"]
    pub struct SpanGuard {
        state: Option<(String, Instant, u64)>,
    }

    /// Opens a span named `name` under the current thread's span stack.
    pub fn span(name: &'static str) -> SpanGuard {
        if read_global().is_none() {
            return SpanGuard { state: None };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        SpanGuard {
            state: Some((path, Instant::now(), 0)),
        }
    }

    impl SpanGuard {
        /// Attaches modeled fabric cycles to this span completion.
        pub fn add_cycles(&mut self, cycles: u64) {
            if let Some((_, _, total)) = &mut self.state {
                *total += cycles;
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some((path, started, cycles)) = self.state.take() {
                SPAN_STACK.with(|stack| {
                    stack.borrow_mut().pop();
                });
                if let Some(rec) = read_global() {
                    rec.record_span(&path, started.elapsed(), cycles);
                }
            }
        }
    }

    /// RAII busy interval on timeline `name`, lane `lane`.
    #[must_use = "a timeline interval records when dropped"]
    pub struct TimelineGuard {
        state: Option<(Arc<Recorder>, &'static str, u32, u64)>,
    }

    /// Opens a busy interval on `name`/`lane`, closed when the guard drops.
    pub fn timeline(name: &'static str, lane: u32) -> TimelineGuard {
        match read_global() {
            Some(rec) => {
                let start = rec.now_ns();
                TimelineGuard {
                    state: Some((rec, name, lane, start)),
                }
            }
            None => TimelineGuard { state: None },
        }
    }

    impl Drop for TimelineGuard {
        fn drop(&mut self) {
            if let Some((rec, name, lane, start_ns)) = self.state.take() {
                let end_ns = rec.now_ns();
                rec.record_timeline(
                    name,
                    TimelineEntry {
                        lane,
                        start_ns,
                        end_ns,
                    },
                );
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod facade {
    //! Disabled facade: every entry point is an empty inline function, so
    //! instrumented call sites compile to nothing.
    use super::Recorder;
    use std::sync::Arc;

    /// No-op (telemetry disabled at compile time).
    #[inline(always)]
    pub fn install(_recorder: Arc<Recorder>) {}

    /// No-op (telemetry disabled at compile time).
    #[inline(always)]
    pub fn uninstall() {}

    /// No-op (telemetry disabled at compile time).
    #[inline(always)]
    pub fn counter_add(_name: &'static str, _value: u64) {}

    /// No-op (telemetry disabled at compile time).
    #[inline(always)]
    pub fn histogram_record(_name: &'static str, _value: u64) {}

    /// Zero-sized stand-in for the enabled span guard.
    #[must_use = "a span records when dropped"]
    pub struct SpanGuard;

    impl SpanGuard {
        /// No-op (telemetry disabled at compile time).
        #[inline(always)]
        pub fn add_cycles(&mut self, _cycles: u64) {}
    }

    /// No-op (telemetry disabled at compile time).
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// Zero-sized stand-in for the enabled timeline guard.
    #[must_use = "a timeline interval records when dropped"]
    pub struct TimelineGuard;

    /// No-op (telemetry disabled at compile time).
    #[inline(always)]
    pub fn timeline(_name: &'static str, _lane: u32) -> TimelineGuard {
        TimelineGuard
    }
}

pub use facade::{
    counter_add, histogram_record, install, span, timeline, uninstall, SpanGuard, TimelineGuard,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let rec = Recorder::new();
        rec.add("a", 2);
        rec.add("a", 3);
        rec.add("b", 1);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats() {
        let rec = Recorder::new();
        for v in [0u64, 1, 1, 7, 100] {
            rec.record("h", v);
        }
        let snap = rec.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 109);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        // zeros → bucket 0; 1,1 → bucket 1; 7 → bucket 3; 100 → bucket 7.
        assert_eq!(h.buckets, vec![(0, 1), (1, 2), (3, 1), (7, 1)]);
    }

    #[test]
    fn percentiles_estimate_from_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        // Estimates are bucket upper bounds clamped to [min, max]: the
        // p50 rank (50th of 100) lands in bucket [32, 64) -> 63; p95 and
        // p99 land in the top bucket [64, 128) which clamps to max=100.
        assert_eq!(h.percentile(50.0), 63);
        assert_eq!(h.percentile(95.0), 100);
        assert_eq!(h.percentile(99.0), 100);
        assert_eq!(h.percentile(0.0), 1, "p0 clamps to min");
        assert_eq!(h.percentile(100.0), 100);
        // Estimate never undershoots the exact percentile's bucket.
        assert!(h.percentile(50.0) >= 50);

        // Snapshot agrees with the live histogram.
        let snap = h.snapshot("lat");
        for p in [0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            assert_eq!(snap.percentile(p), h.percentile(p), "p{p}");
        }
    }

    #[test]
    fn percentile_of_constant_distribution_is_exact() {
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.record(42);
        }
        for p in [1.0, 50.0, 99.0] {
            assert_eq!(h.percentile(p), 42);
        }
    }

    #[test]
    fn percentile_handles_out_of_range_p() {
        let mut h = Histogram::default();
        h.record(5);
        h.record(500);
        assert_eq!(h.percentile(-3.0), h.percentile(0.0));
        assert_eq!(h.percentile(250.0), h.percentile(100.0));
        assert_eq!(h.percentile(100.0), 500);
    }

    #[test]
    fn trace_events_snapshot_sorted_and_filterable() {
        let rec = Recorder::new();
        let a = TraceContext::from_ids(7, 1);
        let b = TraceContext::from_ids(3, 2);
        rec.record_trace_event(a, "client/redial", 200, 300);
        rec.record_trace_event(b, "other", 0, 1);
        rec.record_trace_event(a, "client/connect", 0, 100);
        {
            let _g = rec.trace_span(a, "client/job");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.traces.len(), 4);
        // Sorted by (trace_id, start): trace 3 first, then trace 7 events
        // in start order.
        assert_eq!(snap.traces[0].trace_id, 3);
        assert_eq!(snap.traces[1].name, "client/connect");
        assert_eq!(snap.traces[2].name, "client/redial");
        let mine = snap.trace_events(7);
        assert_eq!(mine.len(), 3);
        assert!(mine.iter().all(|e| e.trace_id == 7 && e.span_id == 1));
        assert_eq!(snap.trace_events(99).len(), 0);
        // The guard-recorded span has end >= start.
        assert!(mine[2].end_ns >= mine[2].start_ns);
    }

    #[test]
    fn trace_event_end_is_clamped_to_start() {
        let rec = Recorder::new();
        rec.record_trace_event(TraceContext::from_ids(1, 1), "x", 50, 10);
        assert_eq!(rec.snapshot().traces[0].end_ns, 50);
    }

    #[test]
    fn spans_aggregate_by_path() {
        let rec = Recorder::new();
        rec.record_span("a/b", Duration::from_nanos(10), 5);
        rec.record_span("a/b", Duration::from_nanos(30), 7);
        rec.record_span("a", Duration::from_nanos(100), 0);
        let snap = rec.snapshot();
        let ab = snap.span("a/b").unwrap();
        assert_eq!(ab.count, 2);
        assert_eq!(ab.wall_ns, 40);
        assert_eq!(ab.cycles, 12);
        assert_eq!(snap.span("a").unwrap().count, 1);
        assert!(snap.span("a/missing").is_none());
    }

    #[test]
    fn timeline_busy_and_makespan() {
        let rec = Recorder::new();
        for (lane, s, e) in [(1u32, 50u64, 90u64), (0, 0, 100), (1, 10, 30)] {
            rec.record_timeline(
                "units",
                TimelineEntry {
                    lane,
                    start_ns: s,
                    end_ns: e,
                },
            );
        }
        let snap = rec.snapshot();
        let tl = snap.timeline("units").unwrap();
        assert_eq!(tl.lane_busy_ns(0), 100);
        assert_eq!(tl.lane_busy_ns(1), 60);
        assert_eq!(tl.makespan_ns(), 100);
        assert_eq!(tl.lanes(), vec![0, 1]);
        // Entries are sorted deterministically.
        assert_eq!(tl.entries[0].lane, 0);
        assert_eq!(tl.entries[1], {
            TimelineEntry {
                lane: 1,
                start_ns: 10,
                end_ns: 30,
            }
        });
    }

    #[test]
    fn snapshot_is_deterministic_across_threads() {
        // 8 threads hammer the same counters and histograms; the final
        // snapshot must be the exact deterministic aggregate regardless of
        // interleaving.
        let rec = Arc::new(Recorder::new());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        rec.add("thread.adds", 1);
                        rec.add("thread.sum", i);
                        rec.record("thread.hist", i % 16);
                        rec.record_span("thread/work", Duration::from_nanos(i), t);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("thread.adds"), 8 * 500);
        assert_eq!(snap.counter("thread.sum"), 8 * (499 * 500 / 2));
        let h = snap.histogram("thread.hist").unwrap();
        assert_eq!(h.count, 8 * 500);
        let expected_sum: u64 = (0..500u64).map(|i| i % 16).sum::<u64>() * 8;
        assert_eq!(h.sum, expected_sum);
        // Every thread saw the same value distribution, so buckets are a
        // fixed function of the inputs (bucket 1 holds exactly value 1).
        let ones = h.buckets.iter().find(|(b, _)| *b == 1).unwrap().1;
        let expected_ones = (0..500u64).filter(|i| i % 16 == 1).count() as u64 * 8;
        assert_eq!(ones, expected_ones);
        let span = snap.span("thread/work").unwrap();
        assert_eq!(span.count, 8 * 500);
        assert_eq!(span.cycles, 500 * (0..8u64).sum::<u64>());

        // Two snapshots of the same recorder are value-identical.
        assert_eq!(snap, rec.snapshot());
    }

    #[test]
    fn facade_is_safe_with_no_recorder_installed() {
        uninstall();
        counter_add("nobody.listens", 1);
        histogram_record("nobody.listens", 2);
        let mut guard = span("nobody");
        guard.add_cycles(3);
        drop(guard);
        drop(timeline("nobody", 0));
    }

    #[test]
    fn enabled_matches_feature() {
        assert_eq!(enabled(), cfg!(feature = "enabled"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn facade_records_into_installed_recorder() {
        let rec = Arc::new(Recorder::new());
        install(Arc::clone(&rec));
        counter_add("facade.count", 4);
        histogram_record("facade.hist", 9);
        {
            let mut outer = span("outer");
            outer.add_cycles(11);
            let _inner = span("inner");
            drop(timeline("facade.units", 2));
        }
        uninstall();
        counter_add("facade.count", 100); // dropped: nothing installed
        let snap = rec.snapshot();
        assert_eq!(snap.counter("facade.count"), 4);
        assert_eq!(snap.histogram("facade.hist").unwrap().count, 1);
        assert_eq!(snap.span("outer").unwrap().cycles, 11);
        assert!(snap.span("outer/inner").is_some());
        let tl = snap.timeline("facade.units").unwrap();
        assert_eq!(tl.entries.len(), 1);
        assert_eq!(tl.entries[0].lane, 2);
    }
}
