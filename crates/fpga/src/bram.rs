//! On-chip table memory (§5.1): one block per GC core with a private write
//! port; a single shared read port drains everything to the PCIe bridge.

/// One BRAM block: bounded FIFO with a single write port (one write per
/// cycle, enforced by [`MemorySystem`]).
#[derive(Clone, Debug)]
pub struct BramBlock {
    capacity_bytes: usize,
    queue: std::collections::VecDeque<Vec<u8>>,
    occupied_bytes: usize,
    writes: u64,
    overflows: u64,
}

impl BramBlock {
    /// Creates a block holding up to `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        BramBlock {
            capacity_bytes,
            queue: std::collections::VecDeque::new(),
            occupied_bytes: 0,
            writes: 0,
            overflows: 0,
        }
    }

    /// Writes one record; returns false (and counts an overflow) when the
    /// block is full — in hardware this would stall the core.
    pub fn write(&mut self, record: Vec<u8>) -> bool {
        if self.occupied_bytes + record.len() > self.capacity_bytes {
            self.overflows += 1;
            return false;
        }
        self.occupied_bytes += record.len();
        self.queue.push_back(record);
        self.writes += 1;
        true
    }

    /// Pops the oldest record.
    pub fn read(&mut self) -> Option<Vec<u8>> {
        let record = self.queue.pop_front()?;
        self.occupied_bytes -= record.len();
        Some(record)
    }

    /// Bytes currently stored.
    pub fn occupied_bytes(&self) -> usize {
        self.occupied_bytes
    }

    /// Total successful writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Rejected writes (would-be stalls).
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// The full on-chip memory: one [`BramBlock`] per core, single read port.
///
/// "Since each core has its own block in the memory with an individual input
/// port, logically it can be visualized as each core having its own memory
/// block" (§5.1). The single output port means at most one record leaves per
/// cycle.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    blocks: Vec<BramBlock>,
    /// Round-robin read pointer of the shared output port.
    read_cursor: usize,
    /// Write-port guard: which blocks have written this cycle.
    written_this_cycle: Vec<bool>,
}

impl MemorySystem {
    /// Creates `cores` blocks of `capacity_bytes` each.
    pub fn new(cores: usize, capacity_bytes: usize) -> Self {
        MemorySystem {
            blocks: (0..cores).map(|_| BramBlock::new(capacity_bytes)).collect(),
            read_cursor: 0,
            written_this_cycle: vec![false; cores],
        }
    }

    /// Number of blocks (cores).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Writes a record through core `core`'s private port.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or the core already wrote this
    /// cycle (a scheduling bug: each port accepts one write per cycle).
    pub fn write(&mut self, core: usize, record: Vec<u8>) -> bool {
        assert!(core < self.blocks.len(), "core {core} out of range");
        assert!(
            !self.written_this_cycle[core],
            "core {core} wrote twice in one cycle"
        );
        self.written_this_cycle[core] = true;
        self.blocks[core].write(record)
    }

    /// Reads one record through the shared output port (round-robin over
    /// non-empty blocks). Returns `None` when everything is drained.
    pub fn read_one(&mut self) -> Option<(usize, Vec<u8>)> {
        for offset in 0..self.blocks.len() {
            let idx = (self.read_cursor + offset) % self.blocks.len();
            if let Some(record) = self.blocks[idx].read() {
                self.read_cursor = (idx + 1) % self.blocks.len();
                return Some((idx, record));
            }
        }
        None
    }

    /// Ends the cycle: re-arms every write port.
    pub fn end_cycle(&mut self) {
        self.written_this_cycle.fill(false);
    }

    /// Total bytes buffered across all blocks.
    pub fn occupied_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.occupied_bytes()).sum()
    }

    /// Total overflows across all blocks.
    pub fn overflows(&self) -> u64 {
        self.blocks.iter().map(|b| b.overflows()).sum()
    }

    /// True when all blocks are drained.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(BramBlock::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_fifo_order() {
        let mut block = BramBlock::new(1024);
        block.write(vec![1]);
        block.write(vec![2]);
        assert_eq!(block.read(), Some(vec![1]));
        assert_eq!(block.read(), Some(vec![2]));
        assert_eq!(block.read(), None);
    }

    #[test]
    fn block_overflow_counts() {
        let mut block = BramBlock::new(3);
        assert!(block.write(vec![0; 2]));
        assert!(!block.write(vec![0; 2]));
        assert_eq!(block.overflows(), 1);
        assert_eq!(block.writes(), 1);
        assert_eq!(block.occupied_bytes(), 2);
    }

    #[test]
    fn one_write_per_core_per_cycle() {
        let mut mem = MemorySystem::new(2, 64);
        mem.write(0, vec![1]);
        mem.write(1, vec![2]);
        mem.end_cycle();
        mem.write(0, vec![3]);
        assert_eq!(mem.occupied_bytes(), 3);
    }

    #[test]
    #[should_panic(expected = "wrote twice")]
    fn double_write_panics() {
        let mut mem = MemorySystem::new(2, 64);
        mem.write(0, vec![1]);
        mem.write(0, vec![2]);
    }

    #[test]
    fn shared_read_port_round_robins() {
        let mut mem = MemorySystem::new(3, 64);
        for core in 0..3 {
            mem.write(core, vec![core as u8]);
        }
        mem.end_cycle();
        let mut origins = Vec::new();
        while let Some((core, _)) = mem.read_one() {
            origins.push(core);
        }
        assert_eq!(origins, vec![0, 1, 2]);
        assert!(mem.is_empty());
    }

    #[test]
    fn read_skips_empty_blocks() {
        let mut mem = MemorySystem::new(3, 64);
        mem.write(2, vec![9]);
        mem.end_cycle();
        assert_eq!(mem.read_one(), Some((2, vec![9])));
        assert_eq!(mem.read_one(), None);
    }
}
