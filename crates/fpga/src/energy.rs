//! Order-of-magnitude energy accounting.
//!
//! The paper motivates power gating the label generator "to conserve
//! energy" (§5.2); this meter makes that claim quantifiable in simulation.
//! The per-event constants are *representative* 20 nm-FPGA figures (pJ
//! scale), clearly labeled as model inputs, not measurements — relative
//! comparisons (gated vs ungated, FPGA vs CPU per MAC) are the meaningful
//! outputs.

use serde::{Deserialize, Serialize};

/// Energy model constants in picojoules per event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One fixed-key AES evaluation in fabric (the GC-engine dominant cost).
    pub aes_pj: f64,
    /// One active ring-oscillator RNG for one cycle.
    pub rng_cycle_pj: f64,
    /// One 128-bit register shift.
    pub shift_pj: f64,
    /// One 32-byte BRAM write.
    pub bram_write_pj: f64,
    /// One byte over PCIe.
    pub pcie_byte_pj: f64,
    /// Static fabric power per cycle at 200 MHz (nW·cycle ≈ pJ).
    pub static_cycle_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            aes_pj: 120.0,
            rng_cycle_pj: 0.4,
            shift_pj: 6.0,
            bram_write_pj: 18.0,
            pcie_byte_pj: 12.0,
            static_cycle_pj: 50.0,
        }
    }
}

/// Accumulates event counts and reports energy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// AES evaluations.
    pub aes_ops: u64,
    /// Active RNG-cycles.
    pub rng_cycles: u64,
    /// Label shifts.
    pub shifts: u64,
    /// BRAM writes.
    pub bram_writes: u64,
    /// PCIe bytes.
    pub pcie_bytes: u64,
    /// Fabric cycles.
    pub cycles: u64,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Total energy in joules under `model`.
    pub fn joules(&self, model: &EnergyModel) -> f64 {
        let pj = self.aes_ops as f64 * model.aes_pj
            + self.rng_cycles as f64 * model.rng_cycle_pj
            + self.shifts as f64 * model.shift_pj
            + self.bram_writes as f64 * model.bram_write_pj
            + self.pcie_bytes as f64 * model.pcie_byte_pj
            + self.cycles as f64 * model.static_cycle_pj;
        pj * 1e-12
    }

    /// Energy per MAC given the meter covers `macs` MAC rounds.
    ///
    /// # Panics
    ///
    /// Panics if `macs` is zero.
    pub fn joules_per_mac(&self, model: &EnergyModel, macs: u64) -> f64 {
        assert!(macs > 0, "need at least one MAC");
        self.joules(model) / macs as f64
    }
}

/// A representative CPU energy-per-MAC for the software baseline: cycles ×
/// ~0.5 nJ/cycle (a few-watt core at a few GHz).
pub fn cpu_joules_per_mac(cycles_per_mac: f64) -> f64 {
    cycles_per_mac * 0.5e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_adds_up() {
        let model = EnergyModel::default();
        let meter = EnergyMeter {
            aes_ops: 1000,
            rng_cycles: 0,
            shifts: 0,
            bram_writes: 0,
            pcie_bytes: 0,
            cycles: 0,
        };
        assert!((meter.joules(&model) - 1000.0 * 120.0e-12).abs() < 1e-18);
    }

    #[test]
    fn gating_reduces_rng_energy() {
        let model = EnergyModel::default();
        let gated = EnergyMeter {
            rng_cycles: 128,
            ..EnergyMeter::default()
        };
        let ungated = EnergyMeter {
            rng_cycles: 128 * 4,
            ..EnergyMeter::default()
        };
        assert!(gated.joules(&model) < ungated.joules(&model));
    }

    #[test]
    fn fpga_mac_beats_cpu_mac_by_orders_of_magnitude() {
        // One 8-bit MAC: ~182 AND gates × 4 AES each + overheads vs
        // TinyGarble's 1.44e5 CPU cycles.
        let model = EnergyModel::default();
        let meter = EnergyMeter {
            aes_ops: 182 * 4,
            rng_cycles: 24 * 128,
            shifts: 24 * 16,
            bram_writes: 182,
            pcie_bytes: 182 * 32,
            cycles: 24,
        };
        let fpga = meter.joules_per_mac(&model, 1);
        let cpu = cpu_joules_per_mac(1.44e5);
        assert!(
            cpu / fpga > 50.0,
            "expected a large efficiency gap: fpga {fpga:.3e} vs cpu {cpu:.3e}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one MAC")]
    fn zero_macs_rejected() {
        EnergyMeter::new().joules_per_mac(&EnergyModel::default(), 0);
    }
}
