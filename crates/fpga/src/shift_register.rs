//! Fixed-depth shift registers: the delay lines of Figure 2.

use std::collections::VecDeque;

/// A `depth`-stage shift register over any value type (the accelerator
/// shifts 128-bit labels).
///
/// Each [`ShiftRegister::shift`] inserts one value and emits the value
/// inserted `depth` calls ago; the first `depth` outputs are the initial
/// fill value.
///
/// # Example
///
/// ```
/// use max_fpga::ShiftRegister;
///
/// let mut delay = ShiftRegister::new(2, 0u32);
/// assert_eq!(delay.shift(10), 0);
/// assert_eq!(delay.shift(20), 0);
/// assert_eq!(delay.shift(30), 10);
/// ```
#[derive(Clone, Debug)]
pub struct ShiftRegister<T> {
    stages: VecDeque<T>,
    depth: usize,
}

impl<T: Clone> ShiftRegister<T> {
    /// Creates a register of `depth` stages pre-filled with `fill`.
    ///
    /// A zero-depth register is a wire: `shift` returns its input.
    pub fn new(depth: usize, fill: T) -> Self {
        ShiftRegister {
            stages: std::iter::repeat_n(fill, depth).collect(),
            depth,
        }
    }

    /// Number of stages.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Clocks the register: pushes `value` in, pops the oldest out.
    pub fn shift(&mut self, value: T) -> T {
        if self.depth == 0 {
            return value;
        }
        self.stages.push_back(value);
        self.stages.pop_front().expect("register is pre-filled")
    }

    /// Peeks at the value that the next `shift` will emit.
    pub fn front(&self) -> Option<&T> {
        self.stages.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_by_depth() {
        for depth in 1..6 {
            let mut sr = ShiftRegister::new(depth, -1i64);
            for i in 0..20i64 {
                let out = sr.shift(i);
                let expected = if i < depth as i64 {
                    -1
                } else {
                    i - depth as i64
                };
                assert_eq!(out, expected, "depth {depth}, step {i}");
            }
        }
    }

    #[test]
    fn zero_depth_is_a_wire() {
        let mut sr = ShiftRegister::new(0, 0u8);
        assert_eq!(sr.shift(42), 42);
        assert_eq!(sr.shift(7), 7);
    }

    #[test]
    fn front_previews_next_output() {
        let mut sr = ShiftRegister::new(2, 0u32);
        sr.shift(5);
        assert_eq!(sr.front(), Some(&0));
        sr.shift(6);
        assert_eq!(sr.front(), Some(&5));
    }
}
