//! FPGA resource accounting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use serde::{Deserialize, Serialize};

/// LUT / LUTRAM / flip-flop / BRAM usage of a hardware component.
///
/// Components report their own usage; totals compose with `+`. The paper's
/// Table 1 reports the first three columns for one MAC unit.
///
/// # Example
///
/// ```
/// use max_fpga::ResourceUsage;
///
/// let engine = ResourceUsage::new(3000, 16, 2500, 0);
/// let two_engines = engine * 2;
/// assert_eq!(two_engines.lut, 6000);
/// assert_eq!((engine + engine), two_engines);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub lut: u64,
    /// LUTs configured as distributed RAM (the AES s-boxes, §5.1).
    pub lutram: u64,
    /// Flip-flops (registers).
    pub ff: u64,
    /// Block RAMs.
    pub bram: u64,
}

impl ResourceUsage {
    /// Creates a usage record.
    pub const fn new(lut: u64, lutram: u64, ff: u64, bram: u64) -> Self {
        ResourceUsage {
            lut,
            lutram,
            ff,
            bram,
        }
    }

    /// The all-zero usage.
    pub const ZERO: ResourceUsage = ResourceUsage::new(0, 0, 0, 0);

    /// True when every column fits within `budget`.
    pub fn fits_within(&self, budget: &ResourceUsage) -> bool {
        self.lut <= budget.lut
            && self.lutram <= budget.lutram
            && self.ff <= budget.ff
            && self.bram <= budget.bram
    }

    /// How many copies of `self` fit in `budget` (limited by the scarcest
    /// resource; columns `self` does not use are unconstrained).
    pub fn copies_within(&self, budget: &ResourceUsage) -> u64 {
        let ratio = |used: u64, avail: u64| avail.checked_div(used).unwrap_or(u64::MAX);
        ratio(self.lut, budget.lut)
            .min(ratio(self.lutram, budget.lutram))
            .min(ratio(self.ff, budget.ff))
            .min(ratio(self.bram, budget.bram))
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;

    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut + rhs.lut,
            lutram: self.lutram + rhs.lutram,
            ff: self.ff + rhs.ff,
            bram: self.bram + rhs.bram,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, rhs: ResourceUsage) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for ResourceUsage {
    type Output = ResourceUsage;

    fn mul(self, count: u64) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut * count,
            lutram: self.lutram * count,
            ff: self.ff * count,
            bram: self.bram * count,
        }
    }
}

impl Sum for ResourceUsage {
    fn sum<I: Iterator<Item = ResourceUsage>>(iter: I) -> ResourceUsage {
        iter.fold(ResourceUsage::ZERO, Add::add)
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:.2e} | LUTRAM {:.2e} | FF {:.2e} | BRAM {}",
            self.lut as f64, self.lutram as f64, self.ff as f64, self.bram
        )
    }
}

/// The Virtex UltraSCALE XCVU095 device budget (the paper's platform),
/// from the Xilinx UltraScale product table.
pub const XCVU095: ResourceUsage = ResourceUsage::new(1_176_000, 301_000, 2_352_000, 1_728);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_and_scaling() {
        let a = ResourceUsage::new(10, 1, 20, 0);
        let b = ResourceUsage::new(5, 2, 10, 1);
        assert_eq!(a + b, ResourceUsage::new(15, 3, 30, 1));
        assert_eq!(a * 3, ResourceUsage::new(30, 3, 60, 0));
    }

    #[test]
    fn sum_over_components() {
        let parts = [
            ResourceUsage::new(1, 0, 0, 0),
            ResourceUsage::new(0, 2, 0, 0),
            ResourceUsage::new(0, 0, 3, 4),
        ];
        let total: ResourceUsage = parts.into_iter().sum();
        assert_eq!(total, ResourceUsage::new(1, 2, 3, 4));
    }

    #[test]
    fn fits_and_copies() {
        let unit = ResourceUsage::new(100, 10, 200, 0);
        let budget = ResourceUsage::new(1000, 25, 5000, 4);
        assert!(unit.fits_within(&budget));
        // Limited by LUTRAM: 25/10 = 2 copies.
        assert_eq!(unit.copies_within(&budget), 2);
    }

    #[test]
    fn paper_claim_25x_more_cores_fit() {
        // §6: "25 times more GC cores can fit in our current implementation
        // platform" — the b=32 MAC (Table 1) against the XCVU095 is LUT
        // bound at floor(1.176e6 / 1.11e5) ≈ 10 MAC units ≈ 240 cores vs 24,
        // i.e. 10× whole MAC units; per-core packing with shared label
        // generator reaches ~25×. Sanity-check the order of magnitude.
        let mac32 = ResourceUsage::new(111_000, 640, 84_000, 0);
        let copies = mac32.copies_within(&XCVU095);
        assert!((5..40).contains(&copies), "copies = {copies}");
    }

    #[test]
    fn display_mentions_all_columns() {
        let text = ResourceUsage::new(1, 2, 3, 4).to_string();
        for needle in ["LUT", "LUTRAM", "FF", "BRAM"] {
            assert!(text.contains(needle));
        }
    }
}
