//! The fabric clock.

use std::time::Duration;

/// A cycle counter bound to a clock frequency.
///
/// # Example
///
/// ```
/// use max_fpga::Clock;
///
/// let mut clock = Clock::new(200.0); // 200 MHz, the paper's fabric clock
/// clock.advance(24);
/// assert_eq!(clock.cycles(), 24);
/// // 24 cycles at 200 MHz = 120 ns = one 8-bit MAC (Table 2).
/// assert_eq!(clock.elapsed().as_nanos(), 120);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Clock {
    cycles: u64,
    freq_mhz: f64,
}

impl Clock {
    /// Creates a clock at `freq_mhz` megahertz.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive and finite.
    pub fn new(freq_mhz: f64) -> Self {
        assert!(
            freq_mhz.is_finite() && freq_mhz > 0.0,
            "clock frequency must be positive"
        );
        Clock {
            cycles: 0,
            freq_mhz,
        }
    }

    /// Clock frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Advances by one cycle.
    pub fn tick(&mut self) {
        self.cycles += 1;
    }

    /// Advances by `n` cycles.
    pub fn advance(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Wall-clock time elapsed at this frequency.
    pub fn elapsed(&self) -> Duration {
        Duration::from_secs_f64(self.cycles as f64 / (self.freq_mhz * 1e6))
    }

    /// Converts a cycle count at this frequency into seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_mhz * 1e6)
    }

    /// Throughput in operations/second for an operation taking
    /// `cycles_per_op` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_op` is zero.
    pub fn ops_per_second(&self, cycles_per_op: u64) -> f64 {
        assert!(cycles_per_op > 0, "operation must take at least one cycle");
        self.freq_mhz * 1e6 / cycles_per_op as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_throughput_numbers() {
        // Table 2: at 200 MHz, 24/48/96 cycles per MAC give 8.33e6 / 4.17e6
        // / 2.08e6 MACs per second.
        let clock = Clock::new(200.0);
        assert!((clock.ops_per_second(24) - 8.33e6).abs() / 8.33e6 < 1e-3);
        assert!((clock.ops_per_second(48) - 4.17e6).abs() / 4.17e6 < 1e-3);
        assert!((clock.ops_per_second(96) - 2.08e6).abs() / 2.08e6 < 2e-3);
    }

    #[test]
    fn elapsed_time() {
        let mut clock = Clock::new(100.0);
        clock.advance(1_000_000);
        assert!((clock.elapsed().as_secs_f64() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn tick_increments() {
        let mut clock = Clock::new(1.0);
        clock.tick();
        clock.tick();
        assert_eq!(clock.cycles(), 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_rejected() {
        Clock::new(0.0);
    }
}
