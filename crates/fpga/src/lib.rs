//! Cycle-accurate FPGA simulation substrate.
//!
//! The MAXelerator paper evaluates on a Virtex UltraSCALE VCU108; this crate
//! is the software stand-in for that fabric (see the substitution table in
//! DESIGN.md). It provides the pieces the accelerator model composes:
//!
//! * [`Clock`] — a cycle counter with a frequency, converting cycles to
//!   wall-clock time (the paper's fabric runs at 200 MHz).
//! * [`ShiftRegister`] — the `d`-stage delay lines that realize the "shift"
//!   arrows of the tree multiplier (Figure 2) in hardware.
//! * [`BramBlock`] / [`MemorySystem`] — the on-chip table memory of §5.1:
//!   one write port per block (per GC core), one shared read port drained by
//!   the PCIe bridge.
//! * [`PcieLink`] — a bandwidth/latency stream model of the Xillybus PCIe
//!   bridge that carries garbled tables to the host.
//! * [`ResourceUsage`] — LUT/LUTRAM/FF/BRAM accounting used to reproduce
//!   Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bram;
mod clock;
mod energy;
mod pcie;
mod resource;
mod shift_register;

pub use bram::{BramBlock, MemorySystem};
pub use clock::Clock;
pub use energy::{cpu_joules_per_mac, EnergyMeter, EnergyModel};
pub use pcie::PcieLink;
pub use resource::{ResourceUsage, XCVU095};
pub use shift_register::ShiftRegister;
