//! Bandwidth/latency model of the PCIe (Xillybus) link to the host CPU.

use std::collections::VecDeque;

/// A unidirectional FPGA→host stream with finite per-cycle bandwidth and a
/// fixed pipeline latency.
///
/// Bytes enqueued with [`PcieLink::push`] become visible to the host
/// [`PcieLink::latency_cycles`] cycles after the cycle in which bandwidth
/// was available to serialize them.
///
/// # Example
///
/// ```
/// use max_fpga::PcieLink;
///
/// // 8 bytes/cycle, 4-cycle latency.
/// let mut link = PcieLink::new(8, 4);
/// link.push(16);
/// for _ in 0..6 { link.tick(); }
/// assert_eq!(link.delivered_bytes(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct PcieLink {
    bytes_per_cycle: usize,
    latency_cycles: u64,
    /// Bytes waiting to be serialized.
    queue_bytes: usize,
    /// In-flight chunks: (delivery_cycle, bytes).
    in_flight: VecDeque<(u64, usize)>,
    cycle: u64,
    delivered: u64,
    pushed: u64,
    peak_queue: usize,
}

impl PcieLink {
    /// Creates a link with `bytes_per_cycle` bandwidth and `latency_cycles`
    /// pipeline latency.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is zero.
    pub fn new(bytes_per_cycle: usize, latency_cycles: u64) -> Self {
        assert!(bytes_per_cycle > 0, "bandwidth must be positive");
        PcieLink {
            bytes_per_cycle,
            latency_cycles,
            queue_bytes: 0,
            in_flight: VecDeque::new(),
            cycle: 0,
            delivered: 0,
            pushed: 0,
            peak_queue: 0,
        }
    }

    /// Pipeline latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.latency_cycles
    }

    /// Enqueues `bytes` for transfer.
    pub fn push(&mut self, bytes: usize) {
        self.queue_bytes += bytes;
        self.pushed += bytes as u64;
        self.peak_queue = self.peak_queue.max(self.queue_bytes);
    }

    /// Advances one cycle: serializes up to the bandwidth and delivers
    /// chunks whose latency has elapsed.
    pub fn tick(&mut self) {
        let sent = self.queue_bytes.min(self.bytes_per_cycle);
        if sent > 0 {
            self.queue_bytes -= sent;
            self.in_flight
                .push_back((self.cycle + self.latency_cycles, sent));
        }
        self.cycle += 1;
        while let Some(&(due, bytes)) = self.in_flight.front() {
            if due < self.cycle {
                self.delivered += bytes as u64;
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Bytes the host has received.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }

    /// Bytes pushed in total.
    pub fn pushed_bytes(&self) -> u64 {
        self.pushed
    }

    /// True when everything pushed has been delivered.
    pub fn is_drained(&self) -> bool {
        self.queue_bytes == 0 && self.in_flight.is_empty()
    }

    /// Largest backlog observed (bytes) — the congestion signal of the §6
    /// caveat.
    pub fn peak_queue_bytes(&self) -> usize {
        self.peak_queue
    }

    /// Cycles needed to drain `bytes` through this link from idle.
    pub fn drain_cycles(&self, bytes: usize) -> u64 {
        (bytes.div_ceil(self.bytes_per_cycle)) as u64 + self.latency_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_limits_throughput() {
        let mut link = PcieLink::new(4, 0);
        link.push(10);
        link.tick();
        assert_eq!(link.delivered_bytes(), 4);
        link.tick();
        assert_eq!(link.delivered_bytes(), 8);
        link.tick();
        assert_eq!(link.delivered_bytes(), 10);
        assert!(link.is_drained());
    }

    #[test]
    fn latency_delays_delivery() {
        let mut link = PcieLink::new(100, 3);
        link.push(10);
        for _ in 0..3 {
            link.tick();
            assert_eq!(link.delivered_bytes(), 0);
        }
        link.tick();
        assert_eq!(link.delivered_bytes(), 10);
    }

    #[test]
    fn peak_queue_tracks_backlog() {
        let mut link = PcieLink::new(1, 0);
        link.push(5);
        assert_eq!(link.peak_queue_bytes(), 5);
        link.tick();
        link.push(2);
        assert_eq!(link.peak_queue_bytes(), 6);
    }

    #[test]
    fn drain_cycles_formula() {
        let link = PcieLink::new(8, 4);
        assert_eq!(link.drain_cycles(16), 2 + 4);
        assert_eq!(link.drain_cycles(17), 3 + 4);
        assert_eq!(link.drain_cycles(0), 4);
    }

    #[test]
    fn accounting_balances() {
        let mut link = PcieLink::new(3, 2);
        link.push(7);
        link.push(5);
        for _ in 0..20 {
            link.tick();
        }
        assert_eq!(link.pushed_bytes(), 12);
        assert_eq!(link.delivered_bytes(), 12);
        assert!(link.is_drained());
    }
}
